"""The paper's Figure 1, executable: tables A, B, C co-clustered over
dimensions D1 (geography), D2 (time) and D3 (range-binned values).

Shows the three co-clustering relationships of Section II:
  * B co-clusters with A on D1 and D2 (over FK_B_A),
  * B co-clusters with C on D1 (different path!) and D3 (over FK_B_C),
  * A and C are co-clustered on D1 although not FK-connected — a
    selection on continents prunes groups of *both* fact tables, and a
    join between them on the shared geography key sandwiches.

Run:  python examples/figure1_schema.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    INT32,
    AdvisorConfig,
    AggSpec,
    BDCCBuildConfig,
    BDCCScheme,
    Database,
    DiskModel,
    Executor,
    PageModel,
    Schema,
    col,
    scan,
    string_type,
)
from repro.core.bits import mask_to_string

# a device scaled to this toy data volume (A_R = page = 256 B), so the
# self-tuned count tables get useful granularity — see DESIGN.md §5
PAGE = 256
DISK = DiskModel(sequential_bandwidth=1e9, access_latency=PAGE / 4e9)


def build_database(seed: int = 3) -> Database:
    schema = Schema()
    schema.add_table("d1", [("geo", INT32), ("continent", string_type(10))],
                     primary_key=["geo"])
    schema.add_table("d2", [("yr", INT32)], primary_key=["yr"])
    schema.add_table("d3", [("val", INT32)], primary_key=["val"])
    schema.add_table("a", [("a_id", INT32), ("a_geo", INT32), ("a_yr", INT32),
                           ("a_amount", INT32)], primary_key=["a_id"])
    schema.add_table("c", [("c_id", INT32), ("c_geo", INT32), ("c_val", INT32),
                           ("c_amount", INT32)], primary_key=["c_id"])
    schema.add_table("b", [("b_id", INT32), ("b_a", INT32), ("b_c", INT32)],
                     primary_key=["b_id"])
    schema.add_foreign_key("FK_A_D1", "a", ["a_geo"], "d1")
    schema.add_foreign_key("FK_A_D2", "a", ["a_yr"], "d2")
    schema.add_foreign_key("FK_C_D1", "c", ["c_geo"], "d1")
    schema.add_foreign_key("FK_C_D3", "c", ["c_val"], "d3")
    schema.add_foreign_key("FK_B_A", "b", ["b_a"], "a")
    schema.add_foreign_key("FK_B_C", "b", ["b_c"], "c")
    schema.add_index_hint("i_d1", "d1", ["geo"], dimension_name="D1")
    schema.add_index_hint("i_d2", "d2", ["yr"], dimension_name="D2")
    schema.add_index_hint("i_d3", "d3", ["val"], dimension_name="D3")
    for table, cols in [("a", ["a_geo"]), ("a", ["a_yr"]),
                        ("c", ["c_geo"]), ("c", ["c_val"]),
                        ("b", ["b_a"]), ("b", ["b_c"])]:
        schema.add_index_hint(f"i_{table}_{cols[0]}", table, cols)

    rng = np.random.default_rng(seed)
    db = Database(schema)
    db.add_table_data("d1", {
        "geo": np.arange(4, dtype=np.int32),
        "continent": np.array(["Africa", "America", "Asia", "Europe"]),
    })
    db.add_table_data("d2", {"yr": np.array([1997, 1998, 1999, 2000], dtype=np.int32)})
    db.add_table_data("d3", {"val": np.array([5, 9, 11, 13], dtype=np.int32)})
    n = 4096
    db.add_table_data("a", {
        "a_id": np.arange(n, dtype=np.int32),
        "a_geo": rng.integers(0, 4, n).astype(np.int32),
        "a_yr": np.array([1997, 1998, 1999, 2000], dtype=np.int32)[rng.integers(0, 4, n)],
        "a_amount": rng.integers(1, 100, n).astype(np.int32),
    })
    db.add_table_data("c", {
        "c_id": np.arange(n, dtype=np.int32),
        "c_geo": rng.integers(0, 4, n).astype(np.int32),
        "c_val": np.array([5, 9, 11, 13], dtype=np.int32)[rng.integers(0, 4, n)],
        "c_amount": rng.integers(1, 100, n).astype(np.int32),
    })
    db.add_table_data("b", {
        "b_id": np.arange(4 * n, dtype=np.int32),
        "b_a": rng.integers(0, n, 4 * n).astype(np.int32),
        "b_c": rng.integers(0, n, 4 * n).astype(np.int32),
    })
    return db


def main() -> None:
    db = build_database()
    scheme = BDCCScheme(
        advisor_config=AdvisorConfig(
            build=BDCCBuildConfig(efficient_access_bytes=PAGE)
        ),
        page_model=PageModel(PAGE),
    )
    pdb = scheme.build(db)

    print("== the co-clustered schema of Figure 1 ==")
    for table in ("a", "c", "b"):
        bdcc = pdb.bdcc_tables()[table]
        print(f"table {table.upper()} clustered on {bdcc.total_bits} bits:")
        for use in bdcc.uses:
            print(
                f"   {use.dimension.name:<3} via {use.path_string():<18} "
                f"mask {mask_to_string(use.mask, bdcc.total_bits)}"
            )

    print("\n== B joins both A and C with sandwiched execution ==")
    executor = Executor(pdb, disk=DISK)
    result = executor.execute(
        scan("b")
        .join(scan("a"), on=[("b_a", "a_id")])
        .join(scan("c"), on=[("b_c", "c_id")])
        .groupby([], [AggSpec("rows", "count")])
    )
    print(f"   joined rows: {result.rows[0][0]}")
    for note in result.metrics.notes:
        print(f"   - {note}")

    print("\n== A and C co-clustered on D1 without an FK between them ==")
    # "tuples in A and C from matching nations" (Section II): join the two
    # fact tables on the shared geography key, filtered to one continent
    result = executor.execute(
        scan("a")
        .join(scan("c"), on=[("a_geo", "c_geo")])
        .join(scan("d1", predicate=col("continent").eq("Asia")),
              on=[("a_geo", "geo")])
        .groupby([], [AggSpec("pairs", "count")])
    )
    print(f"   matching-geography pairs in Asia: {result.rows[0][0]}")
    for note in result.metrics.notes:
        print(f"   - {note}")


if __name__ == "__main__":
    main()
