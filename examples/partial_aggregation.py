"""Two-phase aggregation: serial vs gather-then-aggregate vs partial.

Builds a small TPC-H database under the BDCC scheme and runs Q1 — the
paper's "no index helps this" pricing-summary scan — three ways:

1. **serial** — one worker, the baseline;
2. **gather-then-aggregate** (``workers=4, enable_partial_agg=False``)
   — the LINEITEM scan splits into zone-aligned fragments, but every
   scanned row crosses the exchange and the whole ``HashAgg`` runs in
   the serial tail fragment, which caps the speedup around 2.2x;
3. **partial aggregation** (``workers=4``, the default) — each fragment
   pre-aggregates its rows down to its local group states with a
   ``PartialAgg`` *below* the exchange (sums stay sums, avg becomes a
   sum plus a ``__pcnt__`` companion count, min/max carry validity
   counts), the exchange ships those few state rows, and one
   ``MergeAgg`` above the gather combines them exactly.

Merging re-sums floats in gather order, so the partial plan carries the
order-insensitive result contract (see docs/execution-model.md): same
rows within float tolerance, deterministic across runs, but not
bit-identical to serial.  The script verifies the three runs agree on
the result multiset, prints the ``explain()`` fragment views, and
reports the makespan deltas.

Run:  python examples/partial_aggregation.py
"""

from __future__ import annotations

from repro import tpch
from repro.execution.aggregate import AggSpec
from repro.execution.expressions import col
from repro.planner.executor import ExecutionOptions, Executor
from repro.planner.explain import explain
from repro.planner.logical import scan
from repro.tpch.dates import days
from repro.tpch.environment import make_environment
from repro.tpch.harness import build_schemes
from repro.workload.differential import normalized_rows, rows_match

SCALE_FACTOR = 0.005


def q1_plan():
    revenue = col("l_extendedprice") * (1 - col("l_discount"))
    return (
        scan("lineitem", predicate=col("l_shipdate").le(days("1998-09-02")))
        .groupby(
            ["l_returnflag", "l_linestatus"],
            [
                AggSpec("sum_qty", "sum", col("l_quantity")),
                AggSpec("sum_base_price", "sum", col("l_extendedprice")),
                AggSpec("sum_disc_price", "sum", revenue),
                AggSpec("avg_qty", "avg", col("l_quantity")),
                AggSpec("avg_price", "avg", col("l_extendedprice")),
                AggSpec("avg_disc", "avg", col("l_discount")),
                AggSpec("count_order", "count"),
            ],
        )
        .sort([("l_returnflag", True), ("l_linestatus", True)])
    )


def main() -> None:
    print(f"generating TPC-H SF={SCALE_FACTOR} and building the BDCC scheme ...")
    db = tpch.generate(scale_factor=SCALE_FACTOR, seed=7)
    env = make_environment(SCALE_FACTOR)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]
    plan = q1_plan()

    runs = {}
    for label, options in [
        ("serial", ExecutionOptions(workers=1)),
        ("gather-agg", ExecutionOptions(workers=4, enable_partial_agg=False)),
        ("partial-agg", ExecutionOptions(workers=4)),
    ]:
        executor = Executor(pdb, disk=env.disk, costs=env.cost_model, options=options)
        result = executor.execute(plan)
        runs[label] = (executor, result)

    # all three contracts agree on the result multiset; the gather-agg
    # run is additionally bit-identical to serial (same plan tail)
    serial_rel = runs["serial"][1].relation
    names = sorted(serial_rel.column_names)
    expected = normalized_rows(serial_rel.columns, names)
    for label, (_, result) in runs.items():
        got = normalized_rows(result.relation.columns, names)
        assert rows_match(expected, got), label
    print(f"\nQ1's {serial_rel.num_rows} groups identical across all three runs\n")

    for label in ("gather-agg", "partial-agg"):
        executor, _ = runs[label]
        print(f"=== {label} fragment view " + "=" * (48 - len(label)))
        print(explain(executor, plan))
        print()

    serial_seconds = runs["serial"][1].metrics.total_seconds
    print("makespan:")
    for label, (_, result) in runs.items():
        wall = result.metrics.wall_seconds
        print(
            f"  {label:<15} {wall * 1e3:8.3f} ms"
            f"  ({serial_seconds / wall:4.2f}x vs serial)"
        )
    gather_wall = runs["gather-agg"][1].metrics.wall_seconds
    partial_wall = runs["partial-agg"][1].metrics.wall_seconds
    print(
        f"\npartial aggregation beats the gather-then-aggregate tail by "
        f"{gather_wall / partial_wall:.2f}x at 4 workers"
    )


if __name__ == "__main__":
    main()
