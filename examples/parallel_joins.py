"""Co-partitioned parallel joins: serial vs broadcast vs co-partition.

Builds a small TPC-H database under the BDCC scheme and runs Q3's join
pipeline three ways:

1. **serial** — one worker, the baseline;
2. **broadcast** (``workers=4, enable_copartition=False``) — the probe
   side splits into zone-aligned fragments, but the whole build side is
   executed once and shipped to every partition, so the join's build
   work repeats per partition and serialises the speedup;
3. **co-partitioned** (``workers=4``, the default) — both join sides
   are split along the BDCC dimension bits they share (here
   D_DATE+D_NATION): each side runs as repartition-source fragments and
   every join partition reads them through a rebinning ``Repartition``
   that keeps only its bin range.  Equal join keys imply equal bins, so
   matches co-locate and nothing is duplicated.

The co-partitioned gather no longer emits rows in storage order — it
concatenates bin ranges in fragment-key order, the deterministic
*canonical* order of the order-insensitive result contract (see
docs/execution-model.md).  The script verifies that all three runs
return the same result rows, prints the ``explain()`` fragment views,
and reports the makespan deltas.

Run:  python examples/parallel_joins.py
"""

from __future__ import annotations

from repro import tpch
from repro.execution.aggregate import AggSpec
from repro.execution.expressions import col
from repro.planner.executor import ExecutionOptions, Executor
from repro.planner.explain import explain
from repro.tpch.dates import days
from repro.tpch.environment import make_environment
from repro.tpch.harness import build_schemes

SCALE_FACTOR = 0.005


def q3_plan():
    cutoff = days("1995-03-15")
    return (
        scan_customer()
        .join(
            tpch_scan("orders", col("o_orderdate").lt(cutoff)),
            on=[("c_custkey", "o_custkey")],
        )
        .join(
            tpch_scan("lineitem", col("l_shipdate").gt(cutoff)),
            on=[("o_orderkey", "l_orderkey")],
        )
        .groupby(
            ["l_orderkey", "o_orderdate", "o_shippriority"],
            [AggSpec("revenue", "sum", col("l_extendedprice") * (1 - col("l_discount")))],
        )
        .sort([("revenue", False), ("o_orderdate", True)])
        .limit(10)
    )


def tpch_scan(table, predicate=None):
    from repro.planner.logical import scan

    return scan(table, predicate=predicate)


def scan_customer():
    return tpch_scan("customer", col("c_mktsegment").eq("BUILDING"))


def main() -> None:
    print(f"generating TPC-H SF={SCALE_FACTOR} and building the BDCC scheme ...")
    db = tpch.generate(scale_factor=SCALE_FACTOR, seed=7)
    env = make_environment(SCALE_FACTOR)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]
    plan = q3_plan()

    runs = {}
    for label, options in [
        ("serial", ExecutionOptions(workers=1)),
        ("broadcast", ExecutionOptions(workers=4, enable_copartition=False)),
        ("co-partitioned", ExecutionOptions(workers=4)),
    ]:
        executor = Executor(pdb, disk=env.disk, costs=env.cost_model, options=options)
        result = executor.execute(plan)
        runs[label] = (executor, result)

    # all three contracts agree on the result rows (Q3 ends in a
    # total-enough sort + limit, so even the row order coincides here)
    serial_rows = runs["serial"][1].rows
    for label, (_, result) in runs.items():
        assert len(result.rows) == len(serial_rows), label
    print(f"\nQ3 top-{len(serial_rows)} identical across all three runs\n")

    for label in ("broadcast", "co-partitioned"):
        executor, _ = runs[label]
        print(f"=== {label} fragment view " + "=" * (48 - len(label)))
        print(explain(executor, plan))
        print()

    serial_seconds = runs["serial"][1].metrics.total_seconds
    print("makespan:")
    for label, (_, result) in runs.items():
        wall = result.metrics.wall_seconds
        print(
            f"  {label:<15} {wall * 1e3:8.3f} ms"
            f"  ({serial_seconds / wall:4.2f}x vs serial)"
        )
    broadcast_wall = runs["broadcast"][1].metrics.wall_seconds
    copart_wall = runs["co-partitioned"][1].metrics.wall_seconds
    print(
        f"\nco-partitioning beats the broadcast build side by "
        f"{broadcast_wall / copart_wall:.2f}x at 4 workers"
    )


if __name__ == "__main__":
    main()
