"""Skewed and correlated dimensions: the self-tuning behaviour of
Algorithm 1.

Three effects from Section III:

1.  *Skew*: equi-frequency binning gives a heavy-hitter value its own
    bin(s); bins stay balanced in tuple count, not value count.
2.  *Correlated dimensions* ("puff pastry"): when one dimension
    determines another, most of the 2^(d*b) groups are empty; the
    log2 group-size histogram reveals it and Algorithm 1 simply keeps a
    higher count-table granularity, preserving selectivity.
3.  *Small-group consolidation*: leftover tiny groups are copied to a
    contiguous region and their original count-table entries are marked
    invalid.

Run:  python examples/skew_and_correlation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    INT32,
    BDCCBuildConfig,
    Database,
    Dimension,
    DimensionUse,
    Schema,
    build_bdcc_table,
    string_type,
)


def skew_demo() -> None:
    print("== 1. equi-frequency binning under skew ==")
    rng = np.random.default_rng(0)
    # Zipf-ish: value 0 holds half the mass
    values = np.concatenate([
        np.zeros(50_000, dtype=np.int64),
        rng.integers(1, 10_000, 50_000),
    ])
    dim = Dimension.create("D_SKEW", "t", ["v"], [values], max_bits=3)
    bins = dim.bin_of_codes(dim.encoder.encode([values]))
    counts = np.bincount(bins.astype(np.int64), minlength=dim.num_bins)
    print(f"   {dim.num_bins} bins over {len(np.unique(values))} distinct values")
    print(
        f"   tuples per bin: {counts.tolist()}  "
        "(the heavy hitter is isolated in its own bin; the rest balance)"
    )
    # bin 0 = the heavy value alone; remaining bins within 10% of each other
    rest = counts[1:]
    assert rest.max() <= 1.1 * rest.min()


def _correlated_db(correlated: bool) -> Database:
    schema = Schema()
    schema.add_table("t", [
        ("x", INT32), ("y", INT32), ("pad", string_type(32)),
    ])
    schema.add_index_hint("ix", "t", ["x"], dimension_name="DX")
    schema.add_index_hint("iy", "t", ["y"], dimension_name="DY")
    rng = np.random.default_rng(1)
    n = 65_536
    x = rng.integers(0, 256, n).astype(np.int32)
    y = (x // 8).astype(np.int32) if correlated else rng.integers(0, 32, n).astype(np.int32)
    db = Database(schema)
    db.add_table_data("t", {"x": x, "y": y, "pad": np.full(n, "p" * 16)})
    return db


def correlation_demo() -> None:
    print("\n== 2. correlated dimensions ('puff pastry') ==")
    config = BDCCBuildConfig(efficient_access_bytes=2048.0)
    for label, correlated in (("independent x,y", False), ("y = x//8 (hierarchical)", True)):
        db = _correlated_db(correlated)
        dx = Dimension.create("DX", "t", ["x"], [db.column("t", "x")], max_bits=8)
        dy = Dimension.create("DY", "t", ["y"], [db.column("t", "y")], max_bits=5)
        bdcc = build_bdcc_table(
            db, "t", [DimensionUse(dx, ()), DimensionUse(dy, ())], config
        )
        g = bdcc.granularity
        expected = 2**g
        actual = bdcc.stats.num_groups[g]
        print(
            f"   {label:<26} B={bdcc.total_bits}  chose b={g}: "
            f"{actual}/{expected} groups exist "
            f"(missing {bdcc.stats.missing_group_fraction(g):.0%}), "
            f"median group {bdcc.stats.median_group_size[g]:.0f} tuples"
        )


def consolidation_demo() -> None:
    print("\n== 3. small-group consolidation ==")
    schema = Schema()
    schema.add_table("t", [("x", INT32), ("pad", string_type(64))])
    rng = np.random.default_rng(2)
    n = 20_000
    # a few rare values produce tiny groups next to big ones
    x = np.where(rng.random(n) < 0.97, rng.integers(0, 8, n), rng.integers(8, 64, n))
    db = Database(schema)
    db.add_table_data("t", {"x": x.astype(np.int32), "pad": np.full(n, "p" * 32)})
    dim = Dimension.create("DX", "t", ["x"], [db.column("t", "x")], max_bits=6)
    bdcc = build_bdcc_table(
        db, "t", [DimensionUse(dim, ())],
        BDCCBuildConfig(efficient_access_bytes=8192.0, consolidate_max_fraction=0.1),
    )
    ct = bdcc.count_table
    invalid = int(np.count_nonzero(~ct.valid))
    copied = bdcc.stored_rows - bdcc.logical_rows
    print(f"   count table: {ct.num_entries} entries, {invalid} invalidated originals")
    print(f"   {copied} tuples copied into the contiguous tail region "
          f"({copied / bdcc.logical_rows:.1%} storage overhead)")
    print(f"   valid entries still cover every logical row: "
          f"{ct.total_rows()} == {bdcc.logical_rows}")
    assert ct.total_rows() == bdcc.logical_rows


if __name__ == "__main__":
    skew_demo()
    correlation_demo()
    consolidation_demo()
