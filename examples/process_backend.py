"""The process backend: the same fragments on a real worker pool.

Builds a small TPC-H database under the BDCC scheme and runs Q1 and Q6
at ``workers=4`` twice — once on the default **simulated** backend
(in-process, deterministic scheduler) and once on the **process**
backend (``ExecutionOptions(backend="process")``): a real
`multiprocessing` pool where base columns are exported once into
`multiprocessing.shared_memory` blocks (zero-copy, read-only views in
the workers), fragments are dispatched as their dependencies drain, and
the serial tail runs in the parent.

The script verifies the headline guarantee — the *same* ``ParallelPlan``
produces **bit-identical** rows and **identical simulated charges** on
both backends — and prints what only the process backend can add: a
measured wall clock per query (and per fragment), kept strictly apart
from the modelled makespan.  On a single-core host the measured numbers
won't show speedup; the simulated charges don't care, which is exactly
the point of keeping the two separate.

Run:  python examples/process_backend.py
"""

from __future__ import annotations

import numpy as np

from repro import tpch
from repro.planner.executor import ExecutionOptions, Executor
from repro.tpch.environment import make_environment
from repro.tpch.harness import build_schemes
from repro.tpch.queries import QUERIES
from repro.tpch.runner import QueryRunner

SCALE_FACTOR = 0.005
QUERY_NAMES = ("Q01", "Q06")


def bit_identical(a, b) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        x, y = a.column(name), b.column(name)
        equal = (
            np.array_equal(x, y, equal_nan=True)
            if x.dtype.kind == "f" and y.dtype.kind == "f"
            else np.array_equal(x, y)
        )
        if not equal:
            return False
    return True


def main() -> None:
    print(f"generating TPC-H SF={SCALE_FACTOR} and building the BDCC scheme ...")
    db = tpch.generate(scale_factor=SCALE_FACTOR, seed=7)
    env = make_environment(SCALE_FACTOR)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]

    def run(backend):
        executor = Executor(
            pdb, disk=env.disk, costs=env.cost_model,
            options=ExecutionOptions(workers=4, backend=backend),
        )
        out = {}
        try:
            for qname in QUERY_NAMES:
                runner = QueryRunner(executor)
                result = QUERIES[qname](runner)
                out[qname] = (result.relation, runner.metrics)
        finally:
            executor.close()  # tears down the pool, unlinks shared memory
        return out

    simulated = run("simulated")
    process = run("process")

    print(f"\n{'query':<7}{'sim makespan ms':>17}{'measured ms':>13}{'identical':>11}")
    for qname in QUERY_NAMES:
        sim_rel, sim_metrics = simulated[qname]
        proc_rel, proc_metrics = process[qname]
        identical = bit_identical(sim_rel, proc_rel)
        assert identical, f"{qname}: backends disagree"
        assert proc_metrics.makespan_seconds == sim_metrics.makespan_seconds, (
            f"{qname}: simulated charges must not depend on the backend"
        )
        print(
            f"{qname:<7}{sim_metrics.makespan_seconds * 1e3:>17.3f}"
            f"{proc_metrics.measured_wall_seconds * 1e3:>13.3f}"
            f"{'yes' if identical else 'NO':>11}"
        )

    _, proc_metrics = process["Q06"]
    print("\nQ06 fragments on the process backend (simulated vs measured):")
    for frag in proc_metrics.fragments:
        print(
            f"  fragment {frag.index} [{frag.role}]: "
            f"simulated {(frag.io_seconds + frag.cpu_seconds) * 1e3:.3f} ms, "
            f"measured {frag.measured_seconds * 1e3:.3f} ms"
        )
    print(
        "\nbit-identical results, identical simulated charges — the wall "
        "clock is the only thing the real pool changes"
    )


if __name__ == "__main__":
    main()
