"""Run the paper's Section IV end-to-end on generated TPC-H data.

Prints the two schema tables Algorithm 2 derives (dimensions and
per-table dimension uses with their interleave masks), then executes a
few representative queries under all three physical schemes and reports
the simulated time/memory comparison of Figures 2 and 3.

Run:  python examples/tpch_advisor.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro import tpch
from repro.core.bits import mask_to_string
from repro.tpch.environment import make_environment
from repro.tpch.harness import build_schemes, run_suite
from repro.tpch.queries import QUERIES


def main(scale_factor: float = 0.01) -> None:
    print(f"generating TPC-H at SF={scale_factor} ...")
    db = tpch.generate(scale_factor=scale_factor, seed=7)
    env = make_environment(scale_factor)
    pdbs = build_schemes(db, env)
    design = None

    print("\n== dimensions created by Algorithm 2 ==")
    bdcc_tables = pdbs["bdcc"].bdcc_tables()
    seen = {}
    for table in bdcc_tables.values():
        for use in table.uses:
            seen[use.dimension.name] = use.dimension
    for name, dim in sorted(seen.items()):
        print(f"  {name:<9} {dim.bits:>2} bits  {dim.table}({', '.join(dim.key)})")

    print("\n== dimension uses per table (cf. the paper's Section IV table) ==")
    for name, table in bdcc_tables.items():
        print(f"  {name} (B={table.total_bits}, count-table b={table.granularity}):")
        for use in table.uses:
            print(
                f"     {use.dimension.name:<9} {use.path_string():<26} "
                f"{mask_to_string(use.mask, table.total_bits)}"
            )

    sample = {q: QUERIES[q] for q in ("Q01", "Q03", "Q05", "Q06", "Q13", "Q21")}
    print(f"\n== running {sorted(sample)} under plain / pk / bdcc ==")
    suite = run_suite(pdbs, env, queries=sample, check_results_match=True)
    print(suite.fig2_table())
    print()
    print(suite.fig3_table())
    print(
        "\nBDCC speedup over plain: %.2fx (paper at SF100: 2.22x over the "
        "full query set)" % suite.speedup()
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
