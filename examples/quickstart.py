"""Quickstart: automatic BDCC design for a small retail star schema.

Builds a sales database from plain DDL (foreign keys + CREATE INDEX
hints), lets Algorithm 2 derive a co-clustered schema, and compares a
filtered join query against unclustered storage.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DATE,
    INT32,
    DECIMAL,
    AggSpec,
    BDCCScheme,
    Database,
    Executor,
    PlainScheme,
    Schema,
    col,
    scan,
    string_type,
)


def build_catalog() -> Schema:
    schema = Schema()
    schema.add_table("store", [
        ("st_id", INT32),
        ("st_region", string_type(10)),
    ], primary_key=["st_id"])
    schema.add_table("product", [
        ("pr_id", INT32),
        ("pr_category", string_type(12)),
        ("pr_price", DECIMAL),
    ], primary_key=["pr_id"])
    schema.add_table("sale", [
        ("sa_id", INT32),
        ("sa_store", INT32),
        ("sa_product", INT32),
        ("sa_day", DATE),
        ("sa_qty", INT32),
        ("sa_note", string_type(64)),
    ], primary_key=["sa_id"])
    schema.add_foreign_key("FK_SA_ST", "sale", ["sa_store"], "store")
    schema.add_foreign_key("FK_SA_PR", "sale", ["sa_product"], "product")

    # classic DDL hints: two dimensions + the FK references to co-cluster on
    schema.add_index_hint("region_idx", "store", ["st_region"], dimension_name="D_REGION")
    schema.add_index_hint("day_idx", "sale", ["sa_day"], dimension_name="D_DAY")
    schema.add_index_hint("sale_store_idx", "sale", ["sa_store"])
    return schema


def build_data(schema: Schema, n_sales: int = 200_000, seed: int = 42) -> Database:
    rng = np.random.default_rng(seed)
    db = Database(schema, scale_factor=0.02)
    regions = np.array(["north", "south", "east", "west"])
    db.add_table_data("store", {
        "st_id": np.arange(64, dtype=np.int32),
        "st_region": regions[np.arange(64) % 4],
    })
    db.add_table_data("product", {
        "pr_id": np.arange(1000, dtype=np.int32),
        "pr_category": np.char.add("cat", (np.arange(1000) % 20).astype("<U2")),
        "pr_price": np.round(rng.uniform(1, 500, 1000), 2),
    })
    db.add_table_data("sale", {
        "sa_id": np.arange(n_sales, dtype=np.int32),
        "sa_store": rng.integers(0, 64, n_sales).astype(np.int32),
        "sa_product": rng.integers(0, 1000, n_sales).astype(np.int32),
        "sa_day": rng.integers(8000, 9000, n_sales).astype(np.int32),
        "sa_qty": rng.integers(1, 20, n_sales).astype(np.int32),
        "sa_note": np.full(n_sales, "-" * 40),
    })
    return db


def revenue_per_region_query():
    """North-region revenue by store for a 10% day range."""
    return (
        scan("sale", predicate=col("sa_day").between(8000, 8099))
        .join(
            scan("store", predicate=col("st_region").eq("north")),
            on=[("sa_store", "st_id")],
        )
        .groupby(["sa_store"], [AggSpec("qty", "sum", col("sa_qty"))])
        .sort([("sa_store", True)])
    )


def main() -> None:
    schema = build_catalog()
    db = build_data(schema)

    print("== Algorithm 2: derived co-clustered design ==")
    bdcc_scheme = BDCCScheme()
    physical = {"plain": PlainScheme().build(db), "bdcc": bdcc_scheme.build(db)}
    for dim_name, bits, table, key in bdcc_scheme.design.describe_dimensions():
        print(f"  dimension {dim_name}: {bits} bits over {table}({key})")
    for table, uses in bdcc_scheme.design.table_uses.items():
        if uses:
            print(f"  table {table}: " + ", ".join(
                f"{u.dimension.name} via {u.path_string()}" for u in uses
            ))

    print("\n== query: north-region revenue over a day range ==")
    results = {}
    for name, pdb in physical.items():
        executor = Executor(pdb)
        result = executor.execute(revenue_per_region_query())
        results[name] = result
        m = result.metrics
        print(
            f"  {name:>5}: simulated {m.total_seconds * 1e3:7.3f} ms, "
            f"IO {m.io_bytes / 1e6:6.2f} MB, peak mem {m.peak_memory_bytes / 1e3:8.1f} KB"
        )
        for note in m.notes:
            print(f"         - {note}")
    assert sorted(results["plain"].rows) == sorted(results["bdcc"].rows)
    speedup = (
        results["plain"].metrics.total_seconds / results["bdcc"].metrics.total_seconds
    )
    print(f"\n  identical results; BDCC speedup {speedup:.2f}x")


if __name__ == "__main__":
    main()
