"""Replication extension (the paper's future work (ii)).

A second LINEITEM copy clustered only on D_PART sits next to the primary
(date/nation/part Z-order).  The executor routes each scan to the copy
whose groups prune hardest: part-selective queries hit the replica,
date-selective queries stay on the primary.
"""

from __future__ import annotations

import pytest

from repro.schemes.bdcc import BDCCScheme
from repro.tpch.harness import run_suite
from repro.tpch.queries import QUERIES

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

PART_QUERIES = {q: QUERIES[q] for q in ("Q14", "Q17", "Q19")}
DATE_QUERIES = {q: QUERIES[q] for q in ("Q03", "Q04", "Q06")}

_rows = {}


def _build(bench_db, bench_env, replicated):
    scheme = BDCCScheme(
        advisor_config=bench_env.advisor_config(),
        page_model=bench_env.page_model,
        replica_uses={"lineitem": [[3]]} if replicated else None,
    )
    return scheme.build(bench_db)


@pytest.mark.parametrize("mode", ["single-copy", "with-part-replica"])
def test_replication(benchmark, mode, bench_db, bench_env):
    def run():
        pdb = _build(bench_db, bench_env, replicated=mode == "with-part-replica")
        part = run_suite({"bdcc": pdb}, bench_env, queries=PART_QUERIES).schemes["bdcc"]
        date = run_suite({"bdcc": pdb}, bench_env, queries=DATE_QUERIES).schemes["bdcc"]
        return part.total_seconds, date.total_seconds

    part_s, date_s = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[mode] = (part_s, date_s)
    benchmark.extra_info.update(
        part_queries_ms=round(part_s * 1e3, 3), date_queries_ms=round(date_s * 1e3, 3)
    )
    if len(_rows) == 2:
        lines = [
            f"Replication (BDCC + D_PART replica of LINEITEM, SF={bench_env.scale_factor})",
            f"{'layout':<20}{'part-q ms':>11}{'date-q ms':>11}",
        ]
        for mode_name, (p, d) in _rows.items():
            lines.append(f"{mode_name:<20}{p * 1e3:11.3f}{d * 1e3:11.3f}")
        lines.append(
            "the replica may only help part-selective scans; date queries "
            "must be unaffected (primary retained)"
        )
        assert _rows["with-part-replica"][0] <= _rows["single-copy"][0] * 1.001
        assert _rows["with-part-replica"][1] == pytest.approx(
            _rows["single-copy"][1], rel=1e-6
        )
        write_report(
            "replication",
            "\n".join(lines),
            data={
                "part_queries": sorted(PART_QUERIES),
                "date_queries": sorted(DATE_QUERIES),
                "modes": {
                    mode_name: {
                        "part_queries_seconds": p,
                        "date_queries_seconds": d,
                    }
                    for mode_name, (p, d) in _rows.items()
                },
            },
        )
