"""Figure 2: cold execution times of all 22 TPC-H queries, Plain vs PK
vs BDCC.

Paper (SF100): totals 630.82 s (plain) / 491.33 s (PK) / 284.43 s (BDCC)
— BDCC > 2x faster than plain and 42% faster than PK; Q1 shows no gain,
Q16 a slight regression.  We reproduce the per-query and total *shape*
with the simulated cost model; the report records paper vs measured.
"""

from __future__ import annotations

import pytest

from repro.tpch.harness import run_suite
from repro.tpch.queries import QUERIES

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

PAPER_TOTALS = {"plain": 630.82, "pk": 491.33, "bdcc": 284.43}

_results = {}


def _run_one_scheme(name, bench_pdbs, bench_env):
    suite = run_suite({name: bench_pdbs[name]}, bench_env, queries=QUERIES)
    return suite.schemes[name]


@pytest.mark.parametrize("scheme", ["plain", "pk", "bdcc"])
def test_fig2_scheme(benchmark, scheme, bench_pdbs, bench_env):
    result = benchmark.pedantic(
        _run_one_scheme, args=(scheme, bench_pdbs, bench_env),
        rounds=1, iterations=1,
    )
    _results[scheme] = result
    benchmark.extra_info["simulated_total_ms"] = round(result.total_seconds * 1e3, 3)
    benchmark.extra_info["paper_total_s_sf100"] = PAPER_TOTALS[scheme]

    if len(_results) == 3:
        _report(bench_env)


def _report(bench_env):
    lines = [
        f"Figure 2 — execution time per query (simulated ms, SF={bench_env.scale_factor})",
        f"{'query':<6}{'plain':>12}{'pk':>12}{'bdcc':>12}",
    ]
    for q in sorted(_results["plain"].measurements):
        lines.append(
            f"{q:<6}"
            + "".join(
                f"{_results[s].measurements[q].seconds * 1e3:12.3f}"
                for s in ("plain", "pk", "bdcc")
            )
        )
    totals = {s: _results[s].total_seconds for s in _results}
    lines.append(
        f"{'total':<6}" + "".join(f"{totals[s] * 1e3:12.3f}" for s in ("plain", "pk", "bdcc"))
    )
    lines.append("")
    lines.append("paper totals at SF100 [s]:   plain 630.82   pk 491.33   bdcc 284.43")
    lines.append(
        "measured ratios:  plain/bdcc %.2fx (paper 2.22x)   pk/bdcc %.2fx (paper 1.73x)"
        % (totals["plain"] / totals["bdcc"], totals["pk"] / totals["bdcc"])
    )
    write_report(
        "fig2_execution_times",
        "\n".join(lines),
        data={
            "paper_totals_s_sf100": PAPER_TOTALS,
            "per_query_seconds": {
                s: {
                    q: m.seconds for q, m in _results[s].measurements.items()
                }
                for s in _results
            },
            "total_seconds": totals,
            "ratios": {
                "plain_over_bdcc": totals["plain"] / totals["bdcc"],
                "pk_over_bdcc": totals["pk"] / totals["bdcc"],
            },
        },
    )
