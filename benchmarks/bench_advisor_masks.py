"""The paper's dimension-use table: per-table paths and interleave masks.

The paths must match the paper verbatim at any scale; the masks match
bit-for-bit when computed with the paper's SF100 dimension granularities
(5/13/13 bits), which is what this report prints alongside the
at-this-scale masks of the actually built tables.
"""

from __future__ import annotations

from repro.core.advisor import SchemaAdvisor
from repro.core.bits import mask_to_string
from repro.core.interleave import assign_masks

import pytest

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

PAPER_BITS = {"D_NATION": 5, "D_PART": 13, "D_DATE": 13}

PAPER_TABLE = [
    ("nation", "D_NATION", "-", "11111"),
    ("supplier", "D_NATION", "FK_S_N", "11111"),
    ("customer", "D_NATION", "FK_C_N", "11111"),
    ("part", "D_PART", "-", "1111111111111"),
    ("partsupp", "D_PART", "FK_PS_P", "101010101011111111"),
    ("partsupp", "D_NATION", "FK_PS_S.FK_S_N", "10101010100000000"),
    ("orders", "D_DATE", "-", "101010101011111111"),
    ("orders", "D_NATION", "FK_O_C.FK_C_N", "10101010100000000"),
]


def test_advisor_masks(benchmark, bench_db, bench_env):
    advisor = SchemaAdvisor(bench_db.schema, bench_env.advisor_config())
    built = benchmark.pedantic(advisor.build, args=(bench_db,), rounds=1, iterations=1)

    lines = [
        "Algorithm 2 dimension-use table — masks at the paper's SF100 granularities",
        f"{'table':<10}{'dimension':<10}{'path':<24}{'mask (paper == ours)'}",
    ]
    matched = 0
    by_table = {}
    for table, dim, path, mask in PAPER_TABLE:
        by_table.setdefault(table, []).append((dim, path, mask))
    for table, rows in by_table.items():
        bits = [PAPER_BITS[d] for d, _, _ in rows]
        masks = assign_masks(bits)
        total = sum(bits)
        for (dim, path, paper_mask), mask in zip(rows, masks):
            ours = mask_to_string(mask, total).lstrip("0")
            flag = "OK" if ours == paper_mask else "MISMATCH"
            matched += ours == paper_mask
            lines.append(f"{table:<10}{dim:<10}{path:<24}{paper_mask}  [{flag}]")
    assert matched == len(PAPER_TABLE)

    lines.append("")
    lines.append(
        f"built tables at SF={bench_env.scale_factor} "
        "(table: B total bits, b count-table bits, groups):"
    )
    for name, bdcc in built.items():
        lines.append(
            f"  {name:<10} B={bdcc.total_bits:<3} b={bdcc.granularity:<3} "
            f"groups={bdcc.count_table.num_groups}"
        )
    benchmark.extra_info["paper_masks_matched"] = matched
    write_report(
        "advisor_masks",
        "\n".join(lines),
        data={
            "paper_masks_matched": matched,
            "paper_masks_total": len(PAPER_TABLE),
            "built_tables": {
                name: {
                    "total_bits": bdcc.total_bits,
                    "granularity": bdcc.granularity,
                    "groups": bdcc.count_table.num_groups,
                }
                for name, bdcc in built.items()
            },
        },
    )
