"""Ablation: sandwich operators (the [3] machinery BDCC enables).

Paper: Q9 and Q13 are accelerated *strictly* by sandwiched execution, and
memory drops across the board.  Compare BDCC with and without sandwiching
on the join/aggregation-heavy queries.
"""

from __future__ import annotations

import pytest

from repro.planner.executor import ExecutionOptions
from repro.tpch.queries import QUERIES
from repro.tpch.runner import run_query

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

QUERY_SET = ["Q09", "Q13", "Q18", "Q21"]

_rows = {}


@pytest.mark.parametrize("mode", ["sandwich-on", "sandwich-off"])
def test_sandwich_ablation(benchmark, mode, bench_pdbs, bench_env):
    options = ExecutionOptions(enable_sandwich=(mode == "sandwich-on"))

    def run():
        per_query = {}
        for qname in QUERY_SET:
            _, metrics = run_query(
                bench_pdbs["bdcc"], QUERIES[qname],
                disk=bench_env.disk, costs=bench_env.cost_model,
                options=options,
            )
            per_query[qname] = (metrics.total_seconds, metrics.peak_memory_bytes)
        return per_query

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[mode] = per_query
    benchmark.extra_info["simulated_ms"] = round(
        sum(s for s, _ in per_query.values()) * 1e3, 3
    )
    if len(_rows) == 2:
        lines = [
            f"Sandwich ablation (BDCC, SF={bench_env.scale_factor})",
            f"{'query':<6}{'on ms':>10}{'off ms':>10}{'on MB':>10}{'off MB':>10}",
        ]
        for qname in QUERY_SET:
            s_on, m_on = _rows["sandwich-on"][qname]
            s_off, m_off = _rows["sandwich-off"][qname]
            lines.append(
                f"{qname:<6}{s_on * 1e3:10.3f}{s_off * 1e3:10.3f}"
                f"{m_on / 1e6:10.4f}{m_off / 1e6:10.4f}"
            )
        write_report(
            "ablation_sandwich",
            "\n".join(lines),
            data={
                "queries": QUERY_SET,
                "modes": {
                    mode_name: {
                        qname: {"seconds": s, "peak_memory_bytes": m}
                        for qname, (s, m) in per_query.items()
                    }
                    for mode_name, per_query in _rows.items()
                },
            },
        )
