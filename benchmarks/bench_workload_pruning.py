"""Workload-aware use pruning (future-work extension, DESIGN.md §3).

LINEITEM carries four dimension uses under the full design.  A
date-dominated workload lets the analyzer drop the part/supplier uses;
the pruned table clusters on fewer bits, improving the date queries'
granularity while giving up part-side acceleration — the trade-off the
paper's "ignore dimension uses with less impact" remark anticipates.
"""

from __future__ import annotations

import pytest

from repro.core.advisor import SchemaAdvisor
from repro.core.workload import WorkloadAnalyzer, prune_design
from repro.schemes.base import PhysicalScheme
from repro.schemes.bdcc import BDCCScheme
from repro.tpch.harness import run_suite
from repro.tpch.queries import QUERIES

DATE_QUERIES = {q: QUERIES[q] for q in ("Q01", "Q03", "Q04", "Q06", "Q10", "Q12")}
PART_QUERIES = {q: QUERIES[q] for q in ("Q09", "Q14", "Q16", "Q19")}

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

_rows = {}


class _PrunedBDCC(BDCCScheme):
    def __init__(self, scores, max_uses, **kwargs):
        super().__init__(**kwargs)
        self._scores = scores
        self._max_uses = max_uses

    def build(self, db):
        advisor = SchemaAdvisor(db.schema, self.advisor_config)
        self.design = prune_design(advisor.design(db), self._scores, self._max_uses)
        self._built = advisor.build(db, self.design)
        return PhysicalScheme.build(self, db)


def _score(bench_db):
    """Score against an archetype of the date-dominated workload."""
    design = SchemaAdvisor(bench_db.schema).design(bench_db)
    from repro.execution.aggregate import AggSpec
    from repro.execution.expressions import col
    from repro.planner.logical import scan
    from repro.tpch.dates import days

    archetype = (
        scan("orders", predicate=col("o_orderdate").lt(days("1995-01-01")))
        .join(scan("lineitem"), on=[("o_orderkey", "l_orderkey")])
        .groupby(["l_orderkey"], [AggSpec("n", "count")])
    )
    return design, WorkloadAnalyzer(bench_db.schema).score(design, [archetype] * 4)


@pytest.mark.parametrize("mode", ["full-design", "pruned-to-2"])
def test_workload_pruning(benchmark, mode, bench_db, bench_env):
    def run():
        if mode == "full-design":
            scheme = BDCCScheme(
                advisor_config=bench_env.advisor_config(),
                page_model=bench_env.page_model,
            )
        else:
            design, scores = _score(bench_db)
            scheme = _PrunedBDCC(
                scores, 2,
                advisor_config=bench_env.advisor_config(),
                page_model=bench_env.page_model,
            )
        pdb = scheme.build(bench_db)
        date = run_suite({"bdcc": pdb}, bench_env, queries=DATE_QUERIES).schemes["bdcc"]
        part = run_suite({"bdcc": pdb}, bench_env, queries=PART_QUERIES).schemes["bdcc"]
        uses = len(pdb.bdcc_tables()["lineitem"].uses)
        return uses, date.total_seconds, part.total_seconds

    uses, date_s, part_s = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[mode] = (uses, date_s, part_s)
    benchmark.extra_info.update(
        lineitem_uses=uses,
        date_queries_ms=round(date_s * 1e3, 3),
        part_queries_ms=round(part_s * 1e3, 3),
    )
    if len(_rows) == 2:
        lines = [
            f"Workload-aware use pruning (BDCC, SF={bench_env.scale_factor})",
            f"{'design':<14}{'lineitem uses':>14}{'date-q ms':>11}{'part-q ms':>11}",
        ]
        for mode_name, (u, d, p) in _rows.items():
            lines.append(f"{mode_name:<14}{u:>14}{d * 1e3:11.3f}{p * 1e3:11.3f}")
        lines.append(
            "pruning to the date-dominated workload keeps D_DATE + customer "
            "D_NATION; part-side queries lose their acceleration"
        )
        write_report(
            "workload_pruning",
            "\n".join(lines),
            data={
                "date_queries": sorted(DATE_QUERIES),
                "part_queries": sorted(PART_QUERIES),
                "modes": {
                    mode_name: {
                        "lineitem_uses": u,
                        "date_queries_seconds": d,
                        "part_queries_seconds": p,
                    }
                    for mode_name, (u, d, p) in _rows.items()
                },
            },
        )
