"""The paper's dimension table (Section IV): Algorithm 2's discovered
dimensions from the TPC-H DDL + three CREATE INDEX hints.

Paper:
    D_NATION  5 bits   NATION  (n_regionkey, n_nationkey)
    D_PART   13 bits   PART    (p_partkey)
    D_DATE   13 bits   ORDERS  (o_orderdate)

At reproduction scale the key cardinalities (hence bits) of D_PART and
D_DATE shrink with SF; identities and D_NATION match exactly, and the
13-bit cap is verified against SF100 cardinalities in the test suite.
"""

from __future__ import annotations

from repro.core.advisor import SchemaAdvisor

import pytest

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

PAPER_ROWS = {
    "D_NATION": (5, "nation", "n_regionkey,n_nationkey"),
    "D_PART": (13, "part", "p_partkey"),
    "D_DATE": (13, "orders", "o_orderdate"),
}


def test_advisor_dimensions(benchmark, bench_db, bench_env):
    advisor = SchemaAdvisor(bench_db.schema, bench_env.advisor_config())
    design = benchmark.pedantic(advisor.design, args=(bench_db,), rounds=1, iterations=1)

    lines = [
        "Algorithm 2 dimension table — paper (SF100) vs measured "
        f"(SF={bench_env.scale_factor})",
        f"{'dimension':<10}{'bits(paper)':>12}{'bits(ours)':>12}  host/key",
    ]
    dimensions = {}
    for name, bits, table, key in sorted(design.describe_dimensions()):
        paper_bits, paper_table, paper_key = PAPER_ROWS[name]
        assert table == paper_table and key == paper_key
        lines.append(f"{name:<10}{paper_bits:>12}{bits:>12}  {table}({key})")
        benchmark.extra_info[name] = bits
        dimensions[name] = {
            "bits": bits, "paper_bits": paper_bits, "table": table, "key": key,
        }
    write_report(
        "advisor_dimensions", "\n".join(lines), data={"dimensions": dimensions}
    )
