"""Algorithm 1(iii): count-table granularity vs the efficient random
access size A_R.

Reproduces the paper's in-text LINEITEM computation — "the highest
density column l_comment has 550000 pages, Algorithm 1 chose
ceil(log2(550000)) = 20 bits" — and sweeps A_R at reproduction scale to
show the knob working: bigger A_R, coarser count table, fewer but larger
groups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bdcc_table import BDCCBuildConfig
from repro.core.histograms import GranularityStats, choose_granularity
from repro.tpch.harness import build_schemes

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast


def test_paper_lineitem_20_bits(benchmark):
    """The SF100 computation, through the real selection rule."""

    def compute():
        pages = 550_000
        page_bytes = 32 * 1024
        rows = 6_000_000_000
        bytes_per_tuple = pages * page_bytes / rows
        total_bits = 36
        stats = GranularityStats(
            total_bits=total_bits,
            num_groups=[min(2**g, rows) for g in range(total_bits + 1)],
            median_group_size=[rows / 2**g for g in range(total_bits + 1)],
            log_histograms=[np.zeros(1)] * (total_bits + 1),
        )
        return choose_granularity(stats, bytes_per_tuple, page_bytes)

    chosen = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert chosen == 20
    benchmark.extra_info["chosen_bits"] = chosen
    write_report(
        "granularity_paper_rule",
        "LINEITEM at SF100: densest column 550000 x 32KB pages -> "
        f"Algorithm 1 picks b = {chosen} bits (paper: 20)",
        data={"chosen_bits": chosen, "paper_bits": 20},
    )


def test_granularity_sweep(benchmark, bench_db, bench_env):
    """A_R sweep at reproduction scale."""

    def sweep():
        rows = []
        page = bench_env.page_model.page_bytes
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
            config = bench_env.advisor_config()
            config.build = BDCCBuildConfig(efficient_access_bytes=page * factor)
            pdbs = build_schemes(
                bench_db, bench_env, include=("bdcc",), advisor_config=config
            )
            li = pdbs["bdcc"].bdcc_tables()["lineitem"]
            rows.append((factor, li.granularity, li.count_table.num_groups))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"Count-table granularity vs A_R (LINEITEM, SF={bench_env.scale_factor})",
        f"{'A_R/page':>9}{'b bits':>8}{'groups':>9}",
    ]
    for factor, bits, groups in rows:
        lines.append(f"{factor:9.2f}{bits:8d}{groups:9d}")
    granularities = [bits for _, bits, _ in rows]
    assert granularities == sorted(granularities, reverse=True)
    write_report(
        "granularity_sweep",
        "\n".join(lines),
        data={
            "sweep": [
                {"access_over_page": factor, "bits": bits, "groups": groups}
                for factor, bits, groups in rows
            ],
        },
    )
