"""The paper's "Other Orderings" comparison (in-text, Section IV).

Automatic Z-order (round-robin interleaving) vs a hand-tuned major-minor
layout using the same dimensions and bit counts, favouring the time
dimension as major.  Paper: both runs comparable, Z-order slightly
faster (284 s vs 291 s at SF100).
"""

from __future__ import annotations

import pytest

from repro.core.bdcc_table import BDCCBuildConfig
from repro.tpch.harness import build_schemes, run_suite
from repro.tpch.queries import QUERIES

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

_totals = {}


def _run(bench_db, bench_env, interleave):
    build = BDCCBuildConfig(
        efficient_access_bytes=bench_env.build_config.efficient_access_bytes,
        interleave=interleave,
    )
    config = bench_env.advisor_config()
    config.build = build
    pdbs = build_schemes(bench_db, bench_env, include=("bdcc",), advisor_config=config)
    suite = run_suite(pdbs, bench_env, queries=QUERIES)
    return suite.schemes["bdcc"]


@pytest.mark.parametrize("interleave", ["round_robin", "major_minor"])
def test_ordering(benchmark, interleave, bench_db, bench_env):
    result = benchmark.pedantic(
        _run, args=(bench_db, bench_env, interleave), rounds=1, iterations=1
    )
    _totals[interleave] = result
    benchmark.extra_info["simulated_total_ms"] = round(result.total_seconds * 1e3, 3)

    if len(_totals) == 2:
        z = _totals["round_robin"].total_seconds
        mm = _totals["major_minor"].total_seconds
        lines = [
            "Other Orderings — automatic Z-order vs hand-tuned major-minor "
            f"(simulated ms, SF={bench_env.scale_factor})",
            f"  z-order (automatic):  {z * 1e3:10.3f}",
            f"  major-minor (manual): {mm * 1e3:10.3f}",
            f"  ratio mm/z: {mm / z:.3f}   (paper: 291 s / 284 s = 1.025)",
        ]
        write_report(
            "zorder_vs_majorminor",
            "\n".join(lines),
            data={
                "zorder_seconds": z,
                "major_minor_seconds": mm,
                "ratio_mm_over_z": mm / z,
                "paper_ratio": 291.0 / 284.0,
            },
        )
