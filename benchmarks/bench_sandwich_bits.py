"""Sweep of the sandwich group-bit budget.

More group bits mean smaller per-group state (memory falls ~2^bits) but
more per-group overhead and scatter accesses — the trade-off behind the
paper's Q16 regression.  Swept on the sandwich-dominated queries.
"""

from __future__ import annotations

import pytest

from repro.planner.executor import ExecutionOptions
from repro.tpch.queries import QUERIES
from repro.tpch.runner import run_query

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

QUERY_SET = ["Q09", "Q13", "Q18"]
BITS = [0, 2, 4, 8, 12]

_rows = {}


@pytest.mark.parametrize("bits", BITS)
def test_sandwich_bits(benchmark, bits, bench_pdbs, bench_env):
    options = ExecutionOptions(max_sandwich_bits=bits, enable_sandwich=bits > 0)

    def run():
        seconds = 0.0
        memory = 0.0
        for qname in QUERY_SET:
            _, metrics = run_query(
                bench_pdbs["bdcc"], QUERIES[qname],
                disk=bench_env.disk, costs=bench_env.cost_model, options=options,
            )
            seconds += metrics.total_seconds
            memory += metrics.peak_memory_bytes
        return seconds, memory

    seconds, memory = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[bits] = (seconds, memory)
    benchmark.extra_info.update(
        simulated_ms=round(seconds * 1e3, 3), total_peak_MB=round(memory / 1e6, 4)
    )
    if len(_rows) == len(BITS):
        lines = [
            f"Sandwich bit-budget sweep over {QUERY_SET} (BDCC, SF={bench_env.scale_factor})",
            f"{'bits':>5}{'sim ms':>10}{'sum peak MB':>13}",
        ]
        for bits_value in BITS:
            s, m = _rows[bits_value]
            lines.append(f"{bits_value:>5}{s * 1e3:10.3f}{m / 1e6:13.4f}")
        memories = [_rows[b][1] for b in BITS]
        assert memories[0] >= memories[-1]  # more bits, less memory
        write_report(
            "sandwich_bits_sweep",
            "\n".join(lines),
            data={
                "queries": QUERY_SET,
                "sweep": [
                    {
                        "bits": bits_value,
                        "seconds": _rows[bits_value][0],
                        "sum_peak_bytes": _rows[bits_value][1],
                    }
                    for bits_value in BITS
                ],
            },
        )
