"""Ablation: MinMax (zone map) indices under BDCC.

Paper: Q6, Q12 and Q20 benefit from the o_orderdate/l_shipdate
correlation — MinMax indices identify pushdown ranges only because BDCC's
clustering creates date locality.  Plain storage has the same indices but
no locality; both effects are shown here.
"""

from __future__ import annotations

import pytest

from repro.planner.executor import ExecutionOptions
from repro.tpch.queries import QUERIES
from repro.tpch.runner import run_query

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

QUERY_SET = ["Q06", "Q12", "Q20"]

_rows = {}


@pytest.mark.parametrize(
    "mode", ["bdcc-minmax", "bdcc-nominmax", "plain-minmax"]
)
def test_minmax_ablation(benchmark, mode, bench_pdbs, bench_env):
    scheme = "plain" if mode.startswith("plain") else "bdcc"
    options = ExecutionOptions(enable_minmax=not mode.endswith("nominmax"))

    def run():
        out = {}
        for qname in QUERY_SET:
            _, metrics = run_query(
                bench_pdbs[scheme], QUERIES[qname],
                disk=bench_env.disk, costs=bench_env.cost_model,
                options=options,
            )
            out[qname] = (metrics.total_seconds, metrics.io_bytes)
        return out

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[mode] = per_query
    benchmark.extra_info["io_MB"] = round(
        sum(b for _, b in per_query.values()) / 1e6, 3
    )
    if len(_rows) == 3:
        lines = [
            f"MinMax (zone map) ablation (SF={bench_env.scale_factor})",
            f"{'query':<6}{'bdcc+mm IO MB':>15}{'bdcc-mm IO MB':>15}{'plain+mm IO MB':>16}",
        ]
        for qname in QUERY_SET:
            lines.append(
                f"{qname:<6}"
                f"{_rows['bdcc-minmax'][qname][1] / 1e6:15.3f}"
                f"{_rows['bdcc-nominmax'][qname][1] / 1e6:15.3f}"
                f"{_rows['plain-minmax'][qname][1] / 1e6:16.3f}"
            )
        lines.append(
            "zone maps prune under BDCC (clustering creates locality) and "
            "are inert on plain storage"
        )
        write_report(
            "ablation_minmax",
            "\n".join(lines),
            data={
                "queries": QUERY_SET,
                "modes": {
                    mode_name: {
                        qname: {"seconds": s, "io_bytes": b}
                        for qname, (s, b) in per_query.items()
                    }
                    for mode_name, per_query in _rows.items()
                },
            },
        )
