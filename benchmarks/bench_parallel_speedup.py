"""Parallel speedup: makespan vs worker count on the scan-heavy queries.

Runs Q1/Q6 (and the join-bearing Q3) under BDCC across worker counts and
prints resource-seconds vs makespan per count.  Asserts the scheduling
invariant the subsystem promises: the makespan is monotonically
non-increasing in the worker count while the disk has free parallel
streams, and never regresses materially beyond them (extra workers then
only pay the bounded per-fragment overhead).

Usable standalone (CI runs ``python benchmarks/bench_parallel_speedup.py
--smoke``) — no pytest required.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.planner.executor import ExecutionOptions, Executor  # noqa: E402
from repro.tpch.datagen import generate  # noqa: E402
from repro.tpch.environment import make_environment  # noqa: E402
from repro.tpch.harness import build_schemes  # noqa: E402
from repro.tpch.queries import QUERIES  # noqa: E402
from repro.tpch.runner import QueryRunner  # noqa: E402

WORKER_COUNTS = (1, 2, 4, 8)
MONOTONE_QUERIES = ("Q01", "Q06")  # scan-heavy: the headline speedups
EXTRA_QUERIES = ("Q03",)           # join-bearing, broadcast fragments


def run(scale_factor: float, seed: int) -> int:
    print(f"generating TPC-H SF={scale_factor} (seed {seed}) ...", file=sys.stderr)
    db = generate(scale_factor=scale_factor, seed=seed)
    env = make_environment(scale_factor)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]
    streams = env.disk.parallel_streams

    lines = [
        f"parallel speedup (BDCC, SF={scale_factor}, "
        f"{streams} disk streams); wall = makespan ms",
        f"{'query':<6}" + "".join(f"{f'w={w} wall':>12}{f'w={w} x':>9}" for w in WORKER_COUNTS),
    ]
    failures = []
    for qname in MONOTONE_QUERIES + EXTRA_QUERIES:
        spans = {}
        row = f"{qname:<6}"
        serial_total = None
        for workers in WORKER_COUNTS:
            executor = Executor(
                pdb, disk=env.disk, costs=env.cost_model,
                options=ExecutionOptions(workers=workers),
            )
            runner = QueryRunner(executor)
            QUERIES[qname](runner)
            spans[workers] = runner.metrics.makespan_seconds
            if workers == 1:
                serial_total = runner.metrics.total_seconds
            row += (
                f"{spans[workers] * 1e3:12.3f}"
                f"{serial_total / spans[workers]:9.2f}"
            )
        lines.append(row)
        if qname in MONOTONE_QUERIES:
            counts = list(WORKER_COUNTS)
            for prev, cur in zip(counts, counts[1:]):
                slack = 1.02 if cur <= streams else 1.10
                if spans[cur] > spans[prev] * slack:
                    failures.append(
                        f"{qname}: makespan rose {spans[prev] * 1e3:.3f} -> "
                        f"{spans[cur] * 1e3:.3f} ms going {prev} -> {cur} workers"
                    )
            if spans[4] >= spans[1] / 2:
                failures.append(
                    f"{qname}: 4 workers reached only "
                    f"{spans[1] / spans[4]:.2f}x over 1 worker"
                )

    report = "\n".join(lines)
    print(report)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "parallel_speedup.txt").write_text(report + "\n")
    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {f}" for f in failures), file=sys.stderr)
        return 1
    print("\nmakespan monotone non-increasing in worker count: PASS", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale factor for CI (default uses REPRO_SF or 0.02)",
    )
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    scale_factor = args.sf
    if scale_factor is None:
        scale_factor = 0.01 if args.smoke else float(os.environ.get("REPRO_SF", "0.02"))
    return run(scale_factor, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
