"""Parallel speedup: makespan vs worker count, scans and joins.

Runs the scan-heavy Q1/Q6 and the join-bearing Q3 under BDCC across
worker counts and prints resource-seconds vs makespan per count; for
Q1/Q6 it additionally prints the gather-then-aggregate path (partial
aggregation disabled) and for Q3 the broadcast-only path
(co-partitioning disabled) next to the default one.  Asserts the
invariants the subsystem promises:

* the makespan is monotonically non-increasing in the worker count for
  every reported query — joins included — while the disk has free
  parallel streams, and never regresses materially beyond them;
* Q1/Q6 reach >= 2x at 4 workers;
* Q1's two-phase aggregation reaches >= 3x at 4 workers and beats the
  gather-then-aggregate path by >= 1.3x there (Q1's serial tail —
  aggregating every gathered row on one worker — is the bottleneck the
  partial/merge rewrite removes);
* Q3's co-partitioned join reaches >= 1.5x at 4 workers and beats the
  broadcast-only path, whose build side serialises it.

A final cost-model validation stage re-runs Q1/Q6/Q3 on the *process*
backend (a real multiprocessing pool over shared-memory column exports)
and regresses the simulated makespans against the measured wall clocks:
results must be bit-identical across backends, and the Pearson
correlation of simulated-vs-measured is reported.  Measured-speedup
assertions are gated on the host's core count — a single-core container
physically cannot show wall-clock speedup, and the report says so
instead of pretending.

Usable standalone (CI runs ``python benchmarks/bench_parallel_speedup.py
--smoke``) — no pytest required.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.observe import SCHEMA_VERSION, history  # noqa: E402
from repro.planner.executor import ExecutionOptions, Executor  # noqa: E402
from repro.tpch.datagen import generate  # noqa: E402
from repro.tpch.environment import make_environment  # noqa: E402
from repro.tpch.harness import build_schemes  # noqa: E402
from repro.tpch.queries import QUERIES  # noqa: E402
from repro.tpch.runner import QueryRunner  # noqa: E402

WORKER_COUNTS = (1, 2, 4, 8)
SCAN_QUERIES = ("Q01", "Q06")  # scan-heavy: the headline >= 2x speedups
JOIN_QUERIES = ("Q03",)        # co-partitioned sandwich join vs broadcast
VALIDATION_QUERIES = ("Q01", "Q06", "Q03")
VALIDATION_WORKERS = (2, 4)
VALIDATION_REPEATS = 3


def _makespans(pdb, env, qname, copartition=True, partial_agg=True,
               counts=WORKER_COUNTS):
    spans = {}
    serial_total = None
    for workers in counts:
        executor = Executor(
            pdb, disk=env.disk, costs=env.cost_model,
            options=ExecutionOptions(
                workers=workers, enable_copartition=copartition,
                enable_partial_agg=partial_agg,
            ),
        )
        runner = QueryRunner(executor)
        QUERIES[qname](runner)
        spans[workers] = runner.metrics.makespan_seconds
        if workers == 1:
            serial_total = runner.metrics.total_seconds
    return spans, serial_total


def _timed_query(executor, qname, repeats):
    """Best-of-``repeats`` execution: (relation, merged metrics, wall s)."""
    best = None
    for _ in range(repeats):
        runner = QueryRunner(executor)
        started = time.perf_counter()
        result = QUERIES[qname](runner)
        wall = time.perf_counter() - started
        if best is None or wall < best[2]:
            best = (result.relation, runner.metrics, wall)
    return best


def _identical(a, b):
    """Bit-for-bit relation equality (NaN pairs count as equal)."""
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        left, right = a.column(name), b.column(name)
        equal = (
            np.array_equal(left, right, equal_nan=True)
            if left.dtype.kind == "f" and right.dtype.kind == "f"
            else np.array_equal(left, right)
        )
        if not equal:
            return False
    return True


def validate_backends(pdb, env, lines, failures, repeats=VALIDATION_REPEATS,
                      data=None):
    """Run the validation queries on the process backend and regress the
    simulated makespans against the measured wall clocks.

    Wall measurements are best-of-``repeats`` whole-query timings; the
    correlation uses the backend's own fragment wall
    (``measured_wall_seconds``), which is the quantity the simulated
    makespan models.  Measured-speedup assertions only arm on hosts with
    enough cores to make speedup physically possible."""
    cores = os.cpu_count() or 1
    lines.append("")
    lines.append(
        "cost-model validation: process backend vs simulated charges "
        f"({cores} core(s), best of {repeats} runs)"
    )
    lines.append(
        f"{'query':<8}{'w':>3}{'sim makespan ms':>17}{'measured ms':>13}"
        f"{'measured x':>12}{'identical':>11}"
    )
    serial_walls = {}
    points = []
    executors = []
    try:
        serial_ex = Executor(
            pdb, disk=env.disk, costs=env.cost_model,
            options=ExecutionOptions(workers=1),
        )
        executors.append(serial_ex)
        for qname in VALIDATION_QUERIES:
            serial_walls[qname] = _timed_query(serial_ex, qname, repeats)[2]
        for workers in VALIDATION_WORKERS:
            sim_ex = Executor(
                pdb, disk=env.disk, costs=env.cost_model,
                options=ExecutionOptions(workers=workers, min_partition_rows=256),
            )
            # one process executor per worker count: the pool and the
            # shared-memory exports are reused across the three queries
            proc_ex = Executor(
                pdb, disk=env.disk, costs=env.cost_model,
                options=ExecutionOptions(
                    workers=workers, min_partition_rows=256, backend="process"
                ),
            )
            executors.extend([sim_ex, proc_ex])
            for qname in VALIDATION_QUERIES:
                sim_rel, sim_metrics, _ = _timed_query(sim_ex, qname, 1)
                proc_rel, proc_metrics, proc_wall = _timed_query(
                    proc_ex, qname, repeats
                )
                identical = _identical(sim_rel, proc_rel)
                if not identical:
                    failures.append(
                        f"{qname} w={workers}: process-backend result is not "
                        "bit-identical to the simulated backend's"
                    )
                if proc_metrics.backend != "process":
                    failures.append(
                        f"{qname} w={workers}: expected process-backend "
                        f"metrics, got {proc_metrics.backend!r}"
                    )
                measured = proc_metrics.measured_wall_seconds
                speedup = serial_walls[qname] / proc_wall
                points.append((sim_metrics.makespan_seconds, measured))
                if data is not None:
                    data["validation"].append(
                        {
                            "query": qname,
                            "workers": workers,
                            "simulated_makespan_seconds": sim_metrics.makespan_seconds,
                            "measured_wall_seconds": measured,
                            "best_wall_seconds": proc_wall,
                            "measured_speedup": speedup,
                            "identical": identical,
                        }
                    )
                lines.append(
                    f"{qname:<8}{workers:>3}"
                    f"{sim_metrics.makespan_seconds * 1e3:>17.3f}"
                    f"{measured * 1e3:>13.3f}"
                    f"{speedup:>12.2f}"
                    f"{'yes' if identical else 'NO':>11}"
                )
                if qname == "Q06" and workers == 4:
                    if cores >= 4 and speedup <= 1.0:
                        failures.append(
                            f"Q06: measured speedup {speedup:.2f}x at 4 "
                            f"workers on a {cores}-core host (expected > 1)"
                        )
    finally:
        for executor in executors:
            executor.close()
    simulated = np.array([p[0] for p in points])
    measured = np.array([p[1] for p in points])
    if len(points) >= 2 and simulated.std() > 0 and measured.std() > 0:
        r = float(np.corrcoef(simulated, measured)[0, 1])
        if data is not None:
            data["pearson_r"] = r
        lines.append(
            f"simulated-makespan vs measured-wall Pearson r = {r:.3f} "
            f"over {len(points)} parallel plans"
        )
    if cores < 4:
        lines.append(
            f"note: {cores}-core host — measured wall-clock speedup > 1 is "
            "physically unattainable here (fragments serialise on the one "
            "core and walls are dominated by dispatch/IPC overhead, so the "
            "correlation is informational only); measured-speedup "
            "assertions are disarmed, while simulated charges and "
            "bit-identical results are still enforced"
        )


def run(scale_factor: float, seed: int, json_mode: bool = False) -> int:
    print(f"generating TPC-H SF={scale_factor} (seed {seed}) ...", file=sys.stderr)
    db = generate(scale_factor=scale_factor, seed=seed)
    env = make_environment(scale_factor)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]
    streams = env.disk.parallel_streams

    lines = [
        f"parallel speedup (BDCC, SF={scale_factor}, "
        f"{streams} disk streams); wall = makespan ms",
        f"{'query':<14}" + "".join(f"{f'w={w} wall':>12}{f'w={w} x':>9}" for w in WORKER_COUNTS),
    ]
    failures = []
    # the structured twin of the text report; written next to the .txt
    # and printed instead of it under --json
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    data = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_parallel_speedup",
        "scale_factor": scale_factor,
        "seed": seed,
        "git_sha": history.current_git_sha(str(repo_root)),
        "timestamp_utc": history.utc_timestamp(),
        "host": history.host_fingerprint(),
        "disk_streams": streams,
        "cores": os.cpu_count() or 1,
        "worker_counts": list(WORKER_COUNTS),
        "queries": {},
        "validation": [],
        "pearson_r": None,
    }

    def check_monotone(qname, spans):
        counts = list(WORKER_COUNTS)
        for prev, cur in zip(counts, counts[1:]):
            slack = 1.02 if cur <= streams else 1.10
            if spans[cur] > spans[prev] * slack:
                failures.append(
                    f"{qname}: makespan rose {spans[prev] * 1e3:.3f} -> "
                    f"{spans[cur] * 1e3:.3f} ms going {prev} -> {cur} workers"
                )

    def report_row(label, spans, serial_total):
        row = f"{label:<14}"
        for workers in WORKER_COUNTS:
            row += (
                f"{spans[workers] * 1e3:12.3f}"
                f"{serial_total / spans[workers]:9.2f}"
            )
        lines.append(row)
        data["queries"][label] = {
            "serial_total_seconds": serial_total,
            "makespan_seconds": {str(w): spans[w] for w in WORKER_COUNTS},
            "speedup": {str(w): serial_total / spans[w] for w in WORKER_COUNTS},
        }

    for qname in SCAN_QUERIES:
        spans, serial_total = _makespans(pdb, env, qname)
        # a serial plan never rewrites, so the w=1 run is shared
        gather, _ = _makespans(
            pdb, env, qname, partial_agg=False,
            counts=[w for w in WORKER_COUNTS if w > 1],
        )
        gather[1] = spans[1]
        report_row(qname, spans, serial_total)
        report_row(f"{qname} (gather)", gather, serial_total)
        check_monotone(qname, spans)
        if spans[4] >= spans[1] / 2:
            failures.append(
                f"{qname}: 4 workers reached only "
                f"{spans[1] / spans[4]:.2f}x over 1 worker"
            )
        if qname == "Q01":
            partial_x = serial_total / spans[4]
            over_gather = gather[4] / spans[4]
            if partial_x < 3.0:
                failures.append(
                    f"Q01: two-phase aggregation reached only "
                    f"{partial_x:.2f}x at 4 workers (expected >= 3.0x)"
                )
            if over_gather < 1.3:
                failures.append(
                    f"Q01: partial aggregation beat gather-then-aggregate "
                    f"by only {over_gather:.2f}x at 4 workers "
                    "(expected >= 1.3x)"
                )

    for qname in JOIN_QUERIES:
        spans, serial_total = _makespans(pdb, env, qname)
        # a serial plan cannot co-partition, so reuse the w=1 run above
        broadcast, _ = _makespans(
            pdb, env, qname, copartition=False,
            counts=[w for w in WORKER_COUNTS if w > 1],
        )
        broadcast[1] = spans[1]
        report_row(qname, spans, serial_total)
        report_row(f"{qname} (bcast)", broadcast, serial_total)
        check_monotone(qname, spans)
        copart_x = serial_total / spans[4]
        broadcast_x = serial_total / broadcast[4]
        if copart_x < 1.5:
            failures.append(
                f"{qname}: co-partitioned join reached only {copart_x:.2f}x "
                "at 4 workers (expected >= 1.5x)"
            )
        if copart_x <= broadcast_x:
            failures.append(
                f"{qname}: co-partition ({copart_x:.2f}x) did not beat the "
                f"broadcast-only path ({broadcast_x:.2f}x) at 4 workers"
            )

    validate_backends(pdb, env, lines, failures, data=data)

    data["failures"] = list(failures)
    data["ok"] = not failures
    report = "\n".join(lines)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "parallel_speedup.txt").write_text(report + "\n")
    (results_dir / "parallel_speedup.json").write_text(
        json.dumps(data, sort_keys=True, indent=2) + "\n"
    )

    # --- history ledgers: the speedup trajectory (simulated, hence
    # deterministic and tightly gateable) and the cost-model drift
    # trajectory (simulated-vs-measured residuals; measured walls are
    # host-sensitive, so the host's core count joins the meta and the
    # sentinel applies its wide measured-class bands).
    provenance = dict(
        directory=repo_root,
        git_sha=data["git_sha"],
        timestamp=data["timestamp_utc"],
        host=data["host"],
    )
    history.append_record(
        "parallel_speedup",
        history.flatten_metrics(
            {k: data[k] for k in ("queries", "pearson_r", "ok") if data[k] is not None}
        ),
        meta={"scale_factor": scale_factor, "seed": seed},
        **provenance,
    )
    drift = history.residual_stats(
        [
            (v["simulated_makespan_seconds"], v["measured_wall_seconds"])
            for v in data["validation"]
        ]
    )
    drift["ok"] = float(data["ok"])
    history.append_record(
        "cost_model",
        drift,
        meta={
            "scale_factor": scale_factor, "seed": seed, "cores": data["cores"],
        },
        **provenance,
    )

    print(json.dumps(data, sort_keys=True, indent=2) if json_mode else report)
    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {f}" for f in failures), file=sys.stderr)
        return 1
    print("\nmakespan monotone non-increasing in worker count: PASS", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale factor for CI (default uses REPRO_SF or 0.02)",
    )
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", action="store_true",
        help="print the structured JSON report instead of the text table "
             "(both forms are always written to benchmarks/results/)",
    )
    args = parser.parse_args(argv)
    scale_factor = args.sf
    if scale_factor is None:
        scale_factor = 0.01 if args.smoke else float(os.environ.get("REPRO_SF", "0.02"))
    return run(scale_factor, args.seed, json_mode=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
