"""Parallel speedup: makespan vs worker count, scans and joins.

Runs the scan-heavy Q1/Q6 and the join-bearing Q3 under BDCC across
worker counts and prints resource-seconds vs makespan per count; for
Q1/Q6 it additionally prints the gather-then-aggregate path (partial
aggregation disabled) and for Q3 the broadcast-only path
(co-partitioning disabled) next to the default one.  Asserts the
invariants the subsystem promises:

* the makespan is monotonically non-increasing in the worker count for
  every reported query — joins included — while the disk has free
  parallel streams, and never regresses materially beyond them;
* Q1/Q6 reach >= 2x at 4 workers;
* Q1's two-phase aggregation reaches >= 3x at 4 workers and beats the
  gather-then-aggregate path by >= 1.3x there (Q1's serial tail —
  aggregating every gathered row on one worker — is the bottleneck the
  partial/merge rewrite removes);
* Q3's co-partitioned join reaches >= 1.5x at 4 workers and beats the
  broadcast-only path, whose build side serialises it.

Usable standalone (CI runs ``python benchmarks/bench_parallel_speedup.py
--smoke``) — no pytest required.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.planner.executor import ExecutionOptions, Executor  # noqa: E402
from repro.tpch.datagen import generate  # noqa: E402
from repro.tpch.environment import make_environment  # noqa: E402
from repro.tpch.harness import build_schemes  # noqa: E402
from repro.tpch.queries import QUERIES  # noqa: E402
from repro.tpch.runner import QueryRunner  # noqa: E402

WORKER_COUNTS = (1, 2, 4, 8)
SCAN_QUERIES = ("Q01", "Q06")  # scan-heavy: the headline >= 2x speedups
JOIN_QUERIES = ("Q03",)        # co-partitioned sandwich join vs broadcast


def _makespans(pdb, env, qname, copartition=True, partial_agg=True,
               counts=WORKER_COUNTS):
    spans = {}
    serial_total = None
    for workers in counts:
        executor = Executor(
            pdb, disk=env.disk, costs=env.cost_model,
            options=ExecutionOptions(
                workers=workers, enable_copartition=copartition,
                enable_partial_agg=partial_agg,
            ),
        )
        runner = QueryRunner(executor)
        QUERIES[qname](runner)
        spans[workers] = runner.metrics.makespan_seconds
        if workers == 1:
            serial_total = runner.metrics.total_seconds
    return spans, serial_total


def run(scale_factor: float, seed: int) -> int:
    print(f"generating TPC-H SF={scale_factor} (seed {seed}) ...", file=sys.stderr)
    db = generate(scale_factor=scale_factor, seed=seed)
    env = make_environment(scale_factor)
    pdb = build_schemes(db, env, include=["bdcc"])["bdcc"]
    streams = env.disk.parallel_streams

    lines = [
        f"parallel speedup (BDCC, SF={scale_factor}, "
        f"{streams} disk streams); wall = makespan ms",
        f"{'query':<14}" + "".join(f"{f'w={w} wall':>12}{f'w={w} x':>9}" for w in WORKER_COUNTS),
    ]
    failures = []

    def check_monotone(qname, spans):
        counts = list(WORKER_COUNTS)
        for prev, cur in zip(counts, counts[1:]):
            slack = 1.02 if cur <= streams else 1.10
            if spans[cur] > spans[prev] * slack:
                failures.append(
                    f"{qname}: makespan rose {spans[prev] * 1e3:.3f} -> "
                    f"{spans[cur] * 1e3:.3f} ms going {prev} -> {cur} workers"
                )

    def report_row(label, spans, serial_total):
        row = f"{label:<14}"
        for workers in WORKER_COUNTS:
            row += (
                f"{spans[workers] * 1e3:12.3f}"
                f"{serial_total / spans[workers]:9.2f}"
            )
        lines.append(row)

    for qname in SCAN_QUERIES:
        spans, serial_total = _makespans(pdb, env, qname)
        # a serial plan never rewrites, so the w=1 run is shared
        gather, _ = _makespans(
            pdb, env, qname, partial_agg=False,
            counts=[w for w in WORKER_COUNTS if w > 1],
        )
        gather[1] = spans[1]
        report_row(qname, spans, serial_total)
        report_row(f"{qname} (gather)", gather, serial_total)
        check_monotone(qname, spans)
        if spans[4] >= spans[1] / 2:
            failures.append(
                f"{qname}: 4 workers reached only "
                f"{spans[1] / spans[4]:.2f}x over 1 worker"
            )
        if qname == "Q01":
            partial_x = serial_total / spans[4]
            over_gather = gather[4] / spans[4]
            if partial_x < 3.0:
                failures.append(
                    f"Q01: two-phase aggregation reached only "
                    f"{partial_x:.2f}x at 4 workers (expected >= 3.0x)"
                )
            if over_gather < 1.3:
                failures.append(
                    f"Q01: partial aggregation beat gather-then-aggregate "
                    f"by only {over_gather:.2f}x at 4 workers "
                    "(expected >= 1.3x)"
                )

    for qname in JOIN_QUERIES:
        spans, serial_total = _makespans(pdb, env, qname)
        # a serial plan cannot co-partition, so reuse the w=1 run above
        broadcast, _ = _makespans(
            pdb, env, qname, copartition=False,
            counts=[w for w in WORKER_COUNTS if w > 1],
        )
        broadcast[1] = spans[1]
        report_row(qname, spans, serial_total)
        report_row(f"{qname} (bcast)", broadcast, serial_total)
        check_monotone(qname, spans)
        copart_x = serial_total / spans[4]
        broadcast_x = serial_total / broadcast[4]
        if copart_x < 1.5:
            failures.append(
                f"{qname}: co-partitioned join reached only {copart_x:.2f}x "
                "at 4 workers (expected >= 1.5x)"
            )
        if copart_x <= broadcast_x:
            failures.append(
                f"{qname}: co-partition ({copart_x:.2f}x) did not beat the "
                f"broadcast-only path ({broadcast_x:.2f}x) at 4 workers"
            )

    report = "\n".join(lines)
    print(report)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "parallel_speedup.txt").write_text(report + "\n")
    if failures:
        print("\nFAIL:\n" + "\n".join(f"  - {f}" for f in failures), file=sys.stderr)
        return 1
    print("\nmakespan monotone non-increasing in worker count: PASS", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale factor for CI (default uses REPRO_SF or 0.02)",
    )
    parser.add_argument("--sf", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    scale_factor = args.sf
    if scale_factor is None:
        scale_factor = 0.01 if args.smoke else float(os.environ.get("REPRO_SF", "0.02"))
    return run(scale_factor, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
