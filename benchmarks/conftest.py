"""Benchmark fixtures: TPC-H data and the three physical schemes.

Scale factor via ``REPRO_SF`` (default 0.02); results are printed and
appended to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import tpch
from repro.observe import SCHEMA_VERSION, history
from repro.tpch.environment import make_environment
from repro.tpch.harness import build_schemes

BENCH_SF = float(os.environ.get("REPRO_SF", "0.02"))
BENCH_SEED = 7

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
#: report keys that describe the run, not its outcome — stamped into
#: the JSON twin but kept out of the ledger's metric dict.
_PROVENANCE_KEYS = (
    "schema_version", "kind", "scale_factor", "seed",
    "git_sha", "timestamp_utc", "host",
)


@pytest.fixture(scope="session")
def bench_db():
    return tpch.generate(scale_factor=BENCH_SF, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_env():
    return make_environment(BENCH_SF)


@pytest.fixture(scope="session")
def bench_pdbs(bench_db, bench_env):
    return build_schemes(bench_db, bench_env)


def write_report(name: str, text: str, data: dict | None = None) -> None:
    """Print a paper-style table and persist it under results/.  With
    ``data`` a structured JSON twin is written next to the .txt — now
    self-describing (git SHA, UTC timestamp, host fingerprint, schema
    version) — and the flattened metrics are appended as one record to
    the benchmark's history ledger ``BENCH_{name}.json`` at the repo
    root (``$REPRO_LEDGER_DIR`` overrides), growing the perf trajectory
    the regression sentinel gates on."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": name,
            "scale_factor": BENCH_SF,
            "seed": BENCH_SEED,
            "git_sha": history.current_git_sha(str(REPO_ROOT)),
            "timestamp_utc": history.utc_timestamp(),
            "host": history.host_fingerprint(),
            **data,
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(document, sort_keys=True, indent=2) + "\n"
        )
        history.append_record(
            name,
            history.flatten_metrics(
                {k: v for k, v in data.items() if k not in _PROVENANCE_KEYS}
            ),
            meta={"scale_factor": BENCH_SF, "seed": BENCH_SEED},
            directory=REPO_ROOT,
            git_sha=document["git_sha"],
            timestamp=document["timestamp_utc"],
            host=document["host"],
        )
    print(f"\n===== {name} =====\n{text}\n")
