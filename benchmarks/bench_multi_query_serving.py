"""Multi-query serving throughput: streams x admission policies.

Serves N concurrent closed-loop TPC-H query streams (each a rotation of
the probe queries) plus one RF1/RF2 refresh stream through the serving
layer, for every admission policy, and reports per-configuration:

* aggregate QPS (queries / makespan) and worker utilization;
* overall p50/p95 latency across all streams' queries;
* makespan and the refresh stream's commit + background compaction work.

Everything is simulated and deterministic, so the ledger record
(``BENCH_multi_query_serving.json``) is bit-stable per configuration
and the regression sentinel gates QPS (higher-is-better, via the
rate-over-time direction rule) and latency (lower-is-better) tightly.

Usable standalone (CI runs ``python benchmarks/bench_multi_query_serving.py
--smoke``); the report lands under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.observe import SCHEMA_VERSION, history  # noqa: E402
from repro.planner.executor import ExecutionOptions  # noqa: E402
from repro.serving import (  # noqa: E402
    POLICY_NAMES,
    PlanListStream,
    ServingEngine,
    TpchRefreshStream,
    capture_tpch_items,
)
from repro.serving.metrics import percentile  # noqa: E402
from repro.tpch.datagen import generate  # noqa: E402
from repro.tpch.environment import make_environment  # noqa: E402
from repro.tpch.harness import build_schemes  # noqa: E402
from repro.tpch.queries import QUERIES  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
#: single-stage probe queries: cheap, scheme-sensitive, deterministic.
PROBES = ("Q01", "Q06", "Q12", "Q14")
SCHEME = "bdcc"
WORKERS = 4
REFRESH_PAIRS = 1
#: multiprogramming limit: below the stream counts, so the admission
#: queue is contended and the policies actually differ.
MAX_CONCURRENT = 2


def _serve_config(sf: float, seed: int, streams: int, policy: str) -> dict:
    """One (streams, policy) cell over a fresh build (the refresh
    stream mutates the database, so sharing builds across cells would
    couple their results)."""
    db = generate(scale_factor=sf, seed=seed)
    env = make_environment(sf)
    pdb = build_schemes(db, env, include=[SCHEME])[SCHEME]
    items = capture_tpch_items(
        pdb, {q: QUERIES[q] for q in PROBES},
        disk=env.disk, costs=env.cost_model,
    )
    query_streams = []
    for i in range(streams):
        rotation = i % len(items)
        rotated = items[rotation:] + items[:rotation]
        query_streams.append(
            PlanListStream(
                f"s{i:02d}",
                [item.plan for item in rotated],
                [item.description for item in rotated],
            )
        )
    refresh = [TpchRefreshStream("rf", db, seed, pairs=REFRESH_PAIRS)]
    options = ExecutionOptions(workers=WORKERS)
    with ServingEngine(
        pdb, disk=env.disk, costs=env.cost_model, options=options,
        policy=policy, max_concurrent=MAX_CONCURRENT, keep_results=False,
    ) as engine:
        report = engine.serve(query_streams, refresh)
    latencies = [r.latency_seconds for r in report.queries]
    return {
        "queries": len(report.queries),
        "commits": len(report.commits),
        "qps": report.queries_per_second,
        "makespan_seconds": report.makespan_seconds,
        "utilization": report.utilization,
        "p50_latency_seconds": percentile(latencies, 0.50),
        "p95_latency_seconds": percentile(latencies, 0.95),
        "mean_queue_seconds": (
            sum(r.queue_seconds for r in report.queries) / len(report.queries)
            if report.queries else 0.0
        ),
        "commit_work_seconds": sum(c.work_seconds for c in report.commits),
        "compaction_seconds": sum(
            c.compaction_seconds for c in report.commits
        ),
    }


def run(sf: float, seed: int, stream_counts, json_mode: bool = False) -> int:
    cells = {}
    total_queries = 0
    total_makespan = 0.0
    for streams in stream_counts:
        for policy in POLICY_NAMES:
            print(
                f"serving {streams} stream(s) under {policy} ...",
                file=sys.stderr,
            )
            cell = _serve_config(sf, seed, streams, policy)
            cells[(streams, policy)] = cell
            total_queries += cell["queries"]
            total_makespan += cell["makespan_seconds"]

    lines = [
        f"multi-query serving (SF={sf}, scheme={SCHEME}, workers={WORKERS}, "
        f"probes={'/'.join(PROBES)}, {REFRESH_PAIRS} refresh pair(s))",
        f"{'streams':>8}{'policy':>14}{'queries':>9}{'qps':>12}"
        f"{'p50 ms':>10}{'p95 ms':>10}{'queue ms':>10}{'util %':>8}",
    ]
    for (streams, policy), cell in cells.items():
        lines.append(
            f"{streams:>8}{policy:>14}{cell['queries']:>9}"
            f"{cell['qps']:>12,.1f}"
            f"{cell['p50_latency_seconds'] * 1e3:>10.3f}"
            f"{cell['p95_latency_seconds'] * 1e3:>10.3f}"
            f"{cell['mean_queue_seconds'] * 1e3:>10.3f}"
            f"{cell['utilization'] * 100:>8.1f}"
        )
    aggregate_qps = total_queries / total_makespan if total_makespan else 0.0
    lines.append(
        f"aggregate: {total_queries} queries, "
        f"{aggregate_qps:,.1f} queries/second across all configurations"
    )
    text = "\n".join(lines)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    data = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_multi_query_serving",
        "scale_factor": sf,
        "seed": seed,
        "git_sha": history.current_git_sha(str(repo_root)),
        "timestamp_utc": history.utc_timestamp(),
        "host": history.host_fingerprint(),
        "scheme": SCHEME,
        "workers": WORKERS,
        "probes": list(PROBES),
        "stream_counts": list(stream_counts),
        "policies": list(POLICY_NAMES),
        "queries_per_second": aggregate_qps,
        "cells": {
            f"streams.{streams}.policy.{policy}": cell
            for (streams, policy), cell in cells.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "multi_query_serving.txt").write_text(text + "\n")
    (RESULTS_DIR / "multi_query_serving.json").write_text(
        json.dumps(data, sort_keys=True, indent=2) + "\n"
    )
    # ledger: one record per run; every leaf name carries a direction
    # token the sentinel reads (qps / *_seconds / utilization).
    metrics = {"queries_per_second": aggregate_qps}
    for (streams, policy), cell in cells.items():
        prefix = f"streams.{streams}.policy.{policy}"
        for key in (
            "qps", "makespan_seconds", "p50_latency_seconds",
            "p95_latency_seconds", "mean_queue_seconds",
            "commit_work_seconds", "compaction_seconds",
        ):
            metrics[f"{prefix}.{key}"] = cell[key]
    history.append_record(
        "multi_query_serving",
        metrics,
        meta={
            "scale_factor": sf,
            "seed": seed,
            "scheme": SCHEME,
            "workers": WORKERS,
            "streams": list(stream_counts),
        },
        directory=repo_root,
        git_sha=data["git_sha"],
        timestamp=data["timestamp_utc"],
        host=data["host"],
    )
    print(json.dumps(data, sort_keys=True, indent=2) if json_mode else text)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--streams", default="2,4",
        help="comma-separated stream counts to sweep (default 2,4)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale factor for CI (overrides --sf)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the structured JSON report instead of the text table "
             "(both forms are always written to benchmarks/results/)",
    )
    args = parser.parse_args()
    sf = 0.004 if args.smoke else args.sf
    counts = [int(n) for n in args.streams.split(",") if n.strip()]
    return run(sf, args.seed, counts, json_mode=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
