"""Figure 3: peak query memory of all 22 TPC-H queries per scheme.

Paper (SF100): totals 38.09 GB (plain) / 10.74 GB (PK) / 1.68 GB (BDCC);
averages 1.59 GB vs 0.09 GB (plain vs BDCC); peaks 8 GB vs 275 MB.  The
sandwiched operators' per-group state is what flattens the BDCC bars.
"""

from __future__ import annotations

import pytest

from repro.tpch.harness import run_suite
from repro.tpch.queries import QUERIES

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

PAPER = {
    "total_gb": {"plain": 38.09, "pk": 10.74, "bdcc": 1.68},
    "avg_gb": {"plain": 1.59, "bdcc": 0.09},
    "peak_gb": {"plain": 8.0, "bdcc": 0.275},
}

_results = {}


def _run_one_scheme(name, bench_pdbs, bench_env):
    suite = run_suite({name: bench_pdbs[name]}, bench_env, queries=QUERIES)
    return suite.schemes[name]


@pytest.mark.parametrize("scheme", ["plain", "pk", "bdcc"])
def test_fig3_scheme(benchmark, scheme, bench_pdbs, bench_env):
    result = benchmark.pedantic(
        _run_one_scheme, args=(scheme, bench_pdbs, bench_env),
        rounds=1, iterations=1,
    )
    _results[scheme] = result
    benchmark.extra_info["simulated_total_MB"] = round(result.total_peak_memory / 1e6, 3)
    benchmark.extra_info["simulated_max_MB"] = round(result.max_peak_memory / 1e6, 3)
    benchmark.extra_info["paper_total_GB_sf100"] = PAPER["total_gb"][scheme]

    if len(_results) == 3:
        _report(bench_env)


def _report(bench_env):
    lines = [
        f"Figure 3 — peak memory per query (simulated MB, SF={bench_env.scale_factor})",
        f"{'query':<6}{'plain':>12}{'pk':>12}{'bdcc':>12}",
    ]
    for q in sorted(_results["plain"].measurements):
        lines.append(
            f"{q:<6}"
            + "".join(
                f"{_results[s].measurements[q].peak_memory_bytes / 1e6:12.4f}"
                for s in ("plain", "pk", "bdcc")
            )
        )
    lines.append(
        f"{'total':<6}"
        + "".join(f"{_results[s].total_peak_memory / 1e6:12.4f}" for s in ("plain", "pk", "bdcc"))
    )
    plain, pk, bdcc = (_results[s] for s in ("plain", "pk", "bdcc"))
    lines.append("")
    lines.append("paper totals at SF100 [GB]: plain 38.09  pk 10.74  bdcc 1.68")
    lines.append(
        "measured ratios: total plain/bdcc %.1fx (paper 22.7x); "
        "avg plain/bdcc %.1fx (paper 17.7x); peak plain/bdcc %.1fx (paper 29x)"
        % (
            plain.total_peak_memory / max(bdcc.total_peak_memory, 1),
            plain.avg_peak_memory / max(bdcc.avg_peak_memory, 1),
            plain.max_peak_memory / max(bdcc.max_peak_memory, 1),
        )
    )
    write_report(
        "fig3_memory",
        "\n".join(lines),
        data={
            "paper_sf100": PAPER,
            "per_query_peak_bytes": {
                s: {
                    q: m.peak_memory_bytes
                    for q, m in _results[s].measurements.items()
                }
                for s in _results
            },
            "total_peak_bytes": {
                s: _results[s].total_peak_memory for s in _results
            },
            "ratios": {
                "total_plain_over_bdcc":
                    plain.total_peak_memory / max(bdcc.total_peak_memory, 1),
                "avg_plain_over_bdcc":
                    plain.avg_peak_memory / max(bdcc.avg_peak_memory, 1),
                "peak_plain_over_bdcc":
                    plain.max_peak_memory / max(bdcc.max_peak_memory, 1),
            },
        },
    )
