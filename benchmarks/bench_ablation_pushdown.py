"""Ablation: selection pushdown and propagation (DESIGN.md §3).

Runs pushdown-heavy queries under BDCC with (a) everything on, (b)
propagation off (only local-dimension pushdown), (c) pushdown fully off.
The deltas isolate how much of BDCC's Figure-2 win comes from reading
fewer count-table groups.
"""

from __future__ import annotations

import pytest

from repro.planner.executor import ExecutionOptions
from repro.tpch.queries import QUERIES
from repro.tpch.runner import run_query

from conftest import write_report

#: the fast benchmark set: every pytest bench runs in seconds at the
#: default SF, so CI appends a ledger record for all of them
pytestmark = pytest.mark.fast

QUERY_SET = ["Q03", "Q04", "Q05", "Q07", "Q08", "Q10"]

MODES = {
    "full": ExecutionOptions(),
    "local-only": ExecutionOptions(enable_propagation=False),
    "no-pushdown": ExecutionOptions(enable_pushdown=False),
}

_rows = {}


@pytest.mark.parametrize("mode", list(MODES))
def test_pushdown_ablation(benchmark, mode, bench_pdbs, bench_env):
    def run():
        totals = {"seconds": 0.0, "io_bytes": 0.0}
        for qname in QUERY_SET:
            _, metrics = run_query(
                bench_pdbs["bdcc"], QUERIES[qname],
                disk=bench_env.disk, costs=bench_env.cost_model,
                options=MODES[mode],
            )
            totals["seconds"] += metrics.total_seconds
            totals["io_bytes"] += metrics.io_bytes
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[mode] = totals
    benchmark.extra_info.update(
        simulated_ms=round(totals["seconds"] * 1e3, 3),
        io_MB=round(totals["io_bytes"] / 1e6, 3),
    )
    if len(_rows) == len(MODES):
        lines = [
            f"Pushdown/propagation ablation over {QUERY_SET} (BDCC, "
            f"SF={bench_env.scale_factor})",
            f"{'mode':<14}{'sim ms':>10}{'IO MB':>10}",
        ]
        for mode_name, t in _rows.items():
            lines.append(
                f"{mode_name:<14}{t['seconds'] * 1e3:10.3f}{t['io_bytes'] / 1e6:10.3f}"
            )
        write_report(
            "ablation_pushdown",
            "\n".join(lines),
            data={
                "queries": QUERY_SET,
                "modes": {
                    mode_name: {
                        "seconds": t["seconds"],
                        "io_bytes": t["io_bytes"],
                    }
                    for mode_name, t in _rows.items()
                },
            },
        )
