"""Update throughput: merge-on-read overhead vs compaction payoff.

Measures, per scheme:

* Q1/Q6 latency over a clean table (0% delta), then with ~1% and ~5% of
  LINEITEM living in uncompacted delta runs (merge-on-read overhead);
* the same queries after forcing compaction — asserting the fold
  restores at least 90% of the clean-table scan speed;
* the TPC-H refresh harness table: RF1/RF2 cost per scheme next to the
  probe-query latency (a fresh build, default compaction policy).

Usable standalone (CI runs ``python benchmarks/bench_update_throughput.py
--smoke``); the report lands under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.observe import SCHEMA_VERSION, history  # noqa: E402
from repro.tpch.datagen import generate  # noqa: E402
from repro.tpch.environment import make_environment  # noqa: E402
from repro.tpch.harness import build_schemes  # noqa: E402
from repro.tpch.queries import QUERIES  # noqa: E402
from repro.tpch.refresh import generate_rf1, run_refresh_suite  # noqa: E402
from repro.tpch.runner import run_query  # noqa: E402
from repro.updates import CompactionPolicy, UpdateSession, compact_table  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PROBES = ("Q01", "Q06")
#: compaction must restore at least this fraction of clean scan speed
RESTORE_TARGET = 0.9


def _measure(pdbs, env):
    out = {}
    for scheme, pdb in pdbs.items():
        for qname in PROBES:
            _, metrics = run_query(
                pdb, QUERIES[qname], disk=env.disk, costs=env.cost_model
            )
            out[(scheme, qname)] = metrics.total_seconds
    return out


def _grow_delta(db, pdbs, rng, lineitem_rows):
    """Commit ~lineitem_rows new lineitems (plus their orders) without
    compacting, so the delta fraction is controlled."""
    session = UpdateSession(
        *pdbs.values(), policy=CompactionPolicy(max_delta_fraction=None)
    )
    orders_rows, line_rows = generate_rf1(db, rng, max(lineitem_rows // 4, 1))
    session.insert_rows("orders", orders_rows)
    session.insert_rows("lineitem", line_rows)
    session.commit()


def run(scale_factor: float, seed: int, json_mode: bool = False) -> int:
    print(f"generating TPC-H SF={scale_factor} (seed {seed}) ...", file=sys.stderr)
    db = generate(scale_factor=scale_factor, seed=seed)
    env = make_environment(scale_factor)
    pdbs = build_schemes(db, env)
    rng = np.random.default_rng(seed)
    n_line = db.num_rows("lineitem")

    stages = {}
    stages["0% delta (clean)"] = _measure(pdbs, env)
    _grow_delta(db, pdbs, rng, int(0.01 * n_line))
    stages["~1% delta (merge-on-read)"] = _measure(pdbs, env)
    _grow_delta(db, pdbs, rng, int(0.04 * n_line))
    stages["~5% delta (merge-on-read)"] = _measure(pdbs, env)
    compaction_ms = {}
    for scheme, pdb in pdbs.items():
        seconds = 0.0
        for stored in pdb.stored.values():
            io_s, cpu_s = compact_table(stored, env.disk, env.cost_model)
            seconds += io_s + cpu_s
        compaction_ms[scheme] = seconds * 1e3
    stages["compacted"] = _measure(pdbs, env)

    schemes = list(pdbs)
    lines = [
        f"update throughput (SF={scale_factor}): Q1/Q6 latency by delta state [ms]",
        f"{'stage':<28}"
        + "".join(f"{s + ' ' + q:>14}" for s in schemes for q in PROBES),
    ]
    for stage, values in stages.items():
        row = f"{stage:<28}"
        for scheme in schemes:
            for qname in PROBES:
                row += f"{values[(scheme, qname)] * 1e3:>14.3f}"
        lines.append(row)
    lines.append(
        "compaction cost [ms]: "
        + ", ".join(f"{s}={compaction_ms[s]:.3f}" for s in schemes)
    )

    failures = []
    for scheme in schemes:
        for qname in PROBES:
            clean = stages["0% delta (clean)"][(scheme, qname)]
            compacted = stages["compacted"][(scheme, qname)]
            # the compacted table holds ~5% more rows than the clean one,
            # which the 90% target absorbs
            limit = clean / RESTORE_TARGET
            status = "ok" if compacted <= limit else "FAIL"
            lines.append(
                f"  restore check {scheme}/{qname}: compacted "
                f"{compacted * 1e3:.3f} ms vs clean {clean * 1e3:.3f} ms "
                f"(limit {limit * 1e3:.3f} ms) {status}"
            )
            if compacted > limit:
                failures.append((scheme, qname, compacted, limit))

    # ---- refresh harness table over a fresh build -----------------------
    fresh_db = generate(scale_factor=scale_factor, seed=seed)
    fresh_pdbs = build_schemes(fresh_db, env)
    refresh = run_refresh_suite(fresh_pdbs, env, pairs=2, seed=seed)
    lines.append("")
    lines.append(refresh.render())

    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "update_refresh.txt").write_text(text + "\n")
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    data = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_update_throughput",
        "scale_factor": scale_factor,
        "seed": seed,
        "git_sha": history.current_git_sha(str(repo_root)),
        "timestamp_utc": history.utc_timestamp(),
        "host": history.host_fingerprint(),
        "probes": list(PROBES),
        "stages": {
            stage: {
                f"{scheme}/{qname}": values[(scheme, qname)]
                for scheme in schemes
                for qname in PROBES
            }
            for stage, values in stages.items()
        },
        "compaction_seconds": {s: compaction_ms[s] / 1e3 for s in schemes},
        "restore_target": RESTORE_TARGET,
        "failures": [
            {"scheme": s, "query": q, "compacted_seconds": c, "limit_seconds": l}
            for s, q, c, l in failures
        ],
        "ok": not failures,
    }
    (RESULTS_DIR / "update_refresh.json").write_text(
        json.dumps(data, sort_keys=True, indent=2) + "\n"
    )
    # ledger record: probe latencies renamed so every leaf carries a
    # "seconds" token the sentinel's direction inference reads (the
    # stage keys themselves are scheme/query labels).
    history.append_record(
        "update_throughput",
        history.flatten_metrics(
            {
                "stage_seconds": data["stages"],
                "compaction_seconds": data["compaction_seconds"],
                "ok": data["ok"],
            }
        ),
        meta={"scale_factor": scale_factor, "seed": seed},
        directory=repo_root,
        git_sha=data["git_sha"],
        timestamp=data["timestamp_utc"],
        host=data["host"],
    )
    print(json.dumps(data, sort_keys=True, indent=2) if json_mode else text)
    if failures:
        print(f"\nFAIL: compaction restored < {RESTORE_TARGET:.0%} of clean speed "
              f"for {failures}", file=sys.stderr)
        return 1
    print("\nPASS: compaction restores >= "
          f"{RESTORE_TARGET:.0%} of clean-table scan speed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small scale factor for CI (overrides --sf)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the structured JSON report instead of the text table "
             "(both forms are always written to benchmarks/results/)",
    )
    args = parser.parse_args()
    sf = 0.004 if args.smoke else args.sf
    return run(sf, args.seed, json_mode=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
