"""Plan execution: lower once, fragment if parallel, then run.

The :class:`Executor` glues the layers of the engine together for one
:class:`~repro.schemes.base.PhysicalDatabase`:

* :func:`repro.planner.lowering.lower` turns the logical plan into a
  typed physical plan — every strategy decision (merge/sandwich/hash
  joins, streaming/sandwich/hash aggregation, scan pruning, replica
  choice) resolved and recorded on the operators;
* with ``options.workers > 1``, :func:`repro.parallel.plan_fragments`
  derives zone-/page-aligned partition fragments from that *same*
  lowering (fragments never re-lower) and ``options.backend`` picks the
  execution backend (:mod:`repro.parallel.backends`): the deterministic
  simulated worker pool, or a real ``multiprocessing`` pool that
  measures wall clock next to the simulated charges;
* :mod:`repro.execution.operators` runs the plan, charging simulated
  IO/CPU time and tracking the peak of concurrently live operator
  memory (the paper's Figure 3 quantity).

Results are identical under every scheme *and every worker count* (the
integration tests assert this bit-for-bit for all 22 TPC-H queries);
what changes is the physical plan, its cost, and — in parallel — the
makespan.  Because lowering and fragmenting are pure and deterministic,
both are cached: lowered plans in an LRU dict keyed on
``(id(node), options.cache_key())``, fragment plans keyed on the
lowered plan and the worker count.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..execution.cost import DEFAULT_COSTS, CostModel
from ..execution.metrics import ExecutionMetrics, FragmentActuals
from ..execution.operators import ExecutionContext
from ..execution.relation import Relation
from ..observe.profiling import profile_call
from ..observe.registry import REGISTRY
from ..parallel.backends import ExecutionBackend, create_backend
from ..parallel.fragments import ParallelPlan, plan_fragments
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import PAPER_SSD, DiskModel
from .lowering import ExecutionOptions, PhysicalPlan, lower

__all__ = ["ExecutionOptions", "QueryResult", "Executor"]

_PLAN_CACHE_SIZE = 32


@dataclass
class QueryResult:
    relation: Relation
    metrics: ExecutionMetrics

    @property
    def rows(self) -> List[tuple]:
        return self.relation.to_rows()


class Executor:
    def __init__(
        self,
        physical_db: PhysicalDatabase,
        disk: Optional[DiskModel] = None,
        costs: Optional[CostModel] = None,
        options: Optional[ExecutionOptions] = None,
        tracer=None,
    ):
        self.pdb = physical_db
        self.disk = disk or PAPER_SSD
        self.costs = costs or DEFAULT_COSTS
        self.options = options or ExecutionOptions()
        #: optional :class:`repro.observe.SpanTracer`.  Strictly passive:
        #: phases are wrapped in wall-clock spans and finished runs are
        #: recorded from their metrics, but the tracer never touches the
        #: metrics themselves — simulated charges and results are
        #: bit-identical with tracing on or off.
        self.tracer = tracer
        #: metrics of the most recent execution; present from birth (an
        #: empty ExecutionMetrics) so inspecting an executor before its
        #: first run never raises.
        self.metrics: ExecutionMetrics = ExecutionMetrics()
        #: backend name -> instantiated backend; created lazily on the
        #: first parallel run so serial executors never pay for (or
        #: leak) a process pool.
        self._backends: dict = {}
        #: (id(node), options key) -> (node, PhysicalPlan), LRU-ordered.
        #: Keyed by node *identity* (logical plans may hold unhashable
        #: expressions); the node is kept in the value so its id cannot
        #: be recycled while the entry lives.
        self._plan_cache: "OrderedDict[Tuple[int, tuple], Tuple[object, PhysicalPlan]]" = (
            OrderedDict()
        )
        #: (id(physical root), workers, min_partition_rows, copartition,
        #: epoch) -> (PhysicalPlan, ParallelPlan); fragmenting reuses the
        #: cached lowering, so changing the worker count (or the
        #: co-partition switch) never re-lowers a plan.  Like the plan
        #: cache, keys carry the update epoch so fragment plans over a
        #: stale delta state never run.
        self._fragment_cache: "OrderedDict[tuple, Tuple[PhysicalPlan, ParallelPlan]]" = (
            OrderedDict()
        )

    # ----------------------------------------------------------- planning
    def _span(self, name: str, **attributes):
        """A tracer span when a tracer is attached, else a no-op."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attributes)

    def lower(self, plan) -> PhysicalPlan:
        """Lower a logical plan (cached; pure — runs nothing)."""
        from .logical import Plan

        node = plan.node if isinstance(plan, Plan) else plan
        # the options key carries the physical database's update epoch: a
        # commit bumps it and invalidates every cached lowering, while
        # plain reads keep hitting the cache
        key = (id(node), self.options.cache_key(self.pdb.epoch))
        hit = self._plan_cache.get(key)
        if hit is not None:
            REGISTRY.inc("plan_cache.hits")
            self._plan_cache.move_to_end(key)
            return hit[1]
        REGISTRY.inc("plan_cache.misses")
        with self._span("lower", scheme=self.pdb.scheme_name):
            pplan = lower(self.pdb, node, self.options)
        self._plan_cache[key] = (node, pplan)
        while len(self._plan_cache) > _PLAN_CACHE_SIZE:
            self._plan_cache.popitem(last=False)
        return pplan

    def parallel_plan(self, pplan: PhysicalPlan) -> ParallelPlan:
        """The fragment plan of a lowered plan for the current worker
        count (cached; derived from the lowering, never re-lowered)."""
        workers = max(int(self.options.workers), 1)
        key = (
            id(pplan.root), workers, int(self.options.min_partition_rows),
            bool(self.options.enable_copartition),
            bool(self.options.enable_partial_agg), self.pdb.epoch,
        )
        hit = self._fragment_cache.get(key)
        if hit is not None:
            REGISTRY.inc("fragment_cache.hits")
            self._fragment_cache.move_to_end(key)
            return hit[1]
        REGISTRY.inc("fragment_cache.misses")
        with self._span("fragment", workers=workers):
            parallel = plan_fragments(
                pplan, workers,
                min_partition_rows=self.options.min_partition_rows,
                enable_copartition=self.options.enable_copartition,
                enable_partial_agg=self.options.enable_partial_agg,
            )
        self._fragment_cache[key] = (pplan, parallel)
        while len(self._fragment_cache) > _PLAN_CACHE_SIZE:
            self._fragment_cache.popitem(last=False)
        return parallel

    # ------------------------------------------------------------ running
    def backend(self) -> ExecutionBackend:
        """The execution backend the options name (created lazily and
        cached, so a process pool persists across this executor's
        queries; see :meth:`close`)."""
        name = self.options.backend
        backend = self._backends.get(name)
        if backend is None:
            backend = create_backend(name)
            self._backends[name] = backend
        return backend

    def close(self) -> None:
        """Release backend resources (process pools, shared-memory
        blocks).  Serial/simulated executors hold none; safe to call
        repeatedly.  The executor stays usable — the next parallel run
        simply recreates what it needs."""
        for backend in self._backends.values():
            backend.close()
        self._backends = {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, pplan: PhysicalPlan) -> QueryResult:
        """Execute an already-lowered physical plan (parallel when the
        options ask for workers and the plan has a splittable scan)."""
        result = self._run(pplan)
        REGISTRY.inc("queries_executed")
        if result.metrics.delta_rows_scanned:
            REGISTRY.inc("delta_rows_scanned", result.metrics.delta_rows_scanned)
        if self.tracer is not None:
            self.tracer.record_query(pplan.root.describe(), result.metrics)
        return result

    def _run(self, pplan: PhysicalPlan) -> QueryResult:
        if self.options.workers > 1:
            parallel = self.parallel_plan(pplan)
            if parallel.is_parallel:
                with self._span(
                    "execute", backend=self.options.backend,
                    workers=parallel.workers, fragments=len(parallel.fragments),
                ):
                    relation, metrics = self.backend().run(
                        parallel, self.disk, self.costs,
                        profile=self.options.profile,
                    )
                self.metrics = metrics
                return QueryResult(relation, metrics)
        metrics = ExecutionMetrics()
        self.metrics = metrics
        ctx = ExecutionContext(self.disk, self.costs, metrics)
        with self._span("execute", backend="serial", workers=1):
            relation, profile = profile_call(
                pplan.root.run, ctx, enabled=self.options.profile
            )
        metrics.profile = profile
        metrics.rows_produced = relation.num_rows
        ctx.release_all()
        # a serial run is one fragment on one worker: wall clock is the
        # total, and the fragment-sum invariant holds degenerately
        metrics.makespan_seconds = metrics.total_seconds
        metrics.fragments.append(
            FragmentActuals(
                index=0,
                role="serial",
                description="whole plan, one worker",
                worker=0,
                io_end_seconds=metrics.io_seconds,
                end_seconds=metrics.total_seconds,
                io_seconds=metrics.io_seconds,
                cpu_seconds=metrics.cpu_seconds,
                rows_out=relation.num_rows,
                peak_memory_bytes=metrics.peak_memory_bytes,
                profile=profile,
            )
        )
        return QueryResult(relation, metrics)

    def execute(self, plan) -> QueryResult:
        """Lower (or fetch the cached lowering of) a plan and run it."""
        with self._span("query", category="query", scheme=self.pdb.scheme_name):
            if isinstance(plan, PhysicalPlan):
                return self.run(plan)
            return self.run(self.lower(plan))
