"""Plan execution: lower once, then run the physical plan.

The :class:`Executor` glues the two halves of the engine together for
one :class:`~repro.schemes.base.PhysicalDatabase`:

* :func:`repro.planner.lowering.lower` turns the logical plan into a
  typed physical plan — every strategy decision (merge/sandwich/hash
  joins, streaming/sandwich/hash aggregation, scan pruning, replica
  choice) resolved and recorded on the operators;
* :mod:`repro.execution.operators` runs that plan, charging simulated
  IO/CPU time and tracking the peak of concurrently live operator
  memory (the paper's Figure 3 quantity).

Results are identical under every scheme (the integration tests assert
this for all 22 TPC-H queries); what changes is the physical plan and
its cost.  Because lowering is pure and deterministic, lowered plans are
cached per logical plan and can be inspected (``EXPLAIN``) or re-run
without re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..execution.cost import DEFAULT_COSTS, CostModel
from ..execution.metrics import ExecutionMetrics
from ..execution.operators import ExecutionContext
from ..execution.relation import Relation
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import PAPER_SSD, DiskModel
from .lowering import ExecutionOptions, PhysicalPlan, lower

__all__ = ["ExecutionOptions", "QueryResult", "Executor"]

_PLAN_CACHE_SIZE = 32


@dataclass
class QueryResult:
    relation: Relation
    metrics: ExecutionMetrics

    @property
    def rows(self) -> List[tuple]:
        return self.relation.to_rows()


class Executor:
    def __init__(
        self,
        physical_db: PhysicalDatabase,
        disk: Optional[DiskModel] = None,
        costs: Optional[CostModel] = None,
        options: Optional[ExecutionOptions] = None,
    ):
        self.pdb = physical_db
        self.disk = disk or PAPER_SSD
        self.costs = costs or DEFAULT_COSTS
        self.options = options or ExecutionOptions()
        #: (plan node, options key) -> PhysicalPlan; keyed by node
        #: *identity* (logical plans may hold unhashable expressions).
        self._plan_cache: List[Tuple[object, tuple, PhysicalPlan]] = []

    # ----------------------------------------------------------- planning
    def lower(self, plan) -> PhysicalPlan:
        """Lower a logical plan (cached; pure — runs nothing)."""
        from .logical import Plan

        node = plan.node if isinstance(plan, Plan) else plan
        key = self.options.cache_key()
        for cached_node, cached_key, pplan in self._plan_cache:
            if cached_node is node and cached_key == key:
                return pplan
        pplan = lower(self.pdb, node, self.options)
        self._plan_cache.append((node, key, pplan))
        if len(self._plan_cache) > _PLAN_CACHE_SIZE:
            self._plan_cache.pop(0)
        return pplan

    # ------------------------------------------------------------ running
    def run(self, pplan: PhysicalPlan) -> QueryResult:
        """Execute an already-lowered physical plan."""
        self.metrics = ExecutionMetrics()
        ctx = ExecutionContext(self.disk, self.costs, self.metrics)
        relation = pplan.root.run(ctx)
        self.metrics.rows_produced = relation.num_rows
        ctx.release_all()
        return QueryResult(relation, self.metrics)

    def execute(self, plan) -> QueryResult:
        """Lower (or fetch the cached lowering of) a plan and run it."""
        if isinstance(plan, PhysicalPlan):
            return self.run(plan)
        return self.run(self.lower(plan))
