"""Plan execution with scheme-aware strategy selection and cost modelling.

The :class:`Executor` interprets a logical plan against one
:class:`~repro.schemes.base.PhysicalDatabase`.  Results are identical
under every scheme (the integration tests assert this for all 22 TPC-H
queries); what changes is *how* and at what cost:

* **Scans** read only demanded columns; BDCC scans prune count-table
  groups (selection pushdown + propagation), every scan prunes page
  blocks through MinMax indices; IO is charged through the disk model.
* **Joins** pick merge (both inputs ordered — the PK scheme's
  LINEITEM/ORDERS and PART/PARTSUPP cases), sandwich (co-clustered
  streams sharing a dimension over the join's foreign key — per-group
  hash tables) or plain hash.
* **Aggregations** pick streaming (input ordered on the keys), sandwich
  (keys functionally determine a carried dimension use — the paper's
  Q13/Q18 discussion) or plain hash.

Memory reservations for blocking state (hash builds, aggregation tables,
sort buffers) are held until the end of the query, approximating the
concurrent footprint of a pipelined engine; the peak is the Figure 3
quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.bits import gather_use_bits, truncate_mask
from ..execution.aggregate import AggSpec, apply_aggregate, distinct_per_partition, group_rows
from ..execution.cost import DEFAULT_COSTS, CostModel
from ..execution.expressions import Col, Expr
from ..execution.join_utils import (
    encode_join_keys,
    inner_join_pairs,
    left_join_pairs,
    semi_join_mask,
)
from ..execution.metrics import ExecutionMetrics
from ..execution.relation import Relation, StreamUse
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import PAPER_SSD, DiskModel
from .analysis import PlanAnalysis, analyse_plan, strip_prefix
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .predicates import column_ranges
from .propagation import compute_restrictions

__all__ = ["ExecutionOptions", "QueryResult", "Executor"]

_HASH_ENTRY_OVERHEAD = 16.0   # bytes per hash-table entry
_AGG_STATE_BYTES = 8.0        # bytes per aggregate per group
_GROUP_HEADER_BYTES = 32.0    # per-group bookkeeping of sandwiched operators


@dataclass
class ExecutionOptions:
    """Feature switches (for ablations) and sandwich tuning."""

    enable_pushdown: bool = True      # BDCC group pruning from local predicates
    enable_propagation: bool = True   # ... and from co-clustered neighbours
    enable_minmax: bool = True        # zone-map page pruning
    enable_sandwich: bool = True      # pre-grouped joins/aggregations
    enable_merge: bool = True         # merge joins on ordered inputs
    max_sandwich_bits: int = 8        # cap on combined sandwich group bits


@dataclass
class QueryResult:
    relation: Relation
    metrics: ExecutionMetrics

    @property
    def rows(self) -> List[tuple]:
        return self.relation.to_rows()


class Executor:
    def __init__(
        self,
        physical_db: PhysicalDatabase,
        disk: Optional[DiskModel] = None,
        costs: Optional[CostModel] = None,
        options: Optional[ExecutionOptions] = None,
    ):
        self.pdb = physical_db
        self.disk = disk or PAPER_SSD
        self.costs = costs or DEFAULT_COSTS
        self.options = options or ExecutionOptions()

    # ------------------------------------------------------------ driving
    def execute(self, plan) -> QueryResult:
        node = plan.node if isinstance(plan, Plan) else plan
        self.metrics = ExecutionMetrics()
        self._live_reservations = []
        self._analysis: PlanAnalysis = analyse_plan(node, self.pdb.schema)
        self._restrictions = {}
        self._replica_choice = {}
        if self.options.enable_pushdown:
            bdcc_tables = self.pdb.bdcc_tables()
            if bdcc_tables:
                alias_tables = {a: s.table for a, s in self._analysis.scans.items()}
                self._restrictions = compute_restrictions(
                    self.pdb.database,
                    self._analysis,
                    bdcc_tables,
                    alias_tables,
                    local_only=not self.options.enable_propagation,
                )
                self._choose_replicas(bdcc_tables, alias_tables)
        relation = self._run(node)
        self.metrics.rows_produced = relation.num_rows
        for reservation in self._live_reservations:
            reservation.release()
        return QueryResult(relation, self.metrics)

    def _choose_replicas(self, bdcc_tables, alias_tables) -> None:
        """Per scan, pick the physical copy whose count-table groups the
        query's restrictions prune hardest (future-work (ii): which
        dimensions to use for which replica)."""
        if not self.pdb.replicas:
            return
        for alias, scan_node in self._analysis.scans.items():
            copies = self.pdb.replicas.get(scan_node.table)
            if not copies:
                continue
            primary = self.pdb.table(scan_node.table)
            candidates = [(primary, self._restrictions.get(alias, []))]
            for copy in copies:
                variant = dict(bdcc_tables)
                variant[scan_node.table] = copy.bdcc
                restr = compute_restrictions(
                    self.pdb.database,
                    self._analysis,
                    variant,
                    alias_tables,
                    local_only=not self.options.enable_propagation,
                )
                candidates.append((copy, restr.get(alias, [])))

            def selected_fraction(candidate):
                stored, restrictions = candidate
                if stored.bdcc is None or not restrictions:
                    return 1.0
                entries = stored.bdcc.entries_matching(restrictions)
                rows = float(stored.bdcc.count_table.counts[entries].sum())
                return rows / max(stored.bdcc.logical_rows, 1)

            best = min(candidates, key=selected_fraction)
            if best[0] is not primary:
                index = next(i for i, c in enumerate(copies) if c is best[0])
                self._replica_choice[alias] = best
                self.metrics.note(
                    f"scan {alias}: replica #{index + 1} selected "
                    f"({selected_fraction(best):.0%} of rows vs "
                    f"{selected_fraction(candidates[0]):.0%} on the primary)"
                )

    def _hold(self, tag: str, num_bytes: float) -> None:
        if num_bytes > 0:
            self._live_reservations.append(self.metrics.memory.allocate(tag, num_bytes))

    # ----------------------------------------------------------- dispatch
    def _run(self, node: PlanNode) -> Relation:
        if isinstance(node, ScanNode):
            return self._run_scan(node)
        if isinstance(node, FilterNode):
            return self._run_filter(node)
        if isinstance(node, ProjectNode):
            return self._run_project(node)
        if isinstance(node, JoinNode):
            return self._run_join(node)
        if isinstance(node, GroupByNode):
            return self._run_groupby(node)
        if isinstance(node, SortNode):
            return self._run_sort(node)
        if isinstance(node, LimitNode):
            return self._run_limit(node)
        raise TypeError(f"unknown node {type(node).__name__}")

    # --------------------------------------------------------------- scan
    def _run_scan(self, node: ScanNode) -> Relation:
        chosen = self._replica_choice.get(node.alias)
        if chosen is not None:
            stored, chosen_restrictions = chosen
        else:
            stored = self.pdb.table(node.table)
            chosen_restrictions = self._restrictions.get(node.alias, [])
        wanted = self._analysis.demands.get(node.alias, set())
        demanded = [c for c in stored.definition.column_names if c in wanted]
        if not demanded:  # count-only scans still need one column
            demanded = [stored.definition.column_names[0]]
        n = stored.stored_rows
        bdcc = stored.bdcc

        # --- row selection -------------------------------------------------
        note_bits: List[str] = []
        if bdcc is not None:
            restrictions = chosen_restrictions
            if restrictions:
                entries = bdcc.entries_matching(restrictions)
                note_bits.append(
                    f"pushdown {len(entries)}/{bdcc.count_table.num_groups} groups"
                )
            else:
                entries = bdcc.all_entries()
            rows = bdcc.count_table.rows_for_entries(entries)
        else:
            rows = None  # all rows, in storage order

        if self.options.enable_minmax and node.predicate is not None and n > 0:
            mask = self._minmax_mask(stored, node)
            if mask is not None:
                if rows is None:
                    rows = np.flatnonzero(mask)
                else:
                    rows = rows[mask[rows]]
                note_bits.append(
                    f"minmax {np.count_nonzero(mask)}/{n} rows"
                )

        # --- IO ------------------------------------------------------------
        if rows is None:
            runs = stored.full_scan_runs()
            num_selected = n
        else:
            runs = _rows_to_runs(rows)
            num_selected = len(rows)
        run_bytes = stored.io_run_bytes(runs, demanded)
        if bdcc is not None:
            # the stored _bdcc_ column (needed for group ids) compresses
            # to ~1 byte/tuple: the table is sorted on it, so RLE applies;
            # plus the count table itself
            for _, length in runs:
                run_bytes.append(length * 1.0)
            run_bytes.append(bdcc.count_table.num_entries * 8.0)
        io_seconds = self.disk.time_for_runs(run_bytes)
        self.metrics.charge_io(float(sum(run_bytes)), len(run_bytes), io_seconds)
        self.metrics.rows_scanned += num_selected

        # --- materialise -----------------------------------------------------
        prefix = node.prefix
        if rows is None:
            columns = {prefix + c: stored.columns[c] for c in demanded}
        else:
            columns = {prefix + c: stored.columns[c][rows] for c in demanded}
        self.metrics.charge_cpu(
            num_selected * len(demanded) * self.costs.scan_value, "scan"
        )
        owners = {name: node.alias for name in columns}
        uses: List[StreamUse] = []
        if bdcc is not None and self.options.enable_sandwich:
            keys = bdcc.keys if rows is None else bdcc.keys[rows]
            for idx, use in enumerate(bdcc.uses):
                eff_bits = bdcc.effective_bits(idx)
                if eff_bits == 0:
                    continue
                # top eff_bits positions of the full mask == the use's
                # bits that survive at count-table granularity
                column_name = f"__grp__{node.alias}__{idx}"
                columns[column_name] = gather_use_bits(keys, use.mask, eff_bits)
                uses.append(
                    StreamUse(node.alias, use.dimension, use.path, eff_bits, column_name)
                )
            self.metrics.charge_cpu(
                num_selected * self.costs.sandwich_row_overhead * max(len(uses), 1),
                "scan",
            )
        rel = Relation(
            columns=columns,
            sorted_on=tuple(prefix + c for c in stored.sort_columns),
            uses=uses,
            owners=owners,
        )
        if note_bits:
            self.metrics.note(f"scan {node.alias}: " + ", ".join(note_bits))

        # --- residual predicate ---------------------------------------------
        if node.predicate is not None:
            mask = np.asarray(node.predicate.eval(rel), dtype=bool)
            self.metrics.charge_cpu(
                rel.num_rows * max(len(node.predicate.columns()), 1) * self.costs.expr_value,
                "filter",
            )
            rel = rel.filter(mask)
        return rel

    def _minmax_mask(self, stored, node: ScanNode) -> Optional[np.ndarray]:
        """Row mask from zone maps over the scan's range predicates, or
        None when nothing prunes."""
        ranges = column_ranges(node.predicate)
        mask: Optional[np.ndarray] = None
        n = stored.stored_rows
        for column, (low, high) in ranges.items():
            base = strip_prefix(column, node.prefix)
            if base not in stored.columns:
                continue
            values = stored.columns[base]
            if values.dtype.kind not in "iuf":
                continue
            index = stored.minmax_for(base)
            keep_blocks = index.blocks_overlapping(low, high)
            if keep_blocks.all():
                continue
            block_of_row = np.arange(n) // index.block_rows
            row_keep = keep_blocks[block_of_row]
            mask = row_keep if mask is None else (mask & row_keep)
        return mask

    # ------------------------------------------------------------- filter
    def _run_filter(self, node: FilterNode) -> Relation:
        rel = self._run(node.input)
        mask = np.asarray(node.predicate.eval(rel), dtype=bool)
        self.metrics.charge_cpu(
            rel.num_rows * max(len(node.predicate.columns()), 1) * self.costs.expr_value,
            "filter",
        )
        return rel.filter(mask)

    # ------------------------------------------------------------ project
    def _run_project(self, node: ProjectNode) -> Relation:
        rel = self._run(node.input)
        columns: Dict[str, np.ndarray] = {}
        owners: Dict[str, str] = {}
        valid: Dict[str, np.ndarray] = {}
        expr_cost = 0.0
        for name, expr in node.exprs:
            columns[name] = np.asarray(expr.eval(rel))
            if not isinstance(expr, Col):
                expr_cost += rel.num_rows * self.costs.expr_value
            if isinstance(expr, Col):
                if expr.name in rel.owners:
                    owners[name] = rel.owners[expr.name]
                if expr.name in rel.valid:
                    valid[name] = rel.valid[expr.name]
        self.metrics.charge_cpu(expr_cost, "project")
        live_uses = [u for u in rel.uses if u.column in rel.columns]
        for use in live_uses:
            columns[use.column] = rel.columns[use.column]
        sorted_on = rel.sorted_on if all(c in columns for c in rel.sorted_on) else ()
        return Relation(
            columns=columns, valid=valid, sorted_on=sorted_on, uses=live_uses, owners=owners
        )

    # --------------------------------------------------------------- join
    def _run_join(self, node: JoinNode) -> Relation:
        left = self._run(node.left)
        right = self._run(node.right)
        lkeys, rkeys = encode_join_keys(
            [left.column(c) for c in node.left_cols],
            [right.column(c) for c in node.right_cols],
        )
        sandwich_pairs: List[Tuple[StreamUse, StreamUse]] = []
        if self.options.enable_sandwich:
            sandwich_pairs = self._match_uses(left, right, node)

        k = len(node.left_cols)
        merge_ok = (
            self.options.enable_merge
            and node.how in ("inner", "semi", "anti")
            and node.residual is None
            and len(left.sorted_on) >= k
            and len(right.sorted_on) >= k
            and tuple(left.sorted_on[:k]) == tuple(node.left_cols)
            and tuple(right.sorted_on[:k]) == tuple(node.right_cols)
        )

        if merge_ok:
            return self._merge_join(node, left, right, lkeys, rkeys)
        if sandwich_pairs:
            return self._hash_join(node, left, right, lkeys, rkeys, sandwich_pairs)
        return self._hash_join(node, left, right, lkeys, rkeys, [])

    def _use_anchors(self, rel: Relation, join_cols: Tuple[str, ...], other_cols: Tuple[str, ...]):
        """Dimension uses of ``rel`` whose group is determined by (a subset
        of) the join columns, with their co-clustering identity.

        Two flavours per Section II of the paper:

        * *via a foreign key*: the join columns cover an outgoing FK's
          child columns and the use's path starts with that FK — the key
          value determines the referenced row, hence the use's bins.  The
          anchor identity is (dimension, path-after-the-FK, referenced
          table+key, the other side's columns carrying that key).
        * *the table itself hosts the key*: the join columns cover the
          table's primary key — the row is fixed, every carried use
          qualifies, identified by its full path.

        Anchors with equal identities on both sides are co-clustered even
        when the two tables are not FK-connected at all (the paper's
        tables A and C sharing D1), which covers fact-fact self joins
        (Q21) and composite-key joins (LINEITEM-PARTSUPP in Q9).
        """
        schema = self.pdb.schema
        by_alias: Dict[str, List[int]] = {}
        for pos, column in enumerate(join_cols):
            alias = rel.owners.get(column)
            if alias is not None:
                by_alias.setdefault(alias, []).append(pos)
        anchors = []
        for alias, positions in by_alias.items():
            scan = self._analysis.scans.get(alias)
            if scan is None:
                continue
            base_to_other = {
                strip_prefix(join_cols[p], scan.prefix): other_cols[p] for p in positions
            }
            base_to_self = {
                strip_prefix(join_cols[p], scan.prefix): join_cols[p] for p in positions
            }
            table = schema.table(scan.table)
            # via an outgoing foreign key covered by the join columns
            for fk in schema.outgoing_foreign_keys(scan.table):
                if not set(fk.child_columns) <= set(base_to_other):
                    continue
                own = tuple(base_to_self[c] for c in fk.child_columns)
                carrier = tuple(base_to_other[c] for c in fk.child_columns)
                for use in rel.uses_for_alias(alias):
                    if use.path and use.path[0] == fk.name:
                        identity = (
                            use.dimension.name, use.path[1:],
                            fk.parent_table, fk.parent_columns,
                        )
                        anchors.append((identity, own, carrier, use))
            # the table itself is the referenced side (join on its PK)
            if table.primary_key and set(table.primary_key) <= set(base_to_other):
                own = tuple(base_to_self[c] for c in table.primary_key)
                carrier = tuple(base_to_other[c] for c in table.primary_key)
                for use in rel.uses_for_alias(alias):
                    identity = (
                        use.dimension.name, use.path,
                        scan.table, tuple(table.primary_key),
                    )
                    anchors.append((identity, own, carrier, use))
        return anchors

    def _match_uses(
        self, left: Relation, right: Relation, node: JoinNode
    ) -> List[Tuple[StreamUse, StreamUse]]:
        """Pairs of co-clustered dimension uses across the join inputs.

        A left anchor and a right anchor match when they denote the same
        dimension over the same residual path anchored at the same
        referenced key, *and* the key travels over the same join columns
        — then equal join keys imply equal dimension bins on both sides,
        the precondition for sandwiched (pre-grouped) execution [3].
        """
        left_anchors = self._use_anchors(left, node.left_cols, node.right_cols)
        right_anchors = self._use_anchors(right, node.right_cols, node.left_cols)
        pairs: List[Tuple[StreamUse, StreamUse]] = []
        seen = set()
        for l_identity, l_own, l_carrier, left_use in left_anchors:
            for r_identity, r_own, r_carrier, right_use in right_anchors:
                if l_identity != r_identity:
                    continue
                # the key must travel over the same join-column pairing
                if l_carrier != r_own or r_carrier != l_own:
                    continue
                if l_identity in seen:
                    continue
                seen.add(l_identity)
                pairs.append((left_use, right_use))
                break
        return pairs

    # ----------------------------------------------------- join strategies
    def _merge_join(self, node, left, right, lkeys, rkeys) -> Relation:
        self.metrics.note(
            f"merge join on {node.left_cols} ({node.how}, "
            f"{left.num_rows}x{right.num_rows})"
        )
        self.metrics.charge_cpu(
            (left.num_rows + right.num_rows) * self.costs.merge_row, "join"
        )
        if node.how in ("semi", "anti"):
            matched = semi_join_mask(lkeys, rkeys)
            keep = matched if node.how == "semi" else ~matched
            self.metrics.charge_cpu(int(keep.sum()) * self.costs.join_output_row, "join")
            return left.filter(keep)
        lidx, ridx = inner_join_pairs(lkeys, rkeys)
        self.metrics.charge_cpu(len(lidx) * self.costs.join_output_row, "join")
        return self._assemble_inner(node, left, right, lidx, ridx, order_from="left")

    def _hash_join(self, node, left, right, lkeys, rkeys, sandwich_pairs) -> Relation:
        costs = self.costs
        how = node.how
        # choose the build side (results are assembled probe=left always)
        if how == "inner":
            build_is_left = left.data_bytes() < right.data_bytes()
        else:
            build_is_left = False
        build_rel = left if build_is_left else right
        probe_rel = right if build_is_left else left
        if how in ("semi", "anti"):
            build_bytes = build_rel.row_bytes(list(node.right_cols)) * build_rel.num_rows
        else:
            build_bytes = build_rel.data_bytes()
        build_bytes += _HASH_ENTRY_OVERHEAD * build_rel.num_rows

        if sandwich_pairs:
            state_bytes, num_groups = self._sandwich_join_accounting(
                node, left, right, build_is_left, sandwich_pairs, build_bytes
            )
        else:
            state_bytes, num_groups = build_bytes, 1
            self.metrics.note(
                f"hash join on {node.left_cols} ({how}), build "
                f"{build_rel.num_rows} rows / {build_bytes/1e6:.2f} MB"
            )
        self._hold(f"join:{node.left_cols}", state_bytes + num_groups * _GROUP_HEADER_BYTES)
        factor = costs.cache_factor(state_bytes)
        cpu = (
            build_rel.num_rows * costs.hash_build_row * factor
            + probe_rel.num_rows * costs.hash_probe_row * factor
        )
        if sandwich_pairs:
            cpu += num_groups * costs.sandwich_group_overhead
            cpu += (left.num_rows + right.num_rows) * costs.sandwich_row_overhead
            # scatter-order delivery of both inputs: one random access per
            # group run instead of a straight sequential pass
            self.metrics.charge_io(0.0, 2 * num_groups, 2 * num_groups * self.disk.access_latency)
        self.metrics.charge_cpu(cpu, "join")

        # ---- execute -------------------------------------------------------
        if how == "inner":
            # output follows the probe side's order, as a pipelined hash
            # join does — this is what lets a later merge join see the
            # PK scheme's key order through an earlier N:1 join
            if build_is_left:
                ridx, lidx = inner_join_pairs(rkeys, lkeys)
                order_from = "right"
            else:
                lidx, ridx = inner_join_pairs(lkeys, rkeys)
                order_from = "left"
            if node.residual is not None:
                joined = self._assemble_inner(node, left, right, lidx, ridx, order_from)
                mask = np.asarray(node.residual.eval(joined), dtype=bool)
                self.metrics.charge_cpu(len(lidx) * costs.expr_value, "join")
                joined = joined.filter(mask)
                self.metrics.charge_cpu(joined.num_rows * costs.join_output_row, "join")
                return joined
            self.metrics.charge_cpu(len(lidx) * costs.join_output_row, "join")
            return self._assemble_inner(node, left, right, lidx, ridx, order_from)
        if how == "left":
            lidx, ridx = left_join_pairs(lkeys, rkeys)
            self.metrics.charge_cpu(len(lidx) * costs.join_output_row, "join")
            return self._assemble_left(node, left, right, lidx, ridx)
        if how in ("semi", "anti"):
            if node.residual is not None:
                lidx, ridx = inner_join_pairs(lkeys, rkeys)
                joined_cols = dict(left.take(lidx).columns)
                for name, arr in right.take(ridx).columns.items():
                    joined_cols.setdefault(name, arr)
                mask_pairs = np.asarray(node.residual.eval(joined_cols), dtype=bool)
                self.metrics.charge_cpu(len(lidx) * costs.expr_value, "join")
                matched = np.zeros(left.num_rows, dtype=bool)
                matched[lidx[mask_pairs]] = True
            else:
                matched = semi_join_mask(lkeys, rkeys)
            keep = matched if how == "semi" else ~matched
            self.metrics.charge_cpu(int(keep.sum()) * costs.join_output_row, "join")
            return left.filter(keep)
        raise AssertionError(how)

    def _sandwich_join_accounting(
        self, node, left, right, build_is_left, pairs, build_bytes
    ) -> Tuple[float, int]:
        """Per-group peak state and group count of a sandwiched join."""
        budget = self.options.max_sandwich_bits
        build_gid = np.zeros(left.num_rows if build_is_left else right.num_rows, dtype=np.uint64)
        total_bits = 0
        for left_use, right_use in pairs:
            if budget <= 0:
                break
            g = min(left_use.bits, right_use.bits, budget)
            budget -= g
            total_bits += g
            use = left_use if build_is_left else right_use
            rel = left if build_is_left else right
            vals = rel.columns[use.column] >> np.uint64(use.bits - g)
            build_gid = (build_gid << np.uint64(g)) | vals
        if total_bits == 0 or len(build_gid) == 0:
            return build_bytes, 1
        _, counts = np.unique(build_gid, return_counts=True)
        build_rows = max(len(build_gid), 1)
        per_row = build_bytes / build_rows
        state_bytes = float(counts.max()) * per_row
        num_groups = len(counts)
        self.metrics.note(
            f"sandwich join on {node.left_cols} via "
            + "+".join(p[0].dimension.name for p in pairs)
            + f" @{total_bits} bits: {num_groups} groups, "
            f"max group {state_bytes/1e6:.3f} MB (full build {build_bytes/1e6:.2f} MB)"
        )
        self.metrics.bump("sandwich_joins")
        return state_bytes, num_groups

    # ----------------------------------------------------- join assembly
    def _assemble_inner(self, node, left, right, lidx, ridx, order_from: str) -> Relation:
        lpart = left.take(lidx, keep_sorted=order_from == "left")
        rpart = right.take(ridx, keep_sorted=order_from == "right")
        columns = dict(lpart.columns)
        valid = dict(lpart.valid)
        for name, arr in rpart.columns.items():
            if name not in columns:
                columns[name] = arr
        for name, mask in rpart.valid.items():
            if name not in valid:
                valid[name] = mask
        owners = dict(left.owners)
        owners.update(right.owners)
        uses = list(lpart.uses) + [u for u in rpart.uses if u.column in columns]
        return Relation(
            columns=columns,
            valid=valid,
            sorted_on=lpart.sorted_on if order_from == "left" else rpart.sorted_on,
            uses=uses,
            owners=owners,
        )

    def _assemble_left(self, node, left, right, lidx, ridx) -> Relation:
        matched = ridx >= 0
        safe_ridx = np.where(matched, ridx, 0)
        lpart = left.take(lidx, keep_sorted=True)
        if right.num_rows == 0:
            # nothing to gather: null-extend with typed placeholders
            rpart = Relation(
                columns={
                    name: np.zeros(len(lidx), dtype=arr.dtype)
                    for name, arr in right.columns.items()
                },
                owners=dict(right.owners),
            )
        else:
            rpart = right.take(safe_ridx)
        columns = dict(lpart.columns)
        valid = dict(lpart.valid)
        for name, arr in rpart.columns.items():
            if name not in columns:
                columns[name] = arr
                prior = rpart.valid.get(name)
                valid[name] = matched if prior is None else (matched & prior)
        owners = dict(left.owners)
        owners.update(right.owners)
        # right-side uses are not valid on unmatched rows; drop them
        uses = list(lpart.uses)
        return Relation(
            columns=columns, valid=valid, sorted_on=lpart.sorted_on, uses=uses, owners=owners
        )

    # ------------------------------------------------------------ groupby
    def _run_groupby(self, node: GroupByNode) -> Relation:
        rel = self._run(node.input)
        costs = self.costs
        n = rel.num_rows

        if node.keys:
            key_arrays = [rel.column(k) for k in node.keys]
            if n:
                group_index, first_rows, num_groups = group_rows(key_arrays)
            else:
                group_index = np.zeros(0, dtype=np.int64)
                first_rows = np.zeros(0, dtype=np.int64)
                num_groups = 0
        else:
            group_index = np.zeros(n, dtype=np.int64)
            first_rows = np.zeros(1 if n else 0, dtype=np.int64)
            num_groups = 1 if n else 0

        state_row = (
            (rel.row_bytes(list(node.keys)) if node.keys else 0.0)
            + len(node.aggs) * _AGG_STATE_BYTES
            + _HASH_ENTRY_OVERHEAD
        )
        streaming = bool(node.keys) and self._streaming_ok(rel, node.keys)
        partition_uses = []
        if not streaming and node.keys and self.options.enable_sandwich and n:
            partition_uses = self._partition_uses(rel, node.keys)

        if streaming:
            self.metrics.note(f"streaming aggregation on {node.keys}")
            self.metrics.charge_cpu(n * costs.stream_agg_row, "aggregate")
            self._hold("agg:stream", state_row)  # one live group
        elif partition_uses:
            pid = np.zeros(n, dtype=np.uint64)
            total_bits = 0
            budget = self.options.max_sandwich_bits
            for use in partition_uses:
                g = min(use.bits, budget - total_bits)
                if g <= 0:
                    break
                pid = (pid << np.uint64(g)) | (rel.columns[use.column] >> np.uint64(use.bits - g))
                total_bits += g
            per_part = distinct_per_partition(pid, group_index)
            max_state = float(per_part.max()) * state_row if len(per_part) else 0.0
            num_partitions = len(per_part)
            self._hold("agg:sandwich", max_state + num_partitions * _GROUP_HEADER_BYTES)
            factor = costs.cache_factor(max_state)
            self.metrics.charge_cpu(
                n * costs.agg_update_row * factor
                + num_partitions * costs.sandwich_group_overhead
                + n * costs.sandwich_row_overhead,
                "aggregate",
            )
            self.metrics.charge_io(0.0, num_partitions, num_partitions * self.disk.access_latency)
            self.metrics.note(
                f"sandwich aggregation on {node.keys} via "
                + "+".join(u.dimension.name for u in partition_uses)
                + f": {num_partitions} partitions, max state "
                f"{max_state/1e6:.3f} MB (full {num_groups * state_row/1e6:.2f} MB)"
            )
            self.metrics.bump("sandwich_aggs")
        else:
            total_state = num_groups * state_row
            self._hold("agg:hash", total_state)
            factor = costs.cache_factor(total_state)
            self.metrics.charge_cpu(n * costs.agg_update_row * factor, "aggregate")
            if node.keys:
                self.metrics.note(
                    f"hash aggregation on {node.keys}: {num_groups} groups, "
                    f"{total_state/1e6:.2f} MB"
                )

        # ---- execute (strategy-independent kernels) -------------------------
        columns: Dict[str, np.ndarray] = {}
        owners: Dict[str, str] = {}
        for key in node.keys:
            columns[key] = rel.column(key)[first_rows]
            if key in rel.owners:
                owners[key] = rel.owners[key]
        for spec in node.aggs:
            values = None
            valid = None
            if spec.expr is not None:
                values = np.asarray(spec.expr.eval(rel))
                if isinstance(spec.expr, Col):
                    valid = rel.valid.get(spec.expr.name)
                self.metrics.charge_cpu(n * costs.expr_value, "aggregate")
            elif spec.fn == "count":
                pass
            if num_groups == 0:
                columns[spec.name] = np.zeros(0)
                continue
            columns[spec.name] = apply_aggregate(spec, group_index, num_groups, values, valid)

        out_uses: List[StreamUse] = []
        for use in partition_uses:
            columns[use.column] = rel.columns[use.column][first_rows]
            out_uses.append(use)
        return Relation(
            columns=columns,
            sorted_on=tuple(node.keys),
            uses=out_uses,
            owners=owners,
        )

    def _streaming_ok(self, rel: Relation, keys: Tuple[str, ...]) -> bool:
        """Can the aggregation stream over the input's sort order?

        Either the keys literally are a prefix of the sort order, or the
        leading sort column is a single-column primary key among the keys
        and every other key is functionally determined by it — owned by
        the same scan, or by a scan reachable from it over the query's
        foreign-key joins (the PK scheme's Q18: LINEITEM sorted on
        ``o_orderkey`` streams a group-by over order + customer columns).
        """
        if tuple(rel.sorted_on[: len(keys)]) == tuple(keys):
            return True
        if not rel.sorted_on:
            return False
        lead = rel.sorted_on[0]
        if lead not in keys:
            return False
        alias = rel.owners.get(lead)
        if alias is None:
            return False
        scan = self._analysis.scans.get(alias)
        if scan is None:
            return False
        pk = self.pdb.schema.table(scan.table).primary_key
        if tuple(pk) != (strip_prefix(lead, scan.prefix),):
            return False
        # aliases whose rows (hence columns) the lead key determines
        determined = {alias}
        frontier = [alias]
        while frontier:
            current = frontier.pop()
            for edge in self._analysis.edges:
                if edge.child_alias == current and edge.parent_alias not in determined:
                    determined.add(edge.parent_alias)
                    frontier.append(edge.parent_alias)
        return all(rel.owners.get(k) in determined for k in keys)

    def _partition_uses(self, rel: Relation, keys: Sequence[str]) -> List[StreamUse]:
        """Stream uses whose group id is functionally determined by the
        grouping keys: the keys contain the child columns of the use's
        leading foreign key, or the primary key of the use's own table.

        This is the paper's Q13/Q18 effect: grouping ORDERS by
        ``o_custkey``-determined keys (or LINEITEM by ``l_orderkey``)
        pre-partitions the aggregation along the carried D_NATION /
        D_DATE groups."""
        schema = self.pdb.schema
        by_alias: Dict[str, Set[str]] = {}
        for key in keys:
            alias = rel.owners.get(key)
            if alias is not None:
                by_alias.setdefault(alias, set()).add(key)
        result: List[StreamUse] = []
        seen = set()
        for alias, owned in by_alias.items():
            scan = self._analysis.scans.get(alias)
            if scan is None:
                continue
            base_cols = {strip_prefix(c, scan.prefix) for c in owned}
            table = schema.table(scan.table)
            pk_covered = bool(table.primary_key) and set(table.primary_key) <= base_cols
            covered_fks = {
                fk.name
                for fk in schema.outgoing_foreign_keys(scan.table)
                if set(fk.child_columns) <= base_cols
            }
            for use in rel.uses_for_alias(alias):
                if use.instance_key() in seen:
                    continue
                if pk_covered or (use.path and use.path[0] in covered_fks):
                    result.append(use)
                    seen.add(use.instance_key())
        return result

    # --------------------------------------------------------------- sort
    def _run_sort(self, node: SortNode) -> Relation:
        rel = self._run(node.input)
        n = rel.num_rows
        if n:
            sort_keys = []
            for column, ascending in reversed(node.keys):
                values = rel.column(column)
                if not ascending:
                    if values.dtype.kind in "iuf":
                        values = -values.astype(np.float64)
                    else:
                        _, codes = np.unique(values, return_inverse=True)
                        values = -codes
                sort_keys.append(values)
            order = np.lexsort(tuple(sort_keys))
            rel = rel.take(order)
        self._hold("sort", rel.data_bytes())
        self.metrics.charge_cpu(
            n * max(math.log2(max(n, 2)), 1.0) * self.costs.sort_row, "sort"
        )
        if all(asc for _, asc in node.keys):
            rel.sorted_on = tuple(c for c, _ in node.keys)
        return rel

    def _run_limit(self, node: LimitNode) -> Relation:
        rel = self._run(node.input)
        if rel.num_rows > node.count:
            rel = rel.take(np.arange(node.count), keep_sorted=True)
        return rel


def _rows_to_runs(rows: np.ndarray) -> List[Tuple[int, int]]:
    """Sorted row indices -> (start, length) runs."""
    if len(rows) == 0:
        return []
    breaks = np.flatnonzero(np.diff(rows) != 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [len(rows) - 1]])
    return [(int(rows[s]), int(rows[e] - rows[s] + 1)) for s, e in zip(starts, ends)]
