"""Predicate analysis: conjunct splitting and per-column range extraction.

Used for MinMax (zone map) pruning: a scan predicate such as
``l_shipdate >= d AND l_shipdate < d+1y`` yields a ``[lo, hi]`` interval
per column; blocks whose min/max miss the interval are skipped.  Under
BDCC the storage order makes correlated columns (shipdate under orderdate
clustering) locally coherent, which is when these intervals start pruning
— the paper's Q6/Q12/Q20 effect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..execution.expressions import And, Between, Cmp, Col, Const, Expr

__all__ = ["conjuncts", "column_ranges"]

_OPEN = (None, None)


def conjuncts(predicate: Optional[Expr]) -> List[Expr]:
    """Flatten a tree of AND nodes into its conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    return [predicate]


def _as_col_const(left: Expr, right: Expr) -> Optional[Tuple[str, object, bool]]:
    """(column, constant, column_is_left) for a Col-vs-Const comparison."""
    if isinstance(left, Col) and isinstance(right, Const):
        return left.name, right.value, True
    if isinstance(left, Const) and isinstance(right, Col):
        return right.name, left.value, False
    return None


def _merge(ranges: Dict[str, Tuple], column: str, low, high) -> None:
    cur_lo, cur_hi = ranges.get(column, _OPEN)
    if low is not None and (cur_lo is None or low > cur_lo):
        cur_lo = low
    if high is not None and (cur_hi is None or high < cur_hi):
        cur_hi = high
    ranges[column] = (cur_lo, cur_hi)


def column_ranges(predicate: Optional[Expr]) -> Dict[str, Tuple]:
    """Per-column ``(low, high)`` intervals implied by the predicate's
    conjuncts (None = open end).  Only Col-vs-Const comparisons and
    BETWEENs contribute; anything else is ignored (it still runs as the
    residual predicate — pruning must only ever be a superset)."""
    ranges: Dict[str, Tuple] = {}
    for conj in conjuncts(predicate):
        if isinstance(conj, Between):
            if (
                isinstance(conj.operand, Col)
                and isinstance(conj.low, Const)
                and isinstance(conj.high, Const)
            ):
                _merge(ranges, conj.operand.name, conj.low.value, conj.high.value)
            continue
        if not isinstance(conj, Cmp):
            continue
        parsed = _as_col_const(conj.left, conj.right)
        if parsed is None:
            continue
        column, value, col_left = parsed
        op = conj.op
        if not col_left:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if op == "==":
            _merge(ranges, column, value, value)
        elif op in ("<", "<="):
            _merge(ranges, column, None, value)
        elif op in (">", ">="):
            _merge(ranges, column, value, None)
        # strict bounds are kept closed: pruning stays a superset
    return ranges
