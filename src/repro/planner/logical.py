"""Logical query plans.

Queries are written once against this small algebra; the executor then
exploits whatever the active physical scheme offers (merge joins under
PK, pushdown/propagation/sandwiching under BDCC) without any change to
the plan.  Plans are trees of immutable nodes with a fluent builder.

Aliases: a scan's columns keep their base names unless an explicit alias
differs from the table name, in which case they are prefixed
``alias.column`` (needed for self-joins, e.g. TPC-H Q21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..execution.aggregate import AggSpec
from ..execution.expressions import Expr

__all__ = [
    "PlanNode", "ScanNode", "FilterNode", "ProjectNode", "JoinNode",
    "GroupByNode", "SortNode", "LimitNode", "scan", "Plan",
]

JOIN_KINDS = ("inner", "left", "semi", "anti")


@dataclass(frozen=True)
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        return ()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    table: str
    alias: str
    predicate: Optional[Expr] = None

    @property
    def prefix(self) -> str:
        """Column-name prefix this scan applies (empty when alias==table)."""
        return "" if self.alias == self.table else f"{self.alias}."


@dataclass(frozen=True)
class FilterNode(PlanNode):
    input: PlanNode
    predicate: Expr

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    input: PlanNode
    exprs: Tuple[Tuple[str, Expr], ...]  # (output name, expression)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)


@dataclass(frozen=True)
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    left_cols: Tuple[str, ...]
    right_cols: Tuple[str, ...]
    how: str = "inner"
    #: extra non-equi condition evaluated on joined rows (inner joins).
    residual: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.how not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {self.how!r}")
        if len(self.left_cols) != len(self.right_cols) or not self.left_cols:
            raise ValueError("join needs matching key column lists")
        if self.residual is not None and self.how not in ("inner", "semi", "anti"):
            raise ValueError("residual conditions require inner/semi/anti joins")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class GroupByNode(PlanNode):
    input: PlanNode
    keys: Tuple[str, ...]
    aggs: Tuple[AggSpec, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)


@dataclass(frozen=True)
class SortNode(PlanNode):
    input: PlanNode
    keys: Tuple[Tuple[str, bool], ...]  # (column, ascending)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)


@dataclass(frozen=True)
class LimitNode(PlanNode):
    input: PlanNode
    count: int

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)


class Plan:
    """Fluent builder around a :class:`PlanNode`."""

    def __init__(self, node: PlanNode):
        self.node = node

    def filter(self, predicate: Expr) -> "Plan":
        return Plan(FilterNode(self.node, predicate))

    def project(self, **exprs: Expr) -> "Plan":
        return Plan(ProjectNode(self.node, tuple(exprs.items())))

    def project_items(self, items: Sequence[Tuple[str, Expr]]) -> "Plan":
        return Plan(ProjectNode(self.node, tuple(items)))

    def join(
        self,
        other: Union["Plan", PlanNode],
        on: Sequence[Tuple[str, str]],
        how: str = "inner",
        residual: Optional[Expr] = None,
    ) -> "Plan":
        right = other.node if isinstance(other, Plan) else other
        left_cols = tuple(l for l, _ in on)
        right_cols = tuple(r for _, r in on)
        return Plan(JoinNode(self.node, right, left_cols, right_cols, how, residual))

    def groupby(self, keys: Sequence[str], aggs: Sequence[AggSpec]) -> "Plan":
        return Plan(GroupByNode(self.node, tuple(keys), tuple(aggs)))

    def sort(self, keys: Sequence[Tuple[str, bool]]) -> "Plan":
        return Plan(SortNode(self.node, tuple(keys)))

    def limit(self, count: int) -> "Plan":
        return Plan(LimitNode(self.node, count))


def scan(table: str, alias: Optional[str] = None, predicate: Optional[Expr] = None) -> Plan:
    """Start a plan with a (predicated) table scan."""
    return Plan(ScanNode(table=table, alias=alias or table, predicate=predicate))


def walk(node: PlanNode):
    """Yield every node of a plan tree, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)
