"""EXPLAIN: render the physical plan a scheme picks — without running it.

``explain(executor, plan)`` lowers the plan (planning is pure: it reads
count-table / zone-map / schema metadata but never touches row data) and
renders the physical operator tree with each operator's strategy
rationale — merge vs sandwich vs hash joins, streaming vs sandwich vs
hash aggregation, pushdown/minmax scan pruning and replica choice.

``explain(executor, plan, analyze=True)`` additionally *runs* the plan
and annotates every physical node with its per-operator actuals — rows
in/out, exclusive simulated IO and CPU seconds, and reserved operator
memory — plus the executor's runtime notes (actual group counts, build
sizes) and the query totals, like SQL's ``EXPLAIN ANALYZE``.

When the executor's options ask for ``workers > 1`` the rendering
switches to the *fragment* view: every plan fragment with its role
(``partition`` / ``broadcast`` / ``source`` / ``copartition`` /
``final``), partition note and dependencies, and under ``analyze`` the
scheduler's verdict per fragment — assigned worker, makespan
contribution and queue wait — plus the makespan/speedup totals.  When
the run used a measuring backend (``ExecutionOptions(backend="process")``)
each fragment header additionally carries its measured wall clock
(``measured=...ms``) and a ``measured:`` totals line sits under the
simulated makespan, so modelled and real time read side by side.  A
co-partitioned join renders its rebinning ``Repartition`` leaves and a
``UnionAll [... canonical order]`` gather, making the order-insensitive
result contract visible in the plan text.
"""

from __future__ import annotations

from typing import List, Optional

from ..execution.metrics import ExecutionMetrics
from ..parallel.fragments import ParallelPlan

from .executor import Executor
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .lowering import PhysicalPlan

__all__ = ["format_plan", "format_physical_plan", "format_parallel_plan", "explain"]


def _describe(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        alias = "" if node.alias == node.table else f" as {node.alias}"
        pred = " WHERE ..." if node.predicate is not None else ""
        return f"Scan {node.table}{alias}{pred}"
    if isinstance(node, FilterNode):
        return "Filter"
    if isinstance(node, ProjectNode):
        return f"Project [{', '.join(name for name, _ in node.exprs)}]"
    if isinstance(node, JoinNode):
        on = ", ".join(f"{l}={r}" for l, r in zip(node.left_cols, node.right_cols))
        extra = " + residual" if node.residual is not None else ""
        return f"Join {node.how} ON {on}{extra}"
    if isinstance(node, GroupByNode):
        aggs = ", ".join(f"{s.name}={s.fn}" for s in node.aggs)
        keys = ", ".join(node.keys) if node.keys else "<scalar>"
        return f"GroupBy [{keys}] -> {aggs}"
    if isinstance(node, SortNode):
        keys = ", ".join(f"{c}{'' if asc else ' desc'}" for c, asc in node.keys)
        return f"Sort [{keys}]"
    if isinstance(node, LimitNode):
        return f"Limit {node.count}"
    return type(node).__name__


def format_plan(plan) -> str:
    """ASCII tree of a logical plan."""
    node = plan.node if isinstance(plan, Plan) else plan
    lines: List[str] = []

    def render(current: PlanNode, depth: int) -> None:
        lines.append("  " * depth + _describe(current))
        for child in current.children():
            render(child, depth + 1)

    render(node, 0)
    return "\n".join(lines)


def format_physical_plan(
    pplan: PhysicalPlan,
    verbose: bool = True,
    metrics: Optional[ExecutionMetrics] = None,
) -> str:
    """ASCII tree of a physical plan.

    With ``verbose`` each operator's strategy rationale is appended in
    brackets; without, only the structural skeleton (operator kinds, join
    keys, grouping keys) is printed — the stable form golden tests pin.
    With ``metrics`` (from a run of this plan) each node is annotated
    with its per-operator actuals: rows in/out, exclusive IO/CPU time and
    reserved memory.
    """
    lines: List[str] = []
    _render_op(pplan.root, 0, lines, verbose, metrics)
    return "\n".join(lines)


def _render_op(op, depth: int, lines: List[str], verbose: bool,
               metrics: Optional[ExecutionMetrics]) -> None:
    line = "  " * depth + op.describe()
    rationale = getattr(op, "rationale", "")
    if verbose and rationale:
        line += f"  [{rationale}]"
    if metrics is not None:
        actuals = metrics.actuals_for(op)
        if actuals is not None:
            line += f"  {actuals.summary()}"
    lines.append(line)
    for child in op.children():
        _render_op(child, depth + 1, lines, verbose, metrics)


def format_parallel_plan(
    parallel: ParallelPlan,
    verbose: bool = True,
    metrics: Optional[ExecutionMetrics] = None,
) -> str:
    """ASCII rendering of a fragmented plan: one block per fragment —
    role, partition note, dependencies, and (with ``metrics`` from a
    scheduled run) the assigned worker, makespan contribution and queue
    wait — each followed by the fragment's operator tree."""
    actuals_by_index = {}
    if metrics is not None:
        actuals_by_index = {f.index: f for f in metrics.fragments}
    lines: List[str] = []
    for fragment in parallel.fragments:
        header = f"fragment {fragment.index} [{fragment.role}]"
        if fragment.note:
            header += f" {fragment.note}"
        if fragment.depends_on:
            header += " <- " + ", ".join(f"f{d}" for d in fragment.depends_on)
        actual = actuals_by_index.get(fragment.index)
        if actual is not None:
            header += f"  {actual.summary()}"
        lines.append(header)
        _render_op(fragment.root, 1, lines, verbose, metrics)
    if metrics is not None and metrics.makespan_seconds > 0.0:
        lines.append(
            "makespan: %.3f ms over %d workers (%.3f ms resource-seconds, "
            "speedup %.2fx)"
            % (
                metrics.makespan_seconds * 1e3,
                metrics.workers,
                metrics.total_seconds * 1e3,
                metrics.parallel_speedup,
            )
        )
        if metrics.measured_wall_seconds > 0.0:
            # a measuring backend ran: show real wall clock next to the
            # simulated makespan (per-fragment measured=...ms values sit
            # in the headers above)
            lines.append(
                "measured: %.3f ms wall on the %s backend"
                % (metrics.measured_wall_seconds * 1e3, metrics.backend)
            )
    return "\n".join(lines)


def _decisions(pplan: PhysicalPlan) -> List[str]:
    out: List[str] = []
    for op in pplan.operators():
        rationale = getattr(op, "rationale", "")
        if rationale:
            out.append(f"{op.describe()}: {rationale}")
    return out


def explain(executor: Executor, plan, analyze: bool = False) -> str:
    """Physical plan + strategy decisions; with ``analyze``, also run the
    query and report actual notes and simulated costs.  With
    ``options.workers > 1`` the plan is rendered as its fragments."""
    pplan = executor.lower(plan)
    parallel: Optional[ParallelPlan] = None
    if executor.options.workers > 1:
        parallel = executor.parallel_plan(pplan)
        if not parallel.is_parallel:
            parallel = None
    metrics: Optional[ExecutionMetrics] = None
    if analyze:
        metrics = executor.run(pplan).metrics
    scheme_line = f"scheme: {executor.pdb.scheme_name}"
    if parallel is not None:
        scheme_line += f", workers: {parallel.workers}"
        body = format_parallel_plan(parallel, verbose=True, metrics=metrics)
    else:
        body = format_physical_plan(pplan, verbose=True, metrics=metrics)
    parts = [
        scheme_line,
        body,
        "",
        "decisions:",
    ]
    decisions = _decisions(pplan)
    if decisions:
        parts.extend(f"  - {d}" for d in decisions)
    else:
        parts.append("  - (none: plain scans and default strategies)")
    if not analyze:
        return "\n".join(parts)

    parts.append("")
    parts.append("actual:")
    if metrics.notes:
        parts.extend(f"  - {note}" for note in metrics.notes)
    parts.append(
        "cost: %.3f ms simulated (IO %.3f ms / %.2f MB in %d accesses, "
        "CPU %.3f ms), peak memory %.3f MB, %d rows out"
        % (
            metrics.total_seconds * 1e3,
            metrics.io_seconds * 1e3,
            metrics.io_bytes / 1e6,
            metrics.io_accesses,
            metrics.cpu_seconds * 1e3,
            metrics.peak_memory_bytes / 1e6,
            metrics.rows_produced,
        )
    )
    if metrics.memory.tag_peaks:
        # per-tag peaks are each tag's own concurrent maximum; they
        # attribute the overall peak but need not sum to it
        parts.append("memory by tag (per-tag peak):")
        ordered = sorted(
            metrics.memory.tag_peaks.items(), key=lambda item: -item[1]
        )
        parts.extend(
            f"  - {tag}: {peak / 1e6:.3f} MB" for tag, peak in ordered
        )
    return "\n".join(parts)
