"""EXPLAIN: render a logical plan and the strategies a scheme picks.

``explain(executor, plan)`` executes the plan (execution is the cheapest
way to get truthful strategy decisions in this engine — it is a
simulator) and renders the plan tree together with the executor's
decision notes, IO/CPU/memory totals and the active scan restrictions.
"""

from __future__ import annotations

from typing import List

from .executor import Executor
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)

__all__ = ["format_plan", "explain"]


def _describe(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        alias = "" if node.alias == node.table else f" as {node.alias}"
        pred = " WHERE ..." if node.predicate is not None else ""
        return f"Scan {node.table}{alias}{pred}"
    if isinstance(node, FilterNode):
        return "Filter"
    if isinstance(node, ProjectNode):
        return f"Project [{', '.join(name for name, _ in node.exprs)}]"
    if isinstance(node, JoinNode):
        on = ", ".join(f"{l}={r}" for l, r in zip(node.left_cols, node.right_cols))
        extra = " + residual" if node.residual is not None else ""
        return f"Join {node.how} ON {on}{extra}"
    if isinstance(node, GroupByNode):
        aggs = ", ".join(f"{s.name}={s.fn}" for s in node.aggs)
        keys = ", ".join(node.keys) if node.keys else "<scalar>"
        return f"GroupBy [{keys}] -> {aggs}"
    if isinstance(node, SortNode):
        keys = ", ".join(f"{c}{'' if asc else ' desc'}" for c, asc in node.keys)
        return f"Sort [{keys}]"
    if isinstance(node, LimitNode):
        return f"Limit {node.count}"
    return type(node).__name__


def format_plan(plan) -> str:
    """ASCII tree of a logical plan."""
    node = plan.node if isinstance(plan, Plan) else plan
    lines: List[str] = []

    def render(current: PlanNode, depth: int) -> None:
        lines.append("  " * depth + _describe(current))
        for child in current.children():
            render(child, depth + 1)

    render(node, 0)
    return "\n".join(lines)


def explain(executor: Executor, plan) -> str:
    """Plan tree + the scheme's actual strategy decisions and costs."""
    result = executor.execute(plan)
    metrics = result.metrics
    parts = [
        f"scheme: {executor.pdb.scheme_name}",
        format_plan(plan),
        "",
        "decisions:",
    ]
    if metrics.notes:
        parts.extend(f"  - {note}" for note in metrics.notes)
    else:
        parts.append("  - (none: plain scans and default strategies)")
    parts.append("")
    parts.append(
        "cost: %.3f ms simulated (IO %.3f ms / %.2f MB in %d accesses, "
        "CPU %.3f ms), peak memory %.3f MB, %d rows out"
        % (
            metrics.total_seconds * 1e3,
            metrics.io_seconds * 1e3,
            metrics.io_bytes / 1e6,
            metrics.io_accesses,
            metrics.cpu_seconds * 1e3,
            metrics.peak_memory_bytes / 1e6,
            metrics.rows_produced,
        )
    )
    return "\n".join(parts)
