"""Property propagation through plans: selections and result contracts.

Two pure analyses live here:

* **Selection propagation** between co-clustered tables — the heart of
  BDCC query processing (benefit (ii) of Section II): a selection on a
  dimension — or on a table joined to it, like a region filter above
  NATION — restricts the qualifying *bins* of that dimension, and every
  co-clustered table in the query can skip the non-qualifying groups of
  its count table.  For each BDCC scan and each of its dimension uses we
  check that the use's foreign-key path is actually realised by the
  query's joins (with join kinds that filter the scanned side — see
  :meth:`FKEdge.filters_child`), evaluate the predicates sitting on the
  dimension's host table (recursively restricted through the host's own
  filtering parents, which is how ``r_name = 'ASIA'`` reaches D_NATION),
  and translate the surviving key values into a bin restriction.

* **Result-contract propagation** over an already-lowered physical
  plan (:func:`compute_order_contracts`): for every operator, whether a
  *reordering* exchange (the co-partitioned join gather, whose stream is
  a deterministic multiset but not the serial row order) may be
  introduced at or below it without breaking anything above.  Operators
  declare their needs on the class (``PhysicalOp.ordered_inputs``,
  ``Sort.restores_order``); this walk turns those local declarations
  into the per-node admissibility the fragmenting pass consults before
  trading the bit-identical contract for the order-insensitive one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.operators import HashJoin, PhysicalOp
from ..storage.database import Database
from .analysis import PlanAnalysis, strip_prefix

__all__ = [
    "ScanRestrictions",
    "compute_restrictions",
    "ResultContract",
    "compute_order_contracts",
]

#: per alias: list of (use_index, allowed_bins, bin_bits)
ScanRestrictions = Dict[str, List[Tuple[int, np.ndarray, int]]]


class _HostEvaluator:
    """Evaluates, per alias, which base-table rows can qualify given the
    alias's own scan predicate and its filtering parents.

    With ``local_only`` the parent joins are ignored: only the scan's own
    predicate restricts (the pushdown-without-propagation ablation).
    """

    def __init__(self, db: Database, analysis: PlanAnalysis, local_only: bool = False):
        self._db = db
        self._analysis = analysis
        self._local_only = local_only
        self._memo: Dict[str, Optional[np.ndarray]] = {}

    def qualifying_mask(self, alias: str) -> Optional[np.ndarray]:
        """Boolean mask over the base table's rows, or None = all rows."""
        if alias in self._memo:
            return self._memo[alias]
        self._memo[alias] = None  # cycle guard (FK graphs are acyclic anyway)
        scan = self._analysis.scans[alias]
        data = self._db.table_data(scan.table)
        mask: Optional[np.ndarray] = None
        if scan.predicate is not None:
            env = {scan.prefix + name: values for name, values in data.items()}
            mask = np.asarray(scan.predicate.eval(env), dtype=bool)
        if self._local_only:
            self._memo[alias] = mask
            return mask
        for edge in self._analysis.usable_edges_from(alias):
            parent_mask = self.qualifying_mask(edge.parent_alias)
            if parent_mask is None:
                continue
            fk = self._db.schema.foreign_key(edge.fk_name)
            parent_data = self._db.table_data(fk.parent_table)
            surviving = _key_membership(
                [data[c] for c in fk.child_columns],
                [parent_data[c][parent_mask] for c in fk.parent_columns],
            )
            mask = surviving if mask is None else (mask & surviving)
        self._memo[alias] = mask
        return mask


def _key_membership(child_cols: List[np.ndarray], parent_cols: List[np.ndarray]) -> np.ndarray:
    """Mask over child rows whose key tuple appears among parent keys."""
    if len(child_cols) == 1:
        return np.isin(child_cols[0], parent_cols[0])
    # per-column membership over-approximates tuple membership; pruning
    # supersets are sound (the residual joins still apply)
    mask = np.ones(len(child_cols[0]), dtype=bool)
    for child, parent in zip(child_cols, parent_cols):
        mask &= np.isin(child, parent)
    return mask


def compute_restrictions(
    db: Database,
    analysis: PlanAnalysis,
    bdcc_tables: Dict[str, object],
    alias_tables: Dict[str, str],
    local_only: bool = False,
) -> ScanRestrictions:
    """Bin restrictions for every BDCC-clustered scan in the plan.

    Args:
        db: logical database (dimension hosts are evaluated against it).
        analysis: join graph + aliases of the plan.
        bdcc_tables: table name -> :class:`BDCCTable` of the active scheme.
        alias_tables: alias -> base table name.
        local_only: restrict only from each scan's own predicate on local
            dimensions (disables propagation — ablation mode).
    """
    evaluator = _HostEvaluator(db, analysis, local_only=local_only)
    restrictions: ScanRestrictions = {}
    for alias, scan in analysis.scans.items():
        bdcc = bdcc_tables.get(scan.table)
        if bdcc is None:
            continue
        entries: List[Tuple[int, np.ndarray, int]] = []
        for use_index, use in enumerate(bdcc.uses):
            if local_only and use.path:
                continue
            host_alias = _walk_path(analysis, alias, use.path)
            if host_alias is None:
                continue
            host_scan = analysis.scans[host_alias]
            if host_scan.table != use.dimension.table:
                continue  # path matched FKs but lands elsewhere (shouldn't happen)
            mask = evaluator.qualifying_mask(host_alias)
            if mask is None or bool(mask.all()):
                continue
            host_data = db.table_data(host_scan.table)
            key_values = [host_data[a][mask] for a in use.dimension.key]
            if len(key_values[0]) == 0:
                bins = np.zeros(0, dtype=np.uint64)
            else:
                codes = use.dimension.encoder.encode(key_values)
                bins = np.unique(use.dimension.bin_of_codes(codes))
            if len(bins) >= use.dimension.num_bins:
                continue  # no pruning power
            entries.append((use_index, bins, use.dimension.bits))
        if entries:
            restrictions[alias] = entries
    return restrictions


def _walk_path(analysis: PlanAnalysis, alias: str, path: Tuple[str, ...]) -> Optional[str]:
    """Follow a dimension path through the query's filtering FK edges;
    returns the host alias, or None when the path is not realised."""
    current = alias
    for fk_name in path:
        edge = analysis.edge_from(current, fk_name)
        if edge is None or not edge.filters_child():
            return None
        current = edge.parent_alias
    return current


# ------------------------------------------------------ result contracts
@dataclass(frozen=True)
class ResultContract:
    """The order contract at one physical-plan node.

    ``reorder_admissible`` answers: may an exchange that *reorders* rows
    (a co-partitioned join's canonical gather) be introduced at or below
    this node?  True means every operator between this node and the plan
    root either carries row order transparently (filters, projections,
    hash-family joins and aggregations — a reorder below them changes
    their output order but never their output multiset) or re-sorts
    (:class:`~repro.execution.operators.Sort`, whose tie-breaks then
    resolve by the gather's deterministic canonical order instead of the
    serial order).  False means some ancestor *requires* serially
    ordered input — a merge join, a streaming aggregation, or a LIMIT
    prefix not re-established by a sort in between — and the subtree
    must keep the bit-identical contract.
    """

    reorder_admissible: bool = True


def _order_free_children(op: PhysicalOp) -> Tuple[str, ...]:
    """Child attributes whose row order cannot influence the operator's
    output at all: the probed-for-membership side of a semi/anti hash
    join (only key membership matters, never match order)."""
    if isinstance(op, HashJoin) and op.how in ("semi", "anti"):
        return ("right",)
    return ()


def _named_children(op: PhysicalOp):
    for name in ("input", "left", "right"):
        child = getattr(op, name, None)
        if isinstance(child, PhysicalOp):
            yield name, child


def compute_order_contracts(root: PhysicalOp) -> Dict[int, ResultContract]:
    """Propagate order requirements top-down over a lowered plan.

    Pure and deterministic, like lowering itself.  Returns a map from
    operator identity (``id(op)``) to its :class:`ResultContract`; the
    fragmenting pass consults it before replacing a join's bit-identical
    broadcast split with a reordering co-partitioned split.  The plan
    root is admissible: a query's *top-level* contract under reordering
    exchanges is the canonical (fragment-key) order — deterministic
    across runs, compared order-insensitively by the workload oracle.

    One deliberate trade rides on ``Sort.restores_order``: a stable
    sort's ties resolve by input order, so below a LIMIT whose sort
    keys do not totally order the data, a reorder can change which of
    two *equal-ranking* rows the prefix keeps (similarly, re-aggregated
    float sort keys can re-rank rows within an ulp).  Row selection
    then still is deterministic — canonical order instead of serial
    order — but no longer guaranteed the serial multiset.  The
    workload generator only emits LIMIT above total-order sorts, so
    the differential sweep is immune by construction; TPC-H Q3/Q18
    would need two rows tying on all sort keys exactly at the limit
    boundary, and the oracle/tests flag it loudly if a dataset ever
    produces one.
    """
    contracts: Dict[int, ResultContract] = {}

    def walk(op: PhysicalOp, admissible: bool) -> None:
        contracts[id(op)] = ResultContract(reorder_admissible=admissible)
        order_free = _order_free_children(op)
        for name, child in _named_children(op):
            if op.restores_order or name in order_free:
                child_ok = True
            elif name in op.ordered_inputs:
                child_ok = False
            else:
                child_ok = admissible
            walk(child, child_ok)
        # gather-style operators (tuple children) are transparent
        for child in op.children():
            if id(child) not in contracts:
                walk(child, admissible)

    walk(root, True)
    return contracts
