"""Selection propagation between co-clustered tables.

The heart of BDCC query processing (benefit (ii) of Section II): a
selection on a dimension — or on a table joined to it, like a region
filter above NATION — restricts the qualifying *bins* of that dimension,
and every co-clustered table in the query can skip the non-qualifying
groups of its count table.

For each BDCC scan and each of its dimension uses we check that the
use's foreign-key path is actually realised by the query's joins (with
join kinds that filter the scanned side — see
:meth:`FKEdge.filters_child`), evaluate the predicates sitting on the
dimension's host table (recursively restricted through the host's own
filtering parents, which is how ``r_name = 'ASIA'`` reaches D_NATION),
and translate the surviving key values into a bin restriction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..storage.database import Database
from .analysis import PlanAnalysis, strip_prefix

__all__ = ["ScanRestrictions", "compute_restrictions"]

#: per alias: list of (use_index, allowed_bins, bin_bits)
ScanRestrictions = Dict[str, List[Tuple[int, np.ndarray, int]]]


class _HostEvaluator:
    """Evaluates, per alias, which base-table rows can qualify given the
    alias's own scan predicate and its filtering parents.

    With ``local_only`` the parent joins are ignored: only the scan's own
    predicate restricts (the pushdown-without-propagation ablation).
    """

    def __init__(self, db: Database, analysis: PlanAnalysis, local_only: bool = False):
        self._db = db
        self._analysis = analysis
        self._local_only = local_only
        self._memo: Dict[str, Optional[np.ndarray]] = {}

    def qualifying_mask(self, alias: str) -> Optional[np.ndarray]:
        """Boolean mask over the base table's rows, or None = all rows."""
        if alias in self._memo:
            return self._memo[alias]
        self._memo[alias] = None  # cycle guard (FK graphs are acyclic anyway)
        scan = self._analysis.scans[alias]
        data = self._db.table_data(scan.table)
        mask: Optional[np.ndarray] = None
        if scan.predicate is not None:
            env = {scan.prefix + name: values for name, values in data.items()}
            mask = np.asarray(scan.predicate.eval(env), dtype=bool)
        if self._local_only:
            self._memo[alias] = mask
            return mask
        for edge in self._analysis.usable_edges_from(alias):
            parent_mask = self.qualifying_mask(edge.parent_alias)
            if parent_mask is None:
                continue
            fk = self._db.schema.foreign_key(edge.fk_name)
            parent_data = self._db.table_data(fk.parent_table)
            surviving = _key_membership(
                [data[c] for c in fk.child_columns],
                [parent_data[c][parent_mask] for c in fk.parent_columns],
            )
            mask = surviving if mask is None else (mask & surviving)
        self._memo[alias] = mask
        return mask


def _key_membership(child_cols: List[np.ndarray], parent_cols: List[np.ndarray]) -> np.ndarray:
    """Mask over child rows whose key tuple appears among parent keys."""
    if len(child_cols) == 1:
        return np.isin(child_cols[0], parent_cols[0])
    # per-column membership over-approximates tuple membership; pruning
    # supersets are sound (the residual joins still apply)
    mask = np.ones(len(child_cols[0]), dtype=bool)
    for child, parent in zip(child_cols, parent_cols):
        mask &= np.isin(child, parent)
    return mask


def compute_restrictions(
    db: Database,
    analysis: PlanAnalysis,
    bdcc_tables: Dict[str, object],
    alias_tables: Dict[str, str],
    local_only: bool = False,
) -> ScanRestrictions:
    """Bin restrictions for every BDCC-clustered scan in the plan.

    Args:
        db: logical database (dimension hosts are evaluated against it).
        analysis: join graph + aliases of the plan.
        bdcc_tables: table name -> :class:`BDCCTable` of the active scheme.
        alias_tables: alias -> base table name.
        local_only: restrict only from each scan's own predicate on local
            dimensions (disables propagation — ablation mode).
    """
    evaluator = _HostEvaluator(db, analysis, local_only=local_only)
    restrictions: ScanRestrictions = {}
    for alias, scan in analysis.scans.items():
        bdcc = bdcc_tables.get(scan.table)
        if bdcc is None:
            continue
        entries: List[Tuple[int, np.ndarray, int]] = []
        for use_index, use in enumerate(bdcc.uses):
            if local_only and use.path:
                continue
            host_alias = _walk_path(analysis, alias, use.path)
            if host_alias is None:
                continue
            host_scan = analysis.scans[host_alias]
            if host_scan.table != use.dimension.table:
                continue  # path matched FKs but lands elsewhere (shouldn't happen)
            mask = evaluator.qualifying_mask(host_alias)
            if mask is None or bool(mask.all()):
                continue
            host_data = db.table_data(host_scan.table)
            key_values = [host_data[a][mask] for a in use.dimension.key]
            if len(key_values[0]) == 0:
                bins = np.zeros(0, dtype=np.uint64)
            else:
                codes = use.dimension.encoder.encode(key_values)
                bins = np.unique(use.dimension.bin_of_codes(codes))
            if len(bins) >= use.dimension.num_bins:
                continue  # no pruning power
            entries.append((use_index, bins, use.dimension.bits))
        if entries:
            restrictions[alias] = entries
    return restrictions


def _walk_path(analysis: PlanAnalysis, alias: str, path: Tuple[str, ...]) -> Optional[str]:
    """Follow a dimension path through the query's filtering FK edges;
    returns the host alias, or None when the path is not realised."""
    current = alias
    for fk_name in path:
        edge = analysis.edge_from(current, fk_name)
        if edge is None or not edge.filters_child():
            return None
        current = edge.parent_alias
    return current
