"""Lowering: logical plan -> physical plan, all strategies decided.

This is the planning half of the engine.  One walk over the logical plan
— armed with :class:`PlanAnalysis`, selection propagation and the cost
model — resolves every strategy decision the paper's evaluation turns
on, and emits a typed physical plan of
:mod:`repro.execution.operators` nodes:

* **Scans** become :class:`PhysicalScan` with resolved replica choice,
  count-table restrictions (pushdown + propagation) and zone-map ranges;
* **Joins** become :class:`MergeJoin` (both inputs ordered),
  :class:`SandwichJoin` (co-clustered streams share a dimension over the
  join key) or :class:`HashJoin`;
* **Aggregations** become :class:`StreamAgg` (input ordered on the
  keys), :class:`SandwichAgg` (keys functionally determine a carried
  dimension use) or :class:`HashAgg`.

Decisions rest on *guaranteed* physical stream properties (sort order,
carried dimension uses, column ownership) that lowering tracks exactly
as execution propagates them — so a plan never claims an order the data
will not have.  Cardinalities, in contrast, are *estimates* (count-table
and zone-map metadata plus predicate-shape selectivities); they only tip
performance choices such as the hash-join build side.

Lowering is pure: it reads table metadata (count tables, zone maps,
schema, and — for tables with pending updates — the delta store's keys,
deletion bitmaps and per-run zone maps) but never touches row data,
charges no metrics, and lowering the same plan twice against the same
update epoch yields equal physical plans — the basis for EXPLAIN without
execution and for plan caching (cache keys carry the epoch, so a commit
can never serve a stale plan).

Besides strategies, lowering attaches the plan's *result contracts*
(:func:`repro.planner.propagation.compute_order_contracts`): a
per-operator admissibility map saying where a reordering exchange — the
co-partitioned join split of the fragmenting pass — may be introduced
without breaking an order-requiring ancestor.  See
``docs/execution-model.md`` for the bit-identical vs order-insensitive
contract semantics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..execution.expressions import (
    And,
    Between,
    Cmp,
    Col,
    Expr,
    InList,
    Like,
    Not,
    Or,
)
from ..execution.operators import (
    DeltaMergeScan,
    HashAgg,
    HashJoin,
    Limit,
    MergeJoin,
    PhysicalFilter,
    PhysicalOp,
    PhysicalProject,
    PhysicalScan,
    SandwichAgg,
    SandwichJoin,
    Sort,
    StreamAgg,
    walk_physical,
)
from ..execution.relation import StreamUse
from ..schemes.base import PhysicalDatabase
from .analysis import PlanAnalysis, analyse_plan, strip_prefix
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .predicates import column_ranges, conjuncts
from .propagation import ResultContract, compute_order_contracts, compute_restrictions

__all__ = ["ExecutionOptions", "PhysicalPlan", "lower"]


@dataclass
class ExecutionOptions:
    """Feature switches (for ablations), sandwich tuning and the
    parallel-execution knobs.  The ablation switches are honoured at
    *lowering* time: flipping one changes the emitted physical plan, not
    the behaviour of the operators.  ``workers`` and
    ``min_partition_rows`` are honoured by the *fragmenting* pass
    (``repro.parallel``), which derives partition fragments from the
    serially lowered plan — the lowering itself is worker-agnostic."""

    enable_pushdown: bool = True      # BDCC group pruning from local predicates
    enable_propagation: bool = True   # ... and from co-clustered neighbours
    enable_minmax: bool = True        # zone-map page pruning
    enable_sandwich: bool = True      # pre-grouped joins/aggregations
    enable_merge: bool = True         # merge joins on ordered inputs
    max_sandwich_bits: int = 8        # cap on combined sandwich group bits
    workers: int = 1                  # simulated workers (1 = serial)
    min_partition_rows: int = 2048    # smallest scan partition worth a fragment
    #: split *both* sides of sandwich joins along shared dimension bits
    #: (reordering Repartition) instead of broadcasting the build side;
    #: such plans trade the bit-identical result contract for the
    #: order-insensitive one (see docs/execution-model.md)
    enable_copartition: bool = True
    #: lower eligible aggregations into per-fragment PartialAgg below
    #: the exchange plus one MergeAgg above it (two-phase aggregation);
    #: with False every parallel aggregate gathers first and the plan
    #: keeps the bit-identical contract.  A fragment-level knob like
    #: ``enable_copartition``: the serial lowering is untouched, so the
    #: ablation is bit-identical to the serial plan by construction.
    enable_partial_agg: bool = True
    #: where parallel fragments execute: "simulated" (in-process under
    #: the deterministic scheduler) or "process" (a real
    #: ``multiprocessing`` pool over shared-memory column exports; see
    #: ``repro.parallel.backends``).  Results are bit-identical either
    #: way; the process backend additionally records measured wall
    #: clock.  Purely a runtime knob: it touches neither the lowering
    #: nor the fragment plan.
    backend: str = "simulated"
    #: run every fragment (and the serial root) under ``cProfile`` and
    #: attach the top functions by exclusive time to the execution
    #: metrics (rendered as child slices in the Perfetto export and
    #: embedded in query-log records).  Passive: simulated charges and
    #: results are bit-identical with profiling on or off, because the
    #: profiler only observes the Python frames that produce them.
    profile: bool = False

    #: fields that do not affect the lowered (serial) plan — they select
    #: the *fragment* plan derived from it, cached separately by the
    #: executor.  Excluded from ``cache_key`` so switching the worker
    #: count reuses the cached lowering and never re-lowers.
    _RUNTIME_ONLY = frozenset(
        {
            "workers",
            "min_partition_rows",
            "enable_copartition",
            "enable_partial_agg",
            "backend",
            "profile",
        }
    )

    def cache_key(self, epoch: int = 0) -> tuple:
        # every planning field participates, so a future switch can never
        # be forgotten and serve a stale cached lowering (a new field is
        # included by default; it must be named in _RUNTIME_ONLY to opt
        # out, which only fragment-level knobs may do).  The physical
        # database's update ``epoch`` rides along: a commit bumps it, so
        # plans lowered against an older delta state can never be served
        # again — while plain reads (same epoch) keep hitting the cache.
        return tuple(
            getattr(self, spec.name)
            for spec in dataclasses.fields(self)
            if spec.name not in self._RUNTIME_ONLY
        ) + (int(epoch),)


@dataclass
class PhysicalPlan:
    """A fully lowered query: the operator tree plus the context it was
    planned for.

    ``contracts`` maps operator identity to its
    :class:`~repro.planner.propagation.ResultContract` — whether a
    reordering exchange may be introduced at/below each node.  Computed
    once at lowering (pure, like everything else here) and consulted by
    the fragmenting pass when it considers a co-partitioned join split.
    """

    root: PhysicalOp
    scheme_name: str
    contracts: Optional[Dict[int, "ResultContract"]] = None

    def operators(self):
        return walk_physical(self.root)


# ------------------------------------------------------------ selectivity
def _selectivity(expr: Optional[Expr]) -> float:
    """Crude predicate-shape selectivity; only used to tip performance
    choices (hash-join build side), never correctness."""
    if expr is None:
        return 1.0
    if isinstance(expr, Cmp):
        if expr.op == "==":
            return 0.15
        if expr.op == "!=":
            return 0.85
        return 0.35
    if isinstance(expr, Between):
        return 0.25
    if isinstance(expr, InList):
        return min(0.8, 0.15 * max(len(expr.values), 1))
    if isinstance(expr, Like):
        return 0.15
    if isinstance(expr, Not):
        return 1.0 - _selectivity(expr.operand)
    if isinstance(expr, And):
        return _selectivity(expr.left) * _selectivity(expr.right)
    if isinstance(expr, Or):
        s1, s2 = _selectivity(expr.left), _selectivity(expr.right)
        return min(1.0, s1 + s2 - s1 * s2)
    return 0.5


def _value_bytes(array: np.ndarray) -> float:
    """Engine-side bytes per value (mirrors Relation.row_bytes)."""
    if array.dtype.kind == "U":
        return array.dtype.itemsize / 4.0
    return float(array.dtype.itemsize)


def _resolve_selection(stored, restrictions, minmax_ranges):
    """Resolve a scan's selected row set from metadata only.

    Applies count-table group pruning (``restrictions``) and zone-map
    block pruning (``minmax_ranges``); returns ``(rows, note_bits)``
    where ``rows`` is None for a full scan.  Computed once here and
    carried on the :class:`PhysicalScan` for every run."""
    n = stored.stored_rows
    bdcc = stored.bdcc
    note_bits: List[str] = []
    if bdcc is not None:
        if restrictions:
            entries = bdcc.entries_matching(list(restrictions))
            note_bits.append(
                f"pushdown {len(entries)}/{bdcc.count_table.num_groups} groups"
            )
        else:
            entries = bdcc.all_entries()
        rows = bdcc.count_table.rows_for_entries(entries)
    else:
        rows = None  # all rows, in storage order

    if minmax_ranges and n > 0:
        mask: Optional[np.ndarray] = None
        for column, low, high in minmax_ranges:
            index = stored.minmax_for(column)
            keep_blocks = index.blocks_overlapping(low, high)
            if keep_blocks.all():
                continue
            block_of_row = np.arange(n) // index.block_rows
            row_keep = keep_blocks[block_of_row]
            mask = row_keep if mask is None else (mask & row_keep)
        if mask is not None:
            if rows is None:
                rows = np.flatnonzero(mask)
            else:
                rows = rows[mask[rows]]
            note_bits.append(f"minmax {np.count_nonzero(mask)}/{n} rows")
    return rows, note_bits


@dataclass
class _Stream:
    """Statically inferred physical properties of an operator's output —
    the planning-time mirror of what :class:`Relation` carries at run
    time.  ``columns`` maps every output column (including hidden group
    columns) to estimated engine bytes per value."""

    op: PhysicalOp
    columns: Dict[str, float]
    owners: Dict[str, str]
    sorted_on: Tuple[str, ...]
    uses: List[StreamUse]
    est_rows: float

    def uses_for_alias(self, alias: str) -> List[StreamUse]:
        return [u for u in self.uses if u.alias == alias]

    def est_bytes(self) -> float:
        return self.est_rows * sum(self.columns.values())


class _Lowering:
    def __init__(self, pdb: PhysicalDatabase, options: ExecutionOptions):
        self.pdb = pdb
        self.options = options
        self.analysis: PlanAnalysis = None  # set in lower()
        self._restrictions = {}
        self._replica_choice = {}

    # ------------------------------------------------------------- driver
    def lower(self, node: PlanNode) -> PhysicalPlan:
        self.analysis = analyse_plan(node, self.pdb.schema)
        self._restrictions = {}
        self._replica_choice = {}
        if self.options.enable_pushdown:
            bdcc_tables = self.pdb.bdcc_tables()
            if bdcc_tables:
                alias_tables = {a: s.table for a, s in self.analysis.scans.items()}
                self._restrictions = compute_restrictions(
                    self.pdb.database,
                    self.analysis,
                    bdcc_tables,
                    alias_tables,
                    local_only=not self.options.enable_propagation,
                )
                self._choose_replicas(bdcc_tables, alias_tables)
        stream = self._lower(node)
        return PhysicalPlan(
            stream.op,
            self.pdb.scheme_name,
            contracts=compute_order_contracts(stream.op),
        )

    def _choose_replicas(self, bdcc_tables, alias_tables) -> None:
        """Per scan, pick the physical copy whose count-table groups the
        query's restrictions prune hardest (future-work (ii): which
        dimensions to use for which replica)."""
        if not self.pdb.replicas:
            return
        for alias, scan_node in self.analysis.scans.items():
            copies = self.pdb.replicas.get(scan_node.table)
            if not copies:
                continue
            primary = self.pdb.table(scan_node.table)
            candidates = [(primary, self._restrictions.get(alias, []))]
            for copy in copies:
                variant = dict(bdcc_tables)
                variant[scan_node.table] = copy.bdcc
                restr = compute_restrictions(
                    self.pdb.database,
                    self.analysis,
                    variant,
                    alias_tables,
                    local_only=not self.options.enable_propagation,
                )
                candidates.append((copy, restr.get(alias, [])))

            def selected_fraction(candidate):
                stored, restrictions = candidate
                if stored.bdcc is None or not restrictions:
                    return 1.0
                entries = stored.bdcc.entries_matching(restrictions)
                rows = float(stored.bdcc.count_table.counts[entries].sum())
                return rows / max(stored.bdcc.logical_rows, 1)

            best = min(candidates, key=selected_fraction)
            if best[0] is not primary:
                index = next(i for i, c in enumerate(copies) if c is best[0])
                note = (
                    f"scan {alias}: replica #{index + 1} selected "
                    f"({selected_fraction(best):.0%} of rows vs "
                    f"{selected_fraction(candidates[0]):.0%} on the primary)"
                )
                self._replica_choice[alias] = (best[0], best[1], note)

    # ----------------------------------------------------------- dispatch
    def _lower(self, node: PlanNode) -> _Stream:
        if isinstance(node, ScanNode):
            return self._lower_scan(node)
        if isinstance(node, FilterNode):
            return self._lower_filter(node)
        if isinstance(node, ProjectNode):
            return self._lower_project(node)
        if isinstance(node, JoinNode):
            return self._lower_join(node)
        if isinstance(node, GroupByNode):
            return self._lower_groupby(node)
        if isinstance(node, SortNode):
            return self._lower_sort(node)
        if isinstance(node, LimitNode):
            return self._lower_limit(node)
        raise TypeError(f"unknown node {type(node).__name__}")

    # --------------------------------------------------------------- scan
    def _lower_scan(self, node: ScanNode) -> _Stream:
        replica_note = ""
        chosen = self._replica_choice.get(node.alias)
        if chosen is not None:
            stored, restrictions, replica_note = chosen
        else:
            stored = self.pdb.table(node.table)
            restrictions = self._restrictions.get(node.alias, [])
        wanted = self.analysis.demands.get(node.alias, set())
        demanded = [c for c in stored.definition.column_names if c in wanted]
        if not demanded:  # count-only scans still need one column
            demanded = [stored.definition.column_names[0]]
        n = stored.stored_rows
        bdcc = stored.bdcc
        prefix = node.prefix

        # zone-map decisions: keep only the ranges that actually prune
        minmax_ranges: List[Tuple[str, float, float]] = []
        if self.options.enable_minmax and node.predicate is not None and n > 0:
            for column, (low, high) in column_ranges(node.predicate).items():
                base = strip_prefix(column, prefix)
                if base not in stored.columns:
                    continue
                if stored.columns[base].dtype.kind not in "iuf":
                    continue
                index = stored.minmax_for(base)
                if index.blocks_overlapping(low, high).all():
                    continue
                minmax_ranges.append((base, low, high))

        rows, note_bits = _resolve_selection(stored, restrictions, minmax_ranges)

        # ---- merge-on-read: mask deletions, select delta-run rows -------
        delta_selected: Tuple[Tuple[int, np.ndarray], ...] = ()
        delta_live = 0
        has_delta = stored.has_delta
        if has_delta:
            delta = stored.delta
            if delta.base_deleted.any():
                if rows is None:
                    rows = np.flatnonzero(~delta.base_deleted)
                else:
                    rows = rows[~delta.base_deleted[rows]]
                note_bits.append(f"{delta.deleted_base_rows} deleted rows masked")
            delta_selected, delta_live = self._select_delta_rows(
                stored, restrictions, minmax_ranges
            )
            note_bits.append(
                f"+{delta_live}/{delta.live_delta_rows} delta rows "
                f"({len(delta.runs)} runs, epoch {stored.epoch})"
            )
        num_selected = (n if rows is None else len(rows)) + delta_live
        # block pruning yields a superset of the qualifying rows; the
        # value-based estimate bounds the residual predicate's effect
        total_rows = n + (stored.delta.total_delta_rows if has_delta else 0)
        est_rows = min(
            float(num_selected),
            total_rows * self._scan_selectivity(stored, prefix, node.predicate),
        )

        sandwich_uses: List[Tuple[int, int, str]] = []
        uses: List[StreamUse] = []
        if bdcc is not None and self.options.enable_sandwich:
            for idx, use in enumerate(bdcc.uses):
                eff_bits = bdcc.effective_bits(idx)
                if eff_bits == 0:
                    continue
                column_name = f"__grp__{node.alias}__{idx}"
                sandwich_uses.append((idx, eff_bits, column_name))
                uses.append(
                    StreamUse(node.alias, use.dimension, use.path, eff_bits, column_name)
                )

        rationale_bits = []
        if replica_note:
            rationale_bits.append(replica_note.split(": ", 1)[1])
        rationale_bits.extend(note_bits)
        if uses:
            rationale_bits.append(
                "carries " + "+".join(u.dimension.name for u in uses)
            )

        sorted_on = tuple(prefix + c for c in stored.sort_columns)
        scan_fields = dict(
            table=node.table,
            alias=node.alias,
            prefix=prefix,
            stored=stored,
            demanded=tuple(demanded),
            predicate=node.predicate,
            restrictions=tuple(restrictions),
            minmax_ranges=tuple(minmax_ranges),
            selected_rows=rows,
            selection_notes=tuple(note_bits),
            sandwich_uses=tuple(sandwich_uses),
            sorted_on=sorted_on,
            est_rows=est_rows,
            rationale=", ".join(rationale_bits),
            replica_note=replica_note,
        )
        if has_delta:
            op: PhysicalScan = DeltaMergeScan(delta_selected=delta_selected, **scan_fields)
        else:
            op = PhysicalScan(**scan_fields)
        columns = {prefix + c: _value_bytes(stored.columns[c]) for c in demanded}
        owners = {name: node.alias for name in columns}
        for _, _, column_name in sandwich_uses:
            columns[column_name] = 8.0
        return _Stream(op, columns, owners, sorted_on, uses, max(est_rows, 1.0))

    def _select_delta_rows(
        self, stored, restrictions, minmax_ranges
    ) -> Tuple[Tuple[Tuple[int, np.ndarray], ...], int]:
        """Per delta run, the row positions surviving the scan's
        count-table restrictions and zone-map ranges (the same superset
        semantics as the base selection: the residual predicate still
        runs after the merge).

        BDCC restrictions are applied per row over the run's zone tags —
        mirroring :meth:`~repro.core.bdcc_table.BDCCTable.entries_matching`
        on the key prefixes — so delta rows binned into brand-new zones
        (absent from the base count table) are still kept when their bins
        match.  Zone-map ranges prune via per-run MinMax blocks.
        """
        delta = stored.delta
        bdcc = stored.bdcc
        selected = []
        total = 0
        for run_index, run in enumerate(delta.runs):
            keep = ~run.deleted
            if bdcc is not None and restrictions and run.keys is not None:
                shift = np.uint64(bdcc.total_bits - bdcc.granularity)
                keep &= bdcc.restriction_mask(run.keys >> shift, restrictions)
            for column, low, high in minmax_ranges:
                block_rows = stored.page_model.rows_per_page(
                    stored.stored_bytes_per_value(column)
                )
                index = run.minmax_for(column, block_rows)
                keep_blocks = index.blocks_overlapping(low, high)
                if keep_blocks.all():
                    continue
                block_of_row = np.arange(run.num_rows) // index.block_rows
                keep &= keep_blocks[block_of_row]
            sel = np.flatnonzero(keep)
            total += len(sel)
            selected.append((run_index, sel))
        return tuple(selected), total

    def _scan_selectivity(self, stored, prefix: str, predicate: Optional[Expr]) -> float:
        """Predicate selectivity against one stored table: range
        conjuncts use the column's actual min/max (zone-map statistics),
        everything else falls back to predicate-shape heuristics."""
        if predicate is None:
            return 1.0
        sel = 1.0
        range_cols: Set[str] = set()
        for column, (low, high) in column_ranges(predicate).items():
            base = strip_prefix(column, prefix)
            if base not in stored.columns or stored.stored_rows == 0:
                continue
            if stored.columns[base].dtype.kind not in "iuf":
                continue
            index = stored.minmax_for(base)
            gmin, gmax = float(index.mins.min()), float(index.maxs.max())
            lo = gmin if low is None else max(float(low), gmin)
            hi = gmax if high is None else min(float(high), gmax)
            if hi < lo:
                frac = 0.0
            elif gmax <= gmin:
                frac = 1.0
            elif low is not None and high is not None and low == high:
                frac = 1.0 / max(gmax - gmin, 1.0)  # point lookup
            else:
                frac = (hi - lo) / (gmax - gmin)
            sel *= min(max(frac, 1e-4), 1.0)
            range_cols.add(column)
        for conj in conjuncts(predicate):
            if conj.columns() & range_cols:
                continue
            sel *= _selectivity(conj)
        return sel

    # ------------------------------------------------------------- filter
    def _lower_filter(self, node: FilterNode) -> _Stream:
        inp = self._lower(node.input)
        op = PhysicalFilter(inp.op, node.predicate)
        est = inp.est_rows * _selectivity(node.predicate)
        return _Stream(op, dict(inp.columns), dict(inp.owners), inp.sorted_on,
                       list(inp.uses), max(est, 1.0))

    # ------------------------------------------------------------ project
    def _lower_project(self, node: ProjectNode) -> _Stream:
        inp = self._lower(node.input)
        op = PhysicalProject(inp.op, node.exprs)
        columns: Dict[str, float] = {}
        owners: Dict[str, str] = {}
        for name, expr in node.exprs:
            if isinstance(expr, Col):
                columns[name] = inp.columns.get(expr.name, 8.0)
                if expr.name in inp.owners:
                    owners[name] = inp.owners[expr.name]
            else:
                columns[name] = 8.0
        for use in inp.uses:
            columns[use.column] = 8.0
        sorted_on = inp.sorted_on if all(c in columns for c in inp.sorted_on) else ()
        return _Stream(op, columns, owners, sorted_on, list(inp.uses), inp.est_rows)

    # --------------------------------------------------------------- join
    def _lower_join(self, node: JoinNode) -> _Stream:
        left = self._lower(node.left)
        right = self._lower(node.right)
        k = len(node.left_cols)

        merge_ok = (
            self.options.enable_merge
            and node.how in ("inner", "semi", "anti")
            and node.residual is None
            and len(left.sorted_on) >= k
            and len(right.sorted_on) >= k
            and tuple(left.sorted_on[:k]) == tuple(node.left_cols)
            and tuple(right.sorted_on[:k]) == tuple(node.right_cols)
        )
        pairs: List[Tuple[StreamUse, StreamUse]] = []
        if not merge_ok and self.options.enable_sandwich:
            pairs = self._match_uses(left, right, node)

        est = self._join_estimate(node, left, right)

        if merge_ok:
            op = MergeJoin(
                left.op, right.op, node.left_cols, node.right_cols,
                node.how, node.residual,
                rationale="both inputs ordered on the join keys",
            )
            return self._join_stream(node, op, left, right, probe="left", est=est)

        # build on the (estimated) smaller side for inner joins; outer/
        # semi/anti always build the right side (results assemble left)
        if node.how == "inner":
            build = "left" if left.est_bytes() < right.est_bytes() else "right"
        else:
            build = "right"

        granted: List[Tuple[StreamUse, StreamUse, int]] = []
        budget = self.options.max_sandwich_bits
        total_bits = 0
        for left_use, right_use in pairs:
            g = min(left_use.bits, right_use.bits, max(budget, 0))
            budget -= g
            total_bits += g
            granted.append((left_use, right_use, g))

        if granted and total_bits > 0:
            op = SandwichJoin(
                left.op, right.op, node.left_cols, node.right_cols,
                node.how, node.residual, build_side=build,
                pairs=tuple(granted),
                rationale=(
                    "co-clustered via "
                    + "+".join(p[0].dimension.name for p in granted)
                    + f" @{total_bits} bits, build={build}"
                ),
            )
        else:
            op = HashJoin(
                left.op, right.op, node.left_cols, node.right_cols,
                node.how, node.residual, build_side=build,
                rationale=f"build={build}",
            )
        probe = "right" if build == "left" else "left"
        return self._join_stream(node, op, left, right, probe=probe, est=est)

    def _join_estimate(self, node: JoinNode, left: _Stream, right: _Stream) -> float:
        if node.how in ("semi", "anti"):
            return max(left.est_rows * 0.5, 1.0)
        est = max(left.est_rows, right.est_rows)
        la = {left.owners.get(c) for c in node.left_cols}
        ra = {right.owners.get(c) for c in node.right_cols}
        if len(la) == 1 and len(ra) == 1 and None not in la and None not in ra:
            l_alias, r_alias = la.pop(), ra.pop()
            for edge in self.analysis.edges:
                aliases = {edge.child_alias, edge.parent_alias}
                if aliases != {l_alias, r_alias}:
                    continue
                child, parent = (
                    (left, right) if edge.child_alias == l_alias else (right, left)
                )
                parent_scan = self.analysis.scans[edge.parent_alias]
                parent_rows = max(self.pdb.table(parent_scan.table).logical_rows, 1)
                est = child.est_rows * (parent.est_rows / parent_rows)
                break
        if node.residual is not None:
            est *= _selectivity(node.residual)
        if node.how == "left":
            est = max(est, left.est_rows)
        return max(est, 1.0)

    def _join_stream(
        self, node: JoinNode, op: PhysicalOp, left: _Stream, right: _Stream,
        probe: str, est: float,
    ) -> _Stream:
        if node.how in ("semi", "anti"):
            return _Stream(op, dict(left.columns), dict(left.owners),
                           left.sorted_on, list(left.uses), est)
        columns = dict(left.columns)
        for name, width in right.columns.items():
            columns.setdefault(name, width)
        owners = dict(left.owners)
        owners.update(right.owners)
        if node.how == "left":
            # right-side uses are not valid on unmatched rows; drop them
            return _Stream(op, columns, owners, left.sorted_on, list(left.uses), est)
        sorted_on = left.sorted_on if probe == "left" else right.sorted_on
        if isinstance(op, MergeJoin):
            sorted_on = left.sorted_on
        uses = list(left.uses) + list(right.uses)
        return _Stream(op, columns, owners, sorted_on, uses, est)

    # ------------------------------------------------------ use matching
    def _use_anchors(self, stream: _Stream, join_cols: Tuple[str, ...], other_cols: Tuple[str, ...]):
        """Dimension uses of ``stream`` whose group is determined by (a
        subset of) the join columns, with their co-clustering identity.

        Two flavours per Section II of the paper:

        * *via a foreign key*: the join columns cover an outgoing FK's
          child columns and the use's path starts with that FK — the key
          value determines the referenced row, hence the use's bins.  The
          anchor identity is (dimension, path-after-the-FK, referenced
          table+key, the other side's columns carrying that key).
        * *the table itself hosts the key*: the join columns cover the
          table's primary key — the row is fixed, every carried use
          qualifies, identified by its full path.

        Anchors with equal identities on both sides are co-clustered even
        when the two tables are not FK-connected at all (the paper's
        tables A and C sharing D1), which covers fact-fact self joins
        (Q21) and composite-key joins (LINEITEM-PARTSUPP in Q9).
        """
        schema = self.pdb.schema
        by_alias: Dict[str, List[int]] = {}
        for pos, column in enumerate(join_cols):
            alias = stream.owners.get(column)
            if alias is not None:
                by_alias.setdefault(alias, []).append(pos)
        anchors = []
        for alias, positions in by_alias.items():
            scan = self.analysis.scans.get(alias)
            if scan is None:
                continue
            base_to_other = {
                strip_prefix(join_cols[p], scan.prefix): other_cols[p] for p in positions
            }
            base_to_self = {
                strip_prefix(join_cols[p], scan.prefix): join_cols[p] for p in positions
            }
            table = schema.table(scan.table)
            # via an outgoing foreign key covered by the join columns
            for fk in schema.outgoing_foreign_keys(scan.table):
                if not set(fk.child_columns) <= set(base_to_other):
                    continue
                own = tuple(base_to_self[c] for c in fk.child_columns)
                carrier = tuple(base_to_other[c] for c in fk.child_columns)
                for use in stream.uses_for_alias(alias):
                    if use.path and use.path[0] == fk.name:
                        identity = (
                            use.dimension.name, use.path[1:],
                            fk.parent_table, fk.parent_columns,
                        )
                        anchors.append((identity, own, carrier, use))
            # the table itself is the referenced side (join on its PK)
            if table.primary_key and set(table.primary_key) <= set(base_to_other):
                own = tuple(base_to_self[c] for c in table.primary_key)
                carrier = tuple(base_to_other[c] for c in table.primary_key)
                for use in stream.uses_for_alias(alias):
                    identity = (
                        use.dimension.name, use.path,
                        scan.table, tuple(table.primary_key),
                    )
                    anchors.append((identity, own, carrier, use))
        return anchors

    def _match_uses(
        self, left: _Stream, right: _Stream, node: JoinNode
    ) -> List[Tuple[StreamUse, StreamUse]]:
        """Pairs of co-clustered dimension uses across the join inputs.

        A left anchor and a right anchor match when they denote the same
        dimension over the same residual path anchored at the same
        referenced key, *and* the key travels over the same join columns
        — then equal join keys imply equal dimension bins on both sides,
        the precondition for sandwiched (pre-grouped) execution [3].
        """
        left_anchors = self._use_anchors(left, node.left_cols, node.right_cols)
        right_anchors = self._use_anchors(right, node.right_cols, node.left_cols)
        pairs: List[Tuple[StreamUse, StreamUse]] = []
        seen = set()
        for l_identity, l_own, l_carrier, left_use in left_anchors:
            for r_identity, r_own, r_carrier, right_use in right_anchors:
                if l_identity != r_identity:
                    continue
                # the key must travel over the same join-column pairing
                if l_carrier != r_own or r_carrier != l_own:
                    continue
                if l_identity in seen:
                    continue
                seen.add(l_identity)
                pairs.append((left_use, right_use))
                break
        return pairs

    # ------------------------------------------------------------ groupby
    def _lower_groupby(self, node: GroupByNode) -> _Stream:
        inp = self._lower(node.input)
        streaming = bool(node.keys) and self._streaming_ok(inp, node.keys)
        partition_uses: List[StreamUse] = []
        if not streaming and node.keys and self.options.enable_sandwich:
            partition_uses = self._partition_uses(inp, node.keys)

        # recorded on the operator for the fragmenter's partial-agg cost
        # rule (estimated groups vs input rows); the estimate itself is
        # this stream's est_rows, computed the same way below
        est = 1.0 if not node.keys else min(
            inp.est_rows, max(inp.est_rows ** 0.75, 1.0), self._group_domain(inp, node.keys)
        )
        out_uses: List[StreamUse] = []
        if streaming:
            op = StreamAgg(
                inp.op, node.keys, node.aggs,
                rationale="input ordered on (a determinant of) the keys",
                est_groups=est, est_input_rows=inp.est_rows,
            )
        elif partition_uses:
            granted: List[Tuple[StreamUse, int]] = []
            budget = self.options.max_sandwich_bits
            total_bits = 0
            for use in partition_uses:
                g = min(use.bits, max(budget - total_bits, 0))
                total_bits += g
                granted.append((use, g))
            op = SandwichAgg(
                inp.op, node.keys, node.aggs,
                partition_uses=tuple(granted),
                rationale=(
                    "keys determine "
                    + "+".join(u.dimension.name for u, _ in granted)
                    + f" @{total_bits} bits"
                ),
                est_groups=est, est_input_rows=inp.est_rows,
            )
            out_uses = [u for u, _ in granted]
        else:
            op = HashAgg(
                inp.op, node.keys, node.aggs,
                est_groups=est, est_input_rows=inp.est_rows,
            )

        columns: Dict[str, float] = {}
        owners: Dict[str, str] = {}
        for key in node.keys:
            columns[key] = inp.columns.get(key, 8.0)
            if key in inp.owners:
                owners[key] = inp.owners[key]
        for spec in node.aggs:
            columns[spec.name] = 8.0
        for use in out_uses:
            columns[use.column] = 8.0
        return _Stream(op, columns, owners, tuple(node.keys), out_uses, est)

    def _group_domain(self, stream: _Stream, keys: Tuple[str, ...]) -> float:
        """Upper bound on the number of groups from key domains: a
        single grouping key that is a table's primary key or a
        single-column foreign key cannot have more distinct values than
        the (referenced) table has rows."""
        if len(keys) != 1:
            return float("inf")
        alias = stream.owners.get(keys[0])
        scan = self.analysis.scans.get(alias) if alias is not None else None
        if scan is None:
            return float("inf")
        base = strip_prefix(keys[0], scan.prefix)
        schema = self.pdb.schema
        if tuple(schema.table(scan.table).primary_key) == (base,):
            return float(self.pdb.table(scan.table).logical_rows)
        for fk in schema.outgoing_foreign_keys(scan.table):
            if fk.child_columns == [base] or tuple(fk.child_columns) == (base,):
                return float(self.pdb.table(fk.parent_table).logical_rows)
        return float("inf")

    def _streaming_ok(self, stream: _Stream, keys: Tuple[str, ...]) -> bool:
        """Can the aggregation stream over the input's sort order?

        Either the keys literally are a prefix of the sort order, or the
        leading sort column is a single-column primary key among the keys
        and every other key is functionally determined by it — owned by
        the same scan, or by a scan reachable from it over the query's
        foreign-key joins (the PK scheme's Q18: LINEITEM sorted on
        ``o_orderkey`` streams a group-by over order + customer columns).
        """
        if tuple(stream.sorted_on[: len(keys)]) == tuple(keys):
            return True
        if not stream.sorted_on:
            return False
        lead = stream.sorted_on[0]
        if lead not in keys:
            return False
        alias = stream.owners.get(lead)
        if alias is None:
            return False
        scan = self.analysis.scans.get(alias)
        if scan is None:
            return False
        pk = self.pdb.schema.table(scan.table).primary_key
        if tuple(pk) != (strip_prefix(lead, scan.prefix),):
            return False
        # aliases whose rows (hence columns) the lead key determines
        determined = {alias}
        frontier = [alias]
        while frontier:
            current = frontier.pop()
            for edge in self.analysis.edges:
                if edge.child_alias == current and edge.parent_alias not in determined:
                    determined.add(edge.parent_alias)
                    frontier.append(edge.parent_alias)
        return all(stream.owners.get(k) in determined for k in keys)

    def _partition_uses(self, stream: _Stream, keys: Sequence[str]) -> List[StreamUse]:
        """Stream uses whose group id is functionally determined by the
        grouping keys: the keys contain the child columns of the use's
        leading foreign key, or the primary key of the use's own table.

        This is the paper's Q13/Q18 effect: grouping ORDERS by
        ``o_custkey``-determined keys (or LINEITEM by ``l_orderkey``)
        pre-partitions the aggregation along the carried D_NATION /
        D_DATE groups."""
        schema = self.pdb.schema
        by_alias: Dict[str, Set[str]] = {}
        for key in keys:
            alias = stream.owners.get(key)
            if alias is not None:
                by_alias.setdefault(alias, set()).add(key)
        result: List[StreamUse] = []
        seen = set()
        for alias, owned in by_alias.items():
            scan = self.analysis.scans.get(alias)
            if scan is None:
                continue
            base_cols = {strip_prefix(c, scan.prefix) for c in owned}
            table = schema.table(scan.table)
            pk_covered = bool(table.primary_key) and set(table.primary_key) <= base_cols
            covered_fks = {
                fk.name
                for fk in schema.outgoing_foreign_keys(scan.table)
                if set(fk.child_columns) <= base_cols
            }
            for use in stream.uses_for_alias(alias):
                if use.instance_key() in seen:
                    continue
                if pk_covered or (use.path and use.path[0] in covered_fks):
                    result.append(use)
                    seen.add(use.instance_key())
        return result

    # --------------------------------------------------------- sort/limit
    def _lower_sort(self, node: SortNode) -> _Stream:
        inp = self._lower(node.input)
        op = Sort(inp.op, node.keys)
        sorted_on = tuple(c for c, asc in node.keys) if all(asc for _, asc in node.keys) else ()
        return _Stream(op, dict(inp.columns), dict(inp.owners), sorted_on,
                       list(inp.uses), inp.est_rows)

    def _lower_limit(self, node: LimitNode) -> _Stream:
        inp = self._lower(node.input)
        op = Limit(inp.op, node.count)
        return _Stream(op, dict(inp.columns), dict(inp.owners), inp.sorted_on,
                       list(inp.uses), min(inp.est_rows, float(node.count)))


def lower(
    pdb: PhysicalDatabase,
    plan,
    options: Optional[ExecutionOptions] = None,
) -> PhysicalPlan:
    """Lower a logical plan against one physical database.

    Pure: reads metadata only, charges nothing, and is deterministic —
    the same (plan, scheme, options) always yields an equal physical
    plan."""
    node = plan.node if isinstance(plan, Plan) else plan
    return _Lowering(pdb, options or ExecutionOptions()).lower(node)
