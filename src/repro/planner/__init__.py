"""Logical plans, plan analysis, propagation, lowering and execution."""

from .analysis import FKEdge, PlanAnalysis, analyse_plan
from .executor import ExecutionOptions, Executor, QueryResult
from .explain import explain, format_physical_plan, format_plan
from .lowering import PhysicalPlan, lower
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    scan,
    walk,
)
from .predicates import column_ranges, conjuncts
from .propagation import ScanRestrictions, compute_restrictions

__all__ = [
    "FKEdge",
    "PlanAnalysis",
    "analyse_plan",
    "ExecutionOptions",
    "Executor",
    "QueryResult",
    "explain",
    "format_physical_plan",
    "format_plan",
    "PhysicalPlan",
    "lower",
    "FilterNode",
    "GroupByNode",
    "JoinNode",
    "LimitNode",
    "Plan",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "SortNode",
    "scan",
    "walk",
    "column_ranges",
    "conjuncts",
    "ScanRestrictions",
    "compute_restrictions",
]
