"""Logical plans, plan analysis, propagation rewrite and the executor."""

from .analysis import FKEdge, PlanAnalysis, analyse_plan
from .executor import ExecutionOptions, Executor, QueryResult
from .explain import explain, format_plan
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    scan,
    walk,
)
from .predicates import column_ranges, conjuncts
from .propagation import ScanRestrictions, compute_restrictions

__all__ = [
    "FKEdge",
    "PlanAnalysis",
    "analyse_plan",
    "ExecutionOptions",
    "Executor",
    "QueryResult",
    "explain",
    "format_plan",
    "FilterNode",
    "GroupByNode",
    "JoinNode",
    "LimitNode",
    "Plan",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "SortNode",
    "scan",
    "walk",
    "column_ranges",
    "conjuncts",
    "ScanRestrictions",
    "compute_restrictions",
]
