"""Static plan analysis: aliases, column ownership, FK edges, demands.

Shared by selection propagation (which needs the query's join graph) and
the executor (which needs per-scan column demands so scans only read —
and charge IO for — referenced columns, as a column store does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..catalog import Schema
from ..execution.expressions import Col
from .logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    walk,
)

__all__ = ["FKEdge", "PlanAnalysis", "analyse_plan", "strip_prefix"]


def strip_prefix(column: str, prefix: str) -> str:
    if prefix and column.startswith(prefix):
        return column[len(prefix):]
    return column


@dataclass(frozen=True)
class FKEdge:
    """A join in the plan that follows a declared foreign key."""

    child_alias: str
    parent_alias: str
    fk_name: str
    how: str          # join kind
    child_is_left: bool

    def filters_child(self) -> bool:
        """May parent-side predicates restrict the child's scan?

        Inner joins: yes (both sides filtered).  Semi joins: yes on both
        sides — a probed (right-side) child row whose parent fails the
        parent's predicates can only match left rows that are absent
        anyway.  Left/anti joins: only when the child is on the
        non-preserved right side; rows dropped there could only have
        matched preserved-side rows that are themselves filtered out, so
        null-extension / anti-survival is unchanged."""
        if self.how in ("inner", "semi"):
            return True
        return not self.child_is_left  # left, anti


@dataclass
class PlanAnalysis:
    scans: Dict[str, ScanNode] = field(default_factory=dict)   # alias -> node
    edges: List[FKEdge] = field(default_factory=list)
    #: per-alias set of base (unprefixed) columns the query reads;
    #: populated by the demand pass.
    demands: Dict[str, Set[str]] = field(default_factory=dict)

    def edge_from(self, child_alias: str, fk_name: str) -> Optional[FKEdge]:
        for edge in self.edges:
            if edge.child_alias == child_alias and edge.fk_name == fk_name:
                return edge
        return None

    def usable_edges_from(self, child_alias: str) -> List[FKEdge]:
        return [
            e for e in self.edges if e.child_alias == child_alias and e.filters_child()
        ]


def _output_owners(node: PlanNode, schema: Schema) -> Dict[str, str]:
    """Column name -> owning scan alias, for this node's output."""
    if isinstance(node, ScanNode):
        table = schema.table(node.table)
        return {node.prefix + c: node.alias for c in table.column_names}
    if isinstance(node, (FilterNode, SortNode, LimitNode)):
        return _output_owners(node.input, schema)
    if isinstance(node, ProjectNode):
        inner = _output_owners(node.input, schema)
        out: Dict[str, str] = {}
        for name, expr in node.exprs:
            if isinstance(expr, Col) and expr.name == name and name in inner:
                out[name] = inner[name]
        return out
    if isinstance(node, JoinNode):
        left = _output_owners(node.left, schema)
        if node.how in ("semi", "anti"):
            return left
        right = _output_owners(node.right, schema)
        merged = dict(left)
        merged.update(right)
        return merged
    if isinstance(node, GroupByNode):
        inner = _output_owners(node.input, schema)
        return {k: inner[k] for k in node.keys if k in inner}
    raise TypeError(f"unknown node {type(node).__name__}")


def _collect_edges(node: PlanNode, schema: Schema, analysis: PlanAnalysis) -> None:
    for n in walk(node):
        if isinstance(n, ScanNode):
            if n.alias in analysis.scans:
                raise ValueError(f"duplicate scan alias {n.alias!r} in plan")
            analysis.scans[n.alias] = n
    for n in walk(node):
        if not isinstance(n, JoinNode):
            continue
        left_owners = _output_owners(n.left, schema)
        right_owners = _output_owners(n.right, schema)
        lals = {left_owners.get(c) for c in n.left_cols}
        rals = {right_owners.get(c) for c in n.right_cols}
        if len(lals) != 1 or len(rals) != 1 or None in lals or None in rals:
            continue
        l_alias, r_alias = lals.pop(), rals.pop()
        l_scan, r_scan = analysis.scans[l_alias], analysis.scans[r_alias]
        l_base = tuple(strip_prefix(c, l_scan.prefix) for c in n.left_cols)
        r_base = tuple(strip_prefix(c, r_scan.prefix) for c in n.right_cols)
        # try left = child
        fk = schema.find_foreign_key(l_scan.table, l_base)
        if fk is not None and fk.parent_table == r_scan.table:
            pairs = dict(zip(fk.child_columns, fk.parent_columns))
            if all(pairs.get(lc) == rc for lc, rc in zip(l_base, r_base)):
                analysis.edges.append(FKEdge(l_alias, r_alias, fk.name, n.how, True))
                continue
        # try right = child
        fk = schema.find_foreign_key(r_scan.table, r_base)
        if fk is not None and fk.parent_table == l_scan.table:
            pairs = dict(zip(fk.child_columns, fk.parent_columns))
            if all(pairs.get(rc) == lc for rc, lc in zip(r_base, l_base)):
                analysis.edges.append(FKEdge(r_alias, l_alias, fk.name, n.how, False))


def _demand(node: PlanNode, needed: Optional[Set[str]], schema: Schema, analysis: PlanAnalysis) -> None:
    """Record, per scan, which base columns the query requires."""
    if isinstance(node, ScanNode):
        table = schema.table(node.table)
        all_cols = {node.prefix + c for c in table.column_names}
        wanted = all_cols if needed is None else (needed & all_cols)
        if node.predicate is not None:
            wanted = set(wanted) | (node.predicate.columns() & all_cols)
        base = {strip_prefix(c, node.prefix) for c in wanted}
        analysis.demands.setdefault(node.alias, set()).update(base)
        return
    if isinstance(node, FilterNode):
        extra = node.predicate.columns()
        _demand(node.input, None if needed is None else needed | extra, schema, analysis)
        return
    if isinstance(node, ProjectNode):
        wanted: Set[str] = set()
        for name, expr in node.exprs:
            if needed is None or name in needed:
                wanted |= expr.columns()
        _demand(node.input, wanted, schema, analysis)
        return
    if isinstance(node, JoinNode):
        residual_cols = node.residual.columns() if node.residual is not None else set()
        down = None if needed is None else needed | set(node.left_cols) | set(node.right_cols) | residual_cols
        _demand(node.left, down, schema, analysis)
        _demand(node.right, down, schema, analysis)
        return
    if isinstance(node, GroupByNode):
        wanted = set(node.keys)
        for spec in node.aggs:
            if spec.expr is not None:
                wanted |= spec.expr.columns()
        _demand(node.input, wanted, schema, analysis)
        return
    if isinstance(node, SortNode):
        extra = {c for c, _ in node.keys}
        _demand(node.input, None if needed is None else needed | extra, schema, analysis)
        return
    if isinstance(node, LimitNode):
        _demand(node.input, needed, schema, analysis)
        return
    raise TypeError(f"unknown node {type(node).__name__}")


def analyse_plan(node: PlanNode, schema: Schema) -> PlanAnalysis:
    """Aliases, FK edges and per-scan column demands of one plan."""
    analysis = PlanAnalysis()
    _collect_edges(node, schema, analysis)
    _demand(node, None, schema, analysis)
    return analysis
