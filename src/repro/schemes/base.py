"""Physical schemes: how a logical database is laid out on disk.

The paper's evaluation compares three configurations of the *same*
system: Plain (load order, no indexing), PK (primary-key sorted — the
classical merge-join-friendly layout) and BDCC (advisor-designed
co-clustering).  A :class:`PhysicalScheme` materialises a
:class:`PhysicalDatabase`; the executor consumes the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..catalog import Schema
from ..core.bdcc_table import BDCCTable
from ..storage.database import Database
from ..storage.pages import PageModel
from ..storage.stored_table import StoredTable

__all__ = ["PhysicalDatabase", "PhysicalScheme"]


@dataclass
class PhysicalDatabase:
    """A logical database materialised under one physical scheme.

    ``replicas`` optionally holds additional physical copies of a table
    clustered on different dimension subsets (the paper's future-work
    direction (ii)); the executor picks, per scan, the copy whose groups
    the query's restrictions prune hardest.
    """

    scheme_name: str
    database: Database
    stored: Dict[str, StoredTable]
    replicas: Dict[str, list] = field(default_factory=dict)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    def bdcc_tables(self) -> Dict[str, BDCCTable]:
        return {
            name: table.bdcc for name, table in self.stored.items() if table.bdcc is not None
        }

    def table(self, name: str) -> StoredTable:
        return self.stored[name]

    def stored_copies(self, name: str):
        """Every physical copy of a table: the primary plus replicas.
        The update path maintains delta state on each."""
        yield self.stored[name]
        for copy in self.replicas.get(name, ()):
            yield copy

    @property
    def epoch(self) -> int:
        """Monotonic update counter over all stored tables (primary and
        replica copies); plan caches key on it so no cached plan survives
        a commit or compaction."""
        total = sum(t.epoch for t in self.stored.values())
        for copies in self.replicas.values():
            total += sum(t.epoch for t in copies)
        return total


class PhysicalScheme:
    """Base class; subclasses order rows and attach metadata per table."""

    name = "abstract"

    def __init__(self, page_model: Optional[PageModel] = None):
        self.page_model = page_model or PageModel()

    def build(self, db: Database) -> PhysicalDatabase:
        stored: Dict[str, StoredTable] = {}
        for table_name in db.loaded_tables:
            stored[table_name] = self.build_table(db, table_name)
        return PhysicalDatabase(self.name, db, stored, self.build_replicas(db))

    def build_replicas(self, db: Database) -> Dict[str, list]:
        """Additional physical copies per table; none by default."""
        return {}

    def build_table(self, db: Database, table_name: str) -> StoredTable:
        raise NotImplementedError

    # ------------------------------------------------------------ helpers
    def _materialise(
        self,
        db: Database,
        table_name: str,
        row_source: Optional[np.ndarray],
        sort_columns=(),
        bdcc=None,
    ) -> StoredTable:
        data = db.table_data(table_name)
        if row_source is None:
            columns = {name: values for name, values in data.items()}
        else:
            columns = {name: values[row_source] for name, values in data.items()}
        return StoredTable(
            name=table_name,
            definition=db.schema.table(table_name),
            columns=columns,
            page_model=self.page_model,
            sort_columns=tuple(sort_columns),
            bdcc=bdcc,
        )
