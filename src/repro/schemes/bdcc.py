"""The BDCC scheme: advisor-designed co-clustered layout.

Runs Algorithm 2 (the :class:`~repro.core.advisor.SchemaAdvisor`) over
the declared DDL and clusters every table with at least one dimension use
via Algorithm 1; tables without uses (e.g. TPC-H REGION) stay in load
order.  The resulting :class:`StoredTable` carries the
:class:`~repro.core.bdcc_table.BDCCTable` metadata the executor needs for
pushdown, propagation and sandwiching.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.advisor import AdvisorConfig, SchemaAdvisor, SchemaDesign
from ..core.bdcc_table import BDCCTable
from ..storage.database import Database
from ..storage.pages import PageModel
from ..storage.stored_table import StoredTable
from .base import PhysicalDatabase, PhysicalScheme

__all__ = ["BDCCScheme"]


class BDCCScheme(PhysicalScheme):
    """The advisor-designed scheme.

    ``replica_uses`` opts into the paper's future-work replication: per
    table, a list of *use-index subsets* of the advisor's design — each
    subset becomes an extra physical copy clustered on just those
    dimension uses (e.g. a LINEITEM replica on the part/supplier
    dimensions next to the primary date/customer clustering).  The
    executor chooses the best copy per scan.
    """

    name = "bdcc"

    def __init__(
        self,
        advisor_config: Optional[AdvisorConfig] = None,
        page_model: Optional[PageModel] = None,
        replica_uses: Optional[Dict[str, list]] = None,
    ):
        super().__init__(page_model)
        self.advisor_config = advisor_config or AdvisorConfig()
        self.replica_uses = replica_uses or {}
        self.design: Optional[SchemaDesign] = None
        self._built: Dict[str, BDCCTable] = {}

    def build(self, db: Database) -> PhysicalDatabase:
        advisor = SchemaAdvisor(db.schema, self.advisor_config)
        self.design = advisor.design(db)
        self._built = advisor.build(db, self.design)
        return super().build(db)

    def build_table(self, db: Database, table_name: str) -> StoredTable:
        bdcc = self._built.get(table_name)
        if bdcc is None:
            return self._materialise(db, table_name, row_source=None)
        return self._materialise(
            db, table_name, row_source=bdcc.row_source, bdcc=bdcc
        )

    def build_replicas(self, db: Database) -> Dict[str, list]:
        from ..core.bdcc_table import build_bdcc_table

        replicas: Dict[str, list] = {}
        for table_name, subsets in self.replica_uses.items():
            base_uses = self.design.uses_for(table_name) if self.design else []
            if not base_uses:
                raise ValueError(
                    f"cannot replicate {table_name!r}: no dimension uses"
                )
            copies = []
            for subset in subsets:
                uses = [base_uses[i] for i in subset]
                bdcc = build_bdcc_table(db, table_name, uses, self.advisor_config.build)
                copies.append(
                    self._materialise(
                        db, table_name, row_source=bdcc.row_source, bdcc=bdcc
                    )
                )
            replicas[table_name] = copies
        return replicas
