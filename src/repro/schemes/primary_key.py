"""The PK scheme: every table sorted on its primary key.

The paper's second baseline: LINEITEM-ORDERS and PARTSUPP-PART share
major key prefixes, so those joins become merge joins, and Q18's
aggregation on ``l_orderkey`` streams.  But "many attributes that queries
select on do not group the primary key": no selection pushdown, no
co-locality for the remaining tables.
"""

from __future__ import annotations

import numpy as np

from ..storage.database import Database
from ..storage.stored_table import StoredTable
from .base import PhysicalScheme

__all__ = ["PrimaryKeyScheme"]


class PrimaryKeyScheme(PhysicalScheme):
    name = "pk"

    def build_table(self, db: Database, table_name: str) -> StoredTable:
        definition = db.schema.table(table_name)
        pk = definition.primary_key
        if not pk:
            return self._materialise(db, table_name, row_source=None)
        data = db.table_data(table_name)
        # lexsort: last key is primary
        order = np.lexsort(tuple(data[c] for c in reversed(pk)))
        return self._materialise(db, table_name, row_source=order, sort_columns=pk)
