"""Physical schemes compared in the paper: Plain, PK, BDCC."""

from .base import PhysicalDatabase, PhysicalScheme
from .bdcc import BDCCScheme
from .plain import PlainScheme
from .primary_key import PrimaryKeyScheme

__all__ = [
    "PhysicalDatabase",
    "PhysicalScheme",
    "BDCCScheme",
    "PlainScheme",
    "PrimaryKeyScheme",
]
