"""The Plain scheme: tables stored in load (generation) order.

The paper's baseline "plain database without any indexing": full scans
everywhere, hash joins everywhere, no co-locality.  (MinMax indices still
exist — Vectorwise always builds them — but random load order gives them
nothing to prune.)
"""

from __future__ import annotations

from ..storage.database import Database
from ..storage.stored_table import StoredTable
from .base import PhysicalScheme

__all__ = ["PlainScheme"]


class PlainScheme(PhysicalScheme):
    name = "plain"

    def build_table(self, db: Database, table_name: str) -> StoredTable:
        return self._materialise(db, table_name, row_source=None)
