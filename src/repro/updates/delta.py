"""Delta stores: the write side of merge-on-read updates.

A :class:`DeltaStore` hangs off a :class:`~repro.storage.stored_table.StoredTable`
and holds everything committed since the table was built (or last
compacted):

* **insert runs** — one :class:`DeltaRun` per committed batch, its rows
  ordered the way the table's scheme orders storage (generation order for
  Plain, primary-key order for PK, ``_bdcc_``-key order for BDCC).  BDCC
  runs additionally carry the per-row clustering keys: new tuples are
  binned with the table's *existing* dimensions — out-of-domain key
  values clamp to the nearest bin, the paper's flat-numbering update
  story — so every delta row is tagged with the zone it belongs to and
  pushdown/sandwiching keep working over deltas;
* a **deletion bitmap** over the base storage plus one per run, so
  deletes never rewrite anything either.

Per-run zone maps (:class:`~repro.storage.minmax.MinMaxIndex`, built
lazily like the base table's) let the scan prune delta runs with the same
superset semantics as base blocks.  Reads merge base and deltas through
:class:`~repro.execution.operators.DeltaMergeScan`; compaction
(:mod:`repro.updates.compaction`) folds everything back into the base
layout and resets the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..storage.database import Database
from ..storage.minmax import MinMaxIndex
from ..storage.stored_table import StoredTable

__all__ = ["DeltaRun", "DeltaStore", "ensure_delta", "place_delta_run"]


@dataclass
class DeltaRun:
    """One committed insert batch, rows in scheme storage order."""

    columns: Dict[str, np.ndarray]
    #: full-granularity ``_bdcc_`` keys per row (BDCC tables only).
    keys: Optional[np.ndarray] = None
    #: rows of this run deleted by a later (or the same) commit.
    deleted: np.ndarray = None  # type: ignore[assignment]
    _minmax: Dict[str, MinMaxIndex] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.deleted is None:
            self.deleted = np.zeros(self.num_rows, dtype=bool)

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def live_rows(self) -> int:
        return self.num_rows - int(np.count_nonzero(self.deleted))

    def live_positions(self) -> np.ndarray:
        return np.flatnonzero(~self.deleted)

    def minmax_for(self, column: str, block_rows: int) -> MinMaxIndex:
        """Zone map over this run's values of one column (lazy, like the
        base table's)."""
        index = self._minmax.get(column)
        if index is None:
            index = MinMaxIndex.build(self.columns[column], max(block_rows, 1))
            self._minmax[column] = index
        return index


@dataclass
class DeltaStore:
    """All uncompacted update state of one stored table."""

    #: deletion bitmap over the base storage (stored positions, so
    #: consolidated duplicate regions are marked consistently too).
    base_deleted: np.ndarray
    runs: List[DeltaRun] = field(default_factory=list)

    @property
    def is_dirty(self) -> bool:
        return bool(self.runs) or bool(self.base_deleted.any())

    @property
    def live_delta_rows(self) -> int:
        return sum(run.live_rows for run in self.runs)

    @property
    def total_delta_rows(self) -> int:
        return sum(run.num_rows for run in self.runs)

    @property
    def deleted_base_rows(self) -> int:
        return int(np.count_nonzero(self.base_deleted))


def ensure_delta(stored: StoredTable) -> DeltaStore:
    """The table's delta store, created empty on first write."""
    if stored.delta is None:
        stored.delta = DeltaStore(
            base_deleted=np.zeros(stored.stored_rows, dtype=bool)
        )
    return stored.delta


def place_delta_run(
    stored: StoredTable, db: Database, n_old: int, n_new: int
) -> DeltaRun:
    """Build one scheme-ordered :class:`DeltaRun` for the ``n_new`` rows
    just appended to the logical database (they sit at positions
    ``n_old .. n_old+n_new`` of the db arrays).

    Placement per scheme: BDCC runs are binned into existing zones and
    key-sorted; PK runs are sorted on the primary key; Plain runs keep
    arrival order.
    """
    data = db.table_data(stored.name)
    row_indices = np.arange(n_old, n_old + n_new, dtype=np.int64)
    columns = {name: values[row_indices] for name, values in data.items()}
    if stored.bdcc is not None:
        keys = stored.bdcc.keys_for_rows(db, row_indices)
        order = np.argsort(keys, kind="stable")
        return DeltaRun(
            columns={name: values[order] for name, values in columns.items()},
            keys=keys[order],
        )
    if stored.sort_columns:
        order = np.lexsort(tuple(columns[c] for c in reversed(stored.sort_columns)))
        return DeltaRun(
            columns={name: values[order] for name, values in columns.items()}
        )
    return DeltaRun(columns=columns)
