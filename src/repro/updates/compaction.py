"""Compaction: fold delta state back into the base layout.

A deterministic, per-table policy decides when the merge-on-read overhead
is no longer worth it: once the uncompacted volume (live delta inserts
plus deleted base rows) exceeds a fraction of the live base, the table is
rewritten once — base rows minus deletions merged with the delta runs in
scheme order — and the delta store resets.  The rewrite is charged
through the :class:`~repro.storage.io_model.DiskModel` (read base +
deltas, write the merged table, all sequential), which is the amortized
IO a log-structured engine pays for cheap writes.

BDCC count tables are maintained *incrementally* across the fold
(:meth:`~repro.core.count_table.CountTable.merge_entries`): per-zone
counts gain the delta rows and lose the deleted ones; zone identities
never change — the paper's flat-bin-numbering maintainability argument.
Small-group consolidation is not re-applied (run Algorithm 1 afresh for
that); the compacted table's ``row_source`` becomes the identity since
the merged storage is its own origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.count_table import CountTable
from ..core.histograms import collect_granularity_stats
from ..execution.cost import CostModel
from ..observe.registry import REGISTRY
from ..storage.io_model import DiskModel
from ..storage.stored_table import StoredTable
from .delta import DeltaStore

__all__ = ["CompactionPolicy", "compact_table"]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold a table's deltas back into the base layout.

    ``max_delta_fraction`` is the per-table threshold on
    ``(live delta rows + deleted base rows) / live base rows``; ``None``
    disables compaction entirely (useful for tests that need deltas to
    persist).  Tables with fewer than ``min_delta_rows`` pending rows are
    never compacted — a tiny tail is cheaper to merge at read time than
    to rewrite the table for.
    """

    max_delta_fraction: Optional[float] = 0.2
    min_delta_rows: int = 256

    def should_compact(self, stored: StoredTable) -> bool:
        """Whether ``stored``'s pending delta volume has crossed the
        policy threshold.

        Pure and deterministic: depends only on the table's delta-store
        counters (live delta rows, deleted base rows, live base rows),
        so every physical copy of a table decides independently and the
        same commit history always compacts at the same points —
        which is what lets differential sweeps replay identically."""
        if self.max_delta_fraction is None:
            return False
        delta = stored.delta
        if delta is None or not delta.is_dirty:
            return False
        pending = delta.live_delta_rows + delta.deleted_base_rows
        if pending < self.min_delta_rows:
            return False
        base_live = max(stored.logical_rows - delta.deleted_base_rows, 1)
        return pending / base_live >= self.max_delta_fraction


def _base_logical_rows(stored: StoredTable) -> np.ndarray:
    """Stored positions of the logical base rows, in storage-read order
    (for BDCC: valid count-table entries, skipping consolidated-away
    originals)."""
    if stored.bdcc is not None:
        return stored.bdcc.count_table.rows_for_entries(stored.bdcc.all_entries())
    return np.arange(stored.stored_rows, dtype=np.int64)


def _merged_order(
    stored: StoredTable, base_keys: Optional[np.ndarray], delta: DeltaStore,
    live_base: np.ndarray,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Permutation merging live base rows (first) and live run rows (in
    commit order) into scheme storage order; also the merged BDCC keys."""
    if stored.bdcc is not None:
        pieces = [base_keys]
        for run in delta.runs:
            pieces.append(run.keys[run.live_positions()])
        all_keys = np.concatenate(pieces)
        return np.argsort(all_keys, kind="stable"), all_keys
    if stored.sort_columns:
        merged_cols = {}
        for column in stored.sort_columns:
            pieces = [stored.columns[column][live_base]]
            for run in delta.runs:
                pieces.append(run.columns[column][run.live_positions()])
            merged_cols[column] = np.concatenate(pieces)
        order = np.lexsort(tuple(merged_cols[c] for c in reversed(stored.sort_columns)))
        return order, None
    total = len(live_base) + delta.live_delta_rows
    return np.arange(total, dtype=np.int64), None


def compact_table(
    stored: StoredTable, disk: DiskModel, costs: CostModel
) -> Tuple[float, float]:
    """Rewrite ``stored`` as base ∪ deltas − deleted; returns the charged
    ``(io_seconds, cpu_seconds)``.

    The table's epoch bumps, its zone maps are rebuilt lazily over the
    new storage, and its delta store is cleared.
    """
    delta = stored.delta
    if delta is None or not delta.is_dirty:
        return 0.0, 0.0

    base_rows = _base_logical_rows(stored)
    live_base = base_rows[~delta.base_deleted[base_rows]]
    bdcc = stored.bdcc
    base_keys = bdcc.keys[live_base] if bdcc is not None else None
    order, merged_keys = _merged_order(stored, base_keys, delta, live_base)

    merged_columns = {}
    read_bytes: List[float] = []
    write_bytes: List[float] = []
    for name in stored.columns:
        pieces = [stored.columns[name][live_base]]
        for run in delta.runs:
            pieces.append(run.columns[name][run.live_positions()])
        merged = np.concatenate(pieces)[order]
        merged_columns[name] = merged
        width = stored.stored_bytes_per_value(name)
        read_bytes.append((len(live_base) + delta.live_delta_rows) * width)
        write_bytes.append(len(merged) * width)
    n = len(next(iter(merged_columns.values()))) if merged_columns else 0

    if bdcc is not None:
        merged_keys = merged_keys[order]
        shift = np.uint64(bdcc.total_bits - bdcc.granularity)
        ct = bdcc.count_table
        valid = np.flatnonzero(ct.valid)
        deleted_rows = base_rows[delta.base_deleted[base_rows]]
        removed_keys, removed_counts = np.unique(
            bdcc.keys[deleted_rows] >> shift, return_counts=True
        )
        added: List[np.ndarray] = [
            run.keys[run.live_positions()] >> shift for run in delta.runs
        ]
        added_all = np.concatenate(added) if added else np.zeros(0, dtype=np.uint64)
        added_keys, added_counts = np.unique(added_all, return_counts=True)
        bdcc.count_table = CountTable.merge_entries(
            ct.granularity,
            ct.keys[valid], ct.counts[valid],
            added_keys=added_keys, added_counts=added_counts,
            removed_keys=removed_keys, removed_counts=removed_counts,
        )
        bdcc.keys = merged_keys
        bdcc.row_source = np.arange(n, dtype=np.int64)
        bdcc.logical_rows = n
        bdcc.stats = collect_granularity_stats(merged_keys, bdcc.total_bits)
        # read the key column (RLE, ~1 byte/tuple) and rewrite it too
        read_bytes.append(float(len(live_base) + delta.live_delta_rows))
        write_bytes.append(float(n))

    stored.columns = merged_columns
    stored.invalidate_statistics()
    stored.delta = DeltaStore(base_deleted=np.zeros(n, dtype=bool))
    stored.epoch += 1
    REGISTRY.inc("compactions")
    REGISTRY.inc("epochs_bumped")

    io_seconds = disk.time_for_runs(read_bytes) + disk.time_for_runs(write_bytes)
    cpu_seconds = n * costs.merge_row + n * costs.scan_value * max(len(merged_columns), 1)
    return io_seconds, cpu_seconds
