"""Seventh pillar: the incremental update subsystem.

Delta stores per stored table (:mod:`repro.updates.delta`), the buffered
:class:`UpdateSession` write API (:mod:`repro.updates.session`), and the
deterministic compaction policy (:mod:`repro.updates.compaction`).  Reads
merge base and delta state through
:class:`~repro.execution.operators.DeltaMergeScan`; every commit bumps
the touched tables' epochs so plan caches invalidate.
"""

from .compaction import CompactionPolicy, compact_table
from .delta import DeltaRun, DeltaStore, ensure_delta, place_delta_run
from .session import CommitResult, TableChange, UpdateSession

__all__ = [
    "CompactionPolicy",
    "compact_table",
    "DeltaRun",
    "DeltaStore",
    "ensure_delta",
    "place_delta_run",
    "CommitResult",
    "TableChange",
    "UpdateSession",
]
