"""The write API: buffered inserts/deletes committed atomically.

An :class:`UpdateSession` spans one *logical* database and every physical
database materialised over it — committing once keeps the logical arrays
(what the naive reference evaluator and dimension paths read) and every
scheme's delta stores in step:

.. code-block:: python

    session = UpdateSession(pdb)              # or UpdateSession(plain, pk, bdcc)
    session.insert_rows("orders", new_orders)
    session.insert_rows("lineitem", new_lineitems)
    session.delete_where("lineitem", col("l_orderkey").isin(stale))
    result = session.commit()                 # binning, delta runs, maybe compaction

Commit semantics:

* inserts are applied parents-first (the schema's leaves-first order), so
  dimension paths over foreign keys resolve for rows inserted in the same
  commit; each insert must supply every column of the table, and callers
  keep primary keys unique and foreign keys resolvable;
* deletes run after the inserts (they see this commit's rows) in the
  order declared — delete children before, or together with, their
  parents (the TPC-H RF2 pattern);
* every touched stored table gets its ``epoch`` bumped, its delta runs
  binned into *existing* BDCC zones (out-of-domain keys clamp), and its
  count-table view maintained incrementally — never rebuilt;
* the compaction policy then folds any table whose delta volume crossed
  the threshold, charging the amortized rewrite IO to the commit.

The returned :class:`CommitResult` carries per-scheme simulated cost
(binning CPU + delta-write IO + compaction) — the refresh-stream
"cost of updates" measurement — and the new epoch per physical database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.cost import DEFAULT_COSTS, CostModel
from ..execution.expressions import Expr
from ..execution.metrics import ExecutionMetrics
from ..observe.registry import REGISTRY
from ..schemes.base import PhysicalDatabase
from ..storage.database import Database
from ..storage.io_model import PAPER_SSD, DiskModel
from ..storage.stored_table import StoredTable
from .compaction import CompactionPolicy, compact_table
from .delta import ensure_delta, place_delta_run

__all__ = ["UpdateSession", "CommitResult", "TableChange"]


@dataclass
class TableChange:
    """What one commit did to one stored copy of one table."""

    scheme: str
    table: str
    rows_inserted: int = 0
    rows_deleted: int = 0
    delta_rows: int = 0        # live delta rows after the commit
    compacted: bool = False
    epoch: int = 0


@dataclass
class CommitResult:
    """Outcome of one :meth:`UpdateSession.commit`."""

    inserted: Dict[str, int] = field(default_factory=dict)
    deleted: Dict[str, int] = field(default_factory=dict)
    changes: List[TableChange] = field(default_factory=list)
    #: simulated commit cost per scheme (binning/sorting CPU, delta-write
    #: IO, compaction IO+CPU; compaction also appears on
    #: ``metrics.compaction_seconds``).
    scheme_metrics: Dict[str, ExecutionMetrics] = field(default_factory=dict)
    #: epoch of each physical database after the commit.
    epochs: Dict[str, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def seconds_for(self, scheme: str) -> float:
        metrics = self.scheme_metrics.get(scheme)
        if metrics is None:
            return 0.0
        return metrics.total_seconds + metrics.compaction_seconds

    def compacted_tables(self, scheme: Optional[str] = None) -> List[str]:
        return sorted(
            {
                c.table
                for c in self.changes
                if c.compacted and (scheme is None or c.scheme == scheme)
            }
        )


class UpdateSession:
    """Buffered inserts and deletes over one logical database and any
    number of physical databases built from it."""

    def __init__(
        self,
        *physical_dbs: PhysicalDatabase,
        policy: Optional[CompactionPolicy] = None,
        disk: Optional[DiskModel] = None,
        costs: Optional[CostModel] = None,
    ):
        if not physical_dbs:
            raise ValueError("UpdateSession needs at least one physical database")
        self.pdbs: Tuple[PhysicalDatabase, ...] = tuple(physical_dbs)
        self.db: Database = self.pdbs[0].database
        for pdb in self.pdbs[1:]:
            if pdb.database is not self.db:
                raise ValueError(
                    "all physical databases of one session must share the "
                    "same logical database"
                )
        self.policy = policy or CompactionPolicy()
        self.disk = disk or PAPER_SSD
        self.costs = costs or DEFAULT_COSTS
        self._inserts: List[Tuple[str, Dict[str, np.ndarray]]] = []
        self._deletes: List[Tuple[str, Expr]] = []

    # ------------------------------------------------------------ buffering
    def insert_rows(self, table: str, rows: Dict[str, np.ndarray]) -> None:
        """Queue complete rows for ``table``.

        Args:
            table: a table of the session's schema (checked eagerly;
                unknown names raise here, not at commit).
            rows: column name -> array of equal lengths covering *every*
                column of the table (validated at :meth:`commit`, which
                fails atomically before anything is applied).  Arrays
                are converted with ``np.asarray`` but not copied.

        Callers keep primary keys unique and foreign keys resolvable;
        referenced parents may ride in the *same* commit (inserts apply
        parents-first).  Buffering order is preserved for batches of
        the same table, so commits are deterministic given the call
        sequence."""
        self.db.schema.table(table)  # fail fast on unknown tables
        self._inserts.append((table, {k: np.asarray(v) for k, v in rows.items()}))

    def delete_where(self, table: str, predicate: Expr) -> None:
        """Queue deletion of every row of ``table`` matching
        ``predicate``.

        Args:
            table: a table of the session's schema (checked eagerly).
            predicate: an :class:`~repro.execution.expressions.Expr`
                over the table's *own* (unprefixed) column names; names
                outside the table fail :meth:`commit` validation.

        Deletes run after this commit's inserts — they see rows
        inserted in the same commit — and in declaration order, which
        is how the TPC-H RF2 pattern deletes children before (or with)
        their parents.  A predicate matching nothing leaves epochs and
        plan caches untouched."""
        self.db.schema.table(table)
        self._deletes.append((table, predicate))

    # ------------------------------------------------------------- commit
    def _ordered_inserts(self) -> List[Tuple[str, Dict[str, np.ndarray]]]:
        """Pending inserts, parents before children (batches of the same
        table keep their declaration order)."""
        order = {t: i for i, t in enumerate(self.db.schema.leaves_first_order())}
        indexed = sorted(
            enumerate(self._inserts),
            key=lambda item: (order.get(item[1][0], len(order)), item[0]),
        )
        return [item for _, item in indexed]

    def _charge_insert(
        self, metrics: ExecutionMetrics, stored: StoredTable, n_new: int
    ) -> None:
        """Simulated cost of placing one delta run: bin/sort CPU plus one
        sequential append write per column (and the key column on BDCC)."""
        num_uses = len(stored.bdcc.uses) if stored.bdcc is not None else 0
        cpu = n_new * self.costs.expr_value * max(num_uses, 1)
        if stored.bdcc is not None or stored.sort_columns:
            cpu += n_new * max(np.log2(max(n_new, 2)), 1.0) * self.costs.sort_row
        metrics.charge_cpu(cpu, "update")
        write_bytes = [
            n_new * stored.stored_bytes_per_value(c) for c in stored.columns
        ]
        if stored.bdcc is not None:
            write_bytes.append(float(n_new))  # RLE key column
        metrics.charge_io(
            float(sum(write_bytes)), len(write_bytes),
            self.disk.time_for_runs(write_bytes),
        )

    def _validate_pending(self) -> None:
        """Fail the whole commit *before* anything is applied: every
        insert batch must be complete and rectangular, every delete
        predicate must only name columns of its table.  (Commits are
        atomic by validation: nothing below this point raises on
        well-formed data.)"""
        for table, rows in self._inserts:
            definition = self.db.schema.table(table)
            missing = set(definition.column_names) - set(rows)
            if missing:
                raise ValueError(
                    f"table {table!r} insert missing columns: {sorted(missing)}"
                )
            lengths = {len(v) for v in rows.values()}
            if len(lengths) > 1:
                raise ValueError(f"table {table!r}: ragged insert batch {lengths}")
        for table, predicate in self._deletes:
            known = set(self.db.schema.table(table).column_names)
            unknown = predicate.columns() - known
            if unknown:
                raise ValueError(
                    f"table {table!r} delete predicate references unknown "
                    f"columns: {sorted(unknown)}"
                )

    def commit(self) -> CommitResult:
        """Apply all buffered changes; returns the per-scheme outcome.
        The session is reusable afterwards."""
        result = CommitResult()
        if not self._inserts and not self._deletes:
            for pdb in self.pdbs:
                result.epochs[pdb.scheme_name] = pdb.epoch
            return result
        self._validate_pending()
        per_table: Dict[Tuple[str, str], TableChange] = {}

        def change_for(pdb: PhysicalDatabase, stored: StoredTable) -> TableChange:
            key = (pdb.scheme_name, stored.name)
            if key not in per_table:
                per_table[key] = TableChange(scheme=pdb.scheme_name, table=stored.name)
            return per_table[key]

        for pdb in self.pdbs:
            result.scheme_metrics.setdefault(pdb.scheme_name, ExecutionMetrics())

        # ---- inserts, parents first --------------------------------------
        for table, rows in self._ordered_inserts():
            n_old, n_new = self.db.append_table_rows(table, rows)
            if n_new == 0:
                continue
            result.inserted[table] = result.inserted.get(table, 0) + n_new
            for pdb in self.pdbs:
                metrics = result.scheme_metrics[pdb.scheme_name]
                for stored in pdb.stored_copies(table):
                    run = place_delta_run(stored, self.db, n_old, n_new)
                    ensure_delta(stored).runs.append(run)
                    self._charge_insert(metrics, stored, n_new)
                # logical row counts: once per table, not per replica copy
                change_for(pdb, pdb.table(table)).rows_inserted += n_new

        # ---- deletes, in declaration order -------------------------------
        for table, predicate in self._deletes:
            mask = np.asarray(predicate.eval(self.db.table_data(table)), dtype=bool)
            removed = self.db.delete_table_rows(table, mask)
            if removed == 0:
                continue  # nothing matched anywhere: no marks, no epoch bump
            result.deleted[table] = result.deleted.get(table, 0) + removed
            for pdb in self.pdbs:
                metrics = result.scheme_metrics[pdb.scheme_name]
                for stored in pdb.stored_copies(table):
                    delta = ensure_delta(stored)
                    base_mask = np.asarray(
                        predicate.eval(stored.columns), dtype=bool
                    )
                    delta.base_deleted |= base_mask
                    for run in delta.runs:
                        run_mask = np.asarray(predicate.eval(run.columns), dtype=bool)
                        run.deleted |= run_mask
                    metrics.charge_cpu(
                        (stored.stored_rows + delta.total_delta_rows)
                        * max(len(predicate.columns()), 1) * self.costs.expr_value,
                        "update",
                    )
                # logical deletion count, once per table (the db-side count;
                # stored-side marks may cover consolidated duplicates too)
                change_for(pdb, pdb.table(table)).rows_deleted += removed

        # ---- epoch bumps + compaction ------------------------------------
        for pdb in self.pdbs:
            metrics = result.scheme_metrics[pdb.scheme_name]
            for (scheme, _), change in per_table.items():
                if scheme != pdb.scheme_name:
                    continue
                for stored in pdb.stored_copies(change.table):
                    stored.epoch += 1
                    REGISTRY.inc("epochs_bumped")
                    if self.policy.should_compact(stored):
                        io_s, cpu_s = compact_table(stored, self.disk, self.costs)
                        metrics.compaction_seconds += io_s + cpu_s
                        change.compacted = True
                    change.delta_rows = (
                        stored.delta.live_delta_rows if stored.delta is not None else 0
                    )
                    change.epoch = stored.epoch
            result.epochs[pdb.scheme_name] = pdb.epoch
        result.changes = list(per_table.values())
        REGISTRY.inc("commits")

        self._inserts = []
        self._deletes = []
        return result
