"""Group-size statistics gathered during BDCC bulk load.

For every candidate count-table granularity ``g`` (0..B) we record a
logarithmic group-size histogram — entry ``x`` counts groups of size
``[2**(x-1), 2**x)`` tuples, as described in the paper's *correlated
dimensions* discussion — plus the exact group count and median group
size.  Algorithm 1(iii) consults these to pick the count-table
granularity relative to the efficient random access size ``A_R``, and the
histogram shape makes correlation effects ("puff pastry": far fewer
groups than ``2**g``) directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

__all__ = ["GranularityStats", "collect_granularity_stats", "choose_granularity"]


@dataclass
class GranularityStats:
    """Per-granularity group statistics for one BDCC table."""

    total_bits: int
    num_groups: List[int]          # index g -> number of groups at granularity g
    median_group_size: List[float]  # index g -> median tuples per group
    log_histograms: List[np.ndarray]  # index g -> log2 group-size histogram

    def expected_groups(self, granularity: int) -> int:
        return 1 << granularity

    def missing_group_fraction(self, granularity: int) -> float:
        """1 - actual/expected groups: >0 signals correlated or
        hierarchical dimensions (or sparse key space)."""
        expected = self.expected_groups(granularity)
        return 1.0 - self.num_groups[granularity] / expected


def _log_histogram(sizes: np.ndarray) -> np.ndarray:
    """Histogram over log2 size classes; entry x counts groups of size
    in [2**(x-1), 2**x)."""
    classes = np.ceil(np.log2(np.maximum(sizes, 1))).astype(np.int64)
    classes[sizes <= 1] = 0
    return np.bincount(classes)


def collect_granularity_stats(sorted_keys: np.ndarray, total_bits: int) -> GranularityStats:
    """Analyse group sizes at every granularity 0..B over the sorted key
    column (the piggy-backed aggregation of Algorithm 1(ii))."""
    num_groups: List[int] = []
    medians: List[float] = []
    histograms: List[np.ndarray] = []
    n = len(sorted_keys)
    for g in range(total_bits + 1):
        if n == 0:
            num_groups.append(0)
            medians.append(0.0)
            histograms.append(np.zeros(1, dtype=np.int64))
            continue
        prefixes = sorted_keys >> np.uint64(total_bits - g)
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(prefixes[1:], prefixes[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        sizes = np.diff(np.append(starts, n))
        num_groups.append(len(starts))
        medians.append(float(np.median(sizes)))
        histograms.append(_log_histogram(sizes))
    return GranularityStats(total_bits, num_groups, medians, histograms)


def choose_granularity(
    stats: GranularityStats,
    densest_column_bytes_per_tuple: float,
    efficient_access_bytes: float,
) -> int:
    """Algorithm 1(iii): the largest granularity ``b <= B`` such that most
    groups are still efficiently readable.

    Concretely: the largest ``b`` whose *median* group byte-size in the
    densest (widest stored) column is at least ``A_R / 2``.  For a
    uniformly filled key space this reduces to
    ``b = ceil(log2(column_bytes / A_R))`` — exactly the paper's
    "``ceil(log2(550000 pages)) = 20`` bits" for SF100 LINEITEM.  When
    correlated dimensions leave groups missing, actual groups are larger,
    so the rule automatically admits a higher ``b`` (the "puff pastry"
    adaptation).  Tables smaller than ``2 * A_R`` keep full granularity:
    their count table is tiny regardless and grouping costs nothing.
    """
    if densest_column_bytes_per_tuple <= 0:
        raise ValueError("densest column width must be positive")
    if efficient_access_bytes <= 0:
        raise ValueError("A_R must be positive")
    best = None
    for g in range(stats.total_bits + 1):
        median_bytes = stats.median_group_size[g] * densest_column_bytes_per_tuple
        if median_bytes >= efficient_access_bytes / 2.0:
            best = g
    if best is None:
        return stats.total_bits
    return best
