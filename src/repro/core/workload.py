"""Workload-aware dimension-use selection (the paper's future work (i)).

Algorithm 2 is deliberately workload-agnostic, but the paper notes that
on very large schemas it "will identify too many dimension uses for a
table" and suggests as a future direction to *ignore dimension uses with
less impact on a workload*.  This module implements that extension: given
a set of representative logical plans, each candidate use is scored by
how often a query could actually exploit it —

* **pushdown/propagation benefit**: the use's dimension path is realised
  by the query's (filtering) joins and predicates sit on the dimension's
  host (or its filtering ancestors);
* **sandwich benefit**: some join in the query runs along the use's
  leading foreign key (or on the host key itself), so the use can
  pre-group that join;
* **partitioned-aggregation benefit**: a grouping key set covers the
  use's leading foreign key or the table's primary key.

``prune_design`` then keeps, per table, the ``max_uses`` best-scoring
uses (ties broken by discovery order, preserving Algorithm 2 semantics
for untouched tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..catalog import Schema
from ..planner.analysis import analyse_plan, strip_prefix
from ..planner.logical import GroupByNode, JoinNode, Plan, PlanNode, ScanNode, walk
from .advisor import SchemaDesign
from .dimension_use import DimensionUse

__all__ = ["UseScore", "WorkloadAnalyzer", "prune_design"]


@dataclass
class UseScore:
    """Benefit tally for one dimension use of one table."""

    table: str
    dimension: str
    path: Tuple[str, ...]
    pushdown: int = 0
    sandwich: int = 0
    aggregation: int = 0

    @property
    def total(self) -> int:
        return self.pushdown + self.sandwich + self.aggregation


class WorkloadAnalyzer:
    """Scores a design's dimension uses against a plan workload."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def score(
        self, design: SchemaDesign, workload: Iterable[object]
    ) -> Dict[Tuple[str, str, Tuple[str, ...]], UseScore]:
        scores: Dict[Tuple[str, str, Tuple[str, ...]], UseScore] = {}
        for table, uses in design.table_uses.items():
            for use in uses:
                key = (table, use.dimension.name, use.path)
                scores[key] = UseScore(table, use.dimension.name, use.path)
        for plan in workload:
            node = plan.node if isinstance(plan, Plan) else plan
            self._score_plan(node, design, scores)
        return scores

    # ------------------------------------------------------------ internals
    def _score_plan(self, node: PlanNode, design: SchemaDesign, scores) -> None:
        analysis = analyse_plan(node, self.schema)
        predicated = {
            alias
            for alias, scan_node in analysis.scans.items()
            if scan_node.predicate is not None
        }
        joined_fks = self._joined_fks(node, analysis)
        grouped_fk_covers = self._grouped_covers(node, analysis)

        for alias, scan_node in analysis.scans.items():
            for use in design.uses_for(scan_node.table):
                key = (scan_node.table, use.dimension.name, use.path)
                score = scores.get(key)
                if score is None:
                    continue
                host = self._walk_path(analysis, alias, use.path)
                if host is not None and self._host_restricted(analysis, host, predicated):
                    score.pushdown += 1
                lead = use.path[0] if use.path else None
                if lead is not None and (alias, lead) in joined_fks:
                    score.sandwich += 1
                if (alias, lead) in grouped_fk_covers or (alias, None) in grouped_fk_covers:
                    score.aggregation += 1

    def _joined_fks(self, node: PlanNode, analysis) -> set:
        out = set()
        for edge in analysis.edges:
            out.add((edge.child_alias, edge.fk_name))
        return out

    def _grouped_covers(self, node: PlanNode, analysis) -> set:
        """(alias, fk_name-or-None) pairs whose columns a group-by covers
        (None = the alias's primary key is covered)."""
        from .advisor import AdvisorConfig  # no cycle; just locality

        covered = set()
        for n in walk(node):
            if not isinstance(n, GroupByNode):
                continue
            by_alias: Dict[str, set] = {}
            for alias, scan_node in analysis.scans.items():
                prefix = scan_node.prefix
                base = {
                    strip_prefix(k, prefix)
                    for k in n.keys
                    if self.schema.table(scan_node.table).has_column(strip_prefix(k, prefix))
                }
                if base:
                    by_alias[alias] = base
            for alias, base in by_alias.items():
                table = self.schema.table(analysis.scans[alias].table)
                if table.primary_key and set(table.primary_key) <= base:
                    covered.add((alias, None))
                for fk in self.schema.outgoing_foreign_keys(table.name):
                    if set(fk.child_columns) <= base:
                        covered.add((alias, fk.name))
        return covered

    def _walk_path(self, analysis, alias: str, path: Tuple[str, ...]) -> Optional[str]:
        current = alias
        for fk_name in path:
            edge = analysis.edge_from(current, fk_name)
            if edge is None or not edge.filters_child():
                return None
            current = edge.parent_alias
        return current

    def _host_restricted(self, analysis, host_alias: str, predicated: set) -> bool:
        """Is the host (or a filtering ancestor of it) predicated?"""
        frontier = [host_alias]
        seen = set()
        while frontier:
            current = frontier.pop()
            if current in predicated:
                return True
            seen.add(current)
            for edge in analysis.usable_edges_from(current):
                if edge.parent_alias not in seen:
                    frontier.append(edge.parent_alias)
        return False


def prune_design(
    design: SchemaDesign,
    scores: Dict[Tuple[str, str, Tuple[str, ...]], UseScore],
    max_uses_per_table: int,
) -> SchemaDesign:
    """A design keeping only each table's ``max_uses_per_table``
    highest-impact uses.  Uses with zero workload benefit are dropped
    even under the cap only if the table exceeds it."""
    if max_uses_per_table < 1:
        raise ValueError("must keep at least one use per table")
    new_uses: Dict[str, List[DimensionUse]] = {}
    for table, uses in design.table_uses.items():
        if len(uses) <= max_uses_per_table:
            new_uses[table] = list(uses)
            continue
        ranked = sorted(
            enumerate(uses),
            key=lambda pair: (
                -scores[(table, pair[1].dimension.name, pair[1].path)].total,
                pair[0],
            ),
        )
        keep = sorted(idx for idx, _ in ranked[:max_uses_per_table])
        new_uses[table] = [uses[i] for i in keep]
    return SchemaDesign(dimensions=dict(design.dimensions), table_uses=new_uses)
