"""Bitmask assignment: round-robin (Z-order) and major-minor interleaving.

This implements step (i) of Algorithm 1 (Self-Tuned BDCC Table): given the
granularities ``bits(D(U_i))`` of a table's dimension uses, produce the
masks ``M(U_i)`` that interleave all dimension bits into one clustering
key of ``B = sum_i bits(D(U_i))`` bits.

Two discrepant readings of Algorithm 1(i) exist in the paper (see
DESIGN.md §5): the prose groups round-robin turns by foreign key, while
the published TPC-H dimension-use tables show plain round-robin over the
dimension uses.  ``assign_masks`` implements the published behaviour by
default (verified bit-for-bit against the paper's tables) and the prose
variant behind ``fk_grouped=True``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .bits import MAX_KEY_BITS

__all__ = ["assign_masks", "assign_masks_major_minor"]


def _check_bits(bits_per_use: Sequence[int]) -> int:
    if not bits_per_use:
        raise ValueError("need at least one dimension use")
    for bits in bits_per_use:
        if bits <= 0:
            raise ValueError(f"dimension granularity must be positive, got {bits}")
    total = sum(bits_per_use)
    if total > MAX_KEY_BITS:
        raise ValueError(
            f"total granularity {total} exceeds the {MAX_KEY_BITS}-bit key limit"
        )
    return total


def assign_masks(
    bits_per_use: Sequence[int],
    fk_groups: Optional[Sequence[object]] = None,
    fk_grouped: bool = False,
) -> List[int]:
    """Round-robin (Z-order) mask assignment, Algorithm 1(i).

    Bits are handed out one at a time from the most significant key
    position downwards, cycling over the dimension uses in order and
    skipping uses whose granularity is exhausted, until all
    ``B = sum(bits_per_use)`` bits are assigned.

    Args:
        bits_per_use: ``bits(D(U_i))`` for each dimension use, in order.
        fk_groups: optional group label per use (e.g. the foreign key, or
            None for a local dimension).  Only consulted when
            ``fk_grouped`` is True.
        fk_grouped: use the paper's *prose* variant: the round-robin
            cycles over foreign-key groups, and uses sharing a group
            alternate within that group's turns.

    Returns:
        One mask per use over a ``B``-bit key.  Masks are disjoint and
        together cover all ``B`` bits (Definition 4 constraints).
    """
    total = _check_bits(bits_per_use)
    remaining = list(bits_per_use)
    masks = [0 for _ in bits_per_use]
    next_position = total - 1  # most significant first

    if fk_grouped:
        if fk_groups is None:
            raise ValueError("fk_grouped=True requires fk_groups labels")
        if len(fk_groups) != len(bits_per_use):
            raise ValueError("fk_groups must align with bits_per_use")
        group_order: List[object] = []
        members: dict = {}
        for idx, label in enumerate(fk_groups):
            key = (idx,) if label is None else ("fk", label)
            if key not in members:
                members[key] = []
                group_order.append(key)
            members[key].append(idx)
        turn_within = dict.fromkeys(group_order, 0)
        while next_position >= 0:
            progressed = False
            for key in group_order:
                live = [i for i in members[key] if remaining[i] > 0]
                if not live:
                    continue
                pick = live[turn_within[key] % len(live)]
                turn_within[key] += 1
                masks[pick] |= 1 << next_position
                remaining[pick] -= 1
                next_position -= 1
                progressed = True
                if next_position < 0:
                    break
            if not progressed:
                break
    else:
        while next_position >= 0:
            progressed = False
            for idx in range(len(remaining)):
                if remaining[idx] == 0:
                    continue
                masks[idx] |= 1 << next_position
                remaining[idx] -= 1
                next_position -= 1
                progressed = True
                if next_position < 0:
                    break
            if not progressed:
                break

    assert all(r == 0 for r in remaining)
    return masks


def assign_masks_major_minor(bits_per_use: Sequence[int]) -> List[int]:
    """Major-minor mask assignment: use 0 takes the most significant
    ``bits_per_use[0]`` positions, use 1 the next block, and so on.

    This is the hand-tuned MDAM-style layout the paper compares against in
    its "Other Orderings" experiment (Z-order 284 s vs major-minor 291 s).
    """
    total = _check_bits(bits_per_use)
    masks = []
    top = total
    for bits in bits_per_use:
        mask = ((1 << bits) - 1) << (top - bits)
        masks.append(mask)
        top -= bits
    return masks
