"""The ``T_COUNT`` metadata table of a BDCC table.

One entry per clustering-key *group* at the chosen count-table granularity
``b``: the group's key prefix, its tuple count and its starting offset in
the stored (key-sorted) table.  Entries can be marked invalid by the
small-group consolidation step of Algorithm 1 — their rows were copied to
a consolidated region appended at the end of the table and must not be
read through the original entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CountTable"]


@dataclass
class CountTable:
    """Group metadata: parallel arrays over count-table entries."""

    granularity: int
    keys: np.ndarray      # uint64 group key prefixes (top `granularity` bits)
    counts: np.ndarray    # int64 tuples per group
    offsets: np.ndarray   # int64 starting row in the stored table
    valid: np.ndarray     # bool, False for consolidated-away originals

    def __post_init__(self) -> None:
        n = len(self.keys)
        if not (len(self.counts) == len(self.offsets) == len(self.valid) == n):
            raise ValueError("count-table arrays must be parallel")
        self.keys = np.asarray(self.keys, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.valid = np.asarray(self.valid, dtype=bool)

    @classmethod
    def from_sorted_keys(cls, sorted_keys: np.ndarray, total_bits: int, granularity: int) -> "CountTable":
        """Build from the full-granularity sorted key column, in a single
        ordered aggregation (Algorithm 1(iv))."""
        if granularity < 0 or granularity > total_bits:
            raise ValueError(f"granularity {granularity} out of [0, {total_bits}]")
        prefixes = sorted_keys >> np.uint64(total_bits - granularity)
        if len(prefixes) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return cls(granularity, empty.astype(np.uint64), empty, empty, empty.astype(bool))
        change = np.empty(len(prefixes), dtype=bool)
        change[0] = True
        np.not_equal(prefixes[1:], prefixes[:-1], out=change[1:])
        offsets = np.flatnonzero(change).astype(np.int64)
        keys = prefixes[offsets]
        counts = np.diff(np.append(offsets, len(prefixes))).astype(np.int64)
        return cls(granularity, keys, counts, offsets, np.ones(len(keys), dtype=bool))

    @classmethod
    def merge_entries(
        cls,
        granularity: int,
        base_keys: np.ndarray,
        base_counts: np.ndarray,
        added_keys: Optional[np.ndarray] = None,
        added_counts: Optional[np.ndarray] = None,
        removed_keys: Optional[np.ndarray] = None,
        removed_counts: Optional[np.ndarray] = None,
    ) -> "CountTable":
        """Incremental count-table maintenance: merge per-group deltas
        into existing entry metadata without re-aggregating the key
        column.

        ``base_keys``/``base_counts`` are the current (valid) entries in
        any order; ``added_*`` add tuples per group prefix (new prefixes
        create new entries in key order), ``removed_*`` subtract (groups
        reaching zero tuples disappear).  Offsets are recomputed as the
        running sum in key order — exactly the layout of the merged
        storage the delta path / compaction produces.
        """
        keys = np.asarray(base_keys, dtype=np.uint64)
        counts = np.asarray(base_counts, dtype=np.int64)
        pieces_k = [keys]
        pieces_c = [counts]
        if added_keys is not None and len(added_keys):
            pieces_k.append(np.asarray(added_keys, dtype=np.uint64))
            pieces_c.append(np.asarray(added_counts, dtype=np.int64))
        if removed_keys is not None and len(removed_keys):
            pieces_k.append(np.asarray(removed_keys, dtype=np.uint64))
            pieces_c.append(-np.asarray(removed_counts, dtype=np.int64))
        all_keys = np.concatenate(pieces_k)
        all_counts = np.concatenate(pieces_c)
        uniq, inverse = np.unique(all_keys, return_inverse=True)
        merged = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(merged, inverse, all_counts)
        if np.any(merged < 0):
            raise ValueError("count-table merge removed more tuples than a group holds")
        keep = merged > 0
        uniq = uniq[keep]
        merged = merged[keep]
        offsets = np.concatenate([[0], np.cumsum(merged[:-1])]).astype(np.int64) \
            if len(merged) else np.zeros(0, dtype=np.int64)
        return cls(granularity, uniq, merged, offsets, np.ones(len(uniq), dtype=bool))

    # ------------------------------------------------------------ queries
    @property
    def num_groups(self) -> int:
        return int(np.count_nonzero(self.valid))

    @property
    def num_entries(self) -> int:
        return len(self.keys)

    def total_rows(self) -> int:
        """Rows reachable through valid entries (equals the logical row
        count even after consolidation)."""
        return int(self.counts[self.valid].sum())

    def select_entries(self, entry_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Indices of valid entries, optionally intersected with a mask."""
        mask = self.valid if entry_mask is None else (self.valid & entry_mask)
        return np.flatnonzero(mask)

    def row_runs(self, entries: np.ndarray) -> List[Tuple[int, int]]:
        """``(offset, length)`` runs for the given entries, with adjacent
        runs merged — the scatter scan's access list, and the unit the IO
        model charges seeks for."""
        runs: List[Tuple[int, int]] = []
        for idx in np.sort(entries):
            start = int(self.offsets[idx])
            length = int(self.counts[idx])
            if runs and runs[-1][0] + runs[-1][1] == start:
                prev_start, prev_len = runs[-1]
                runs[-1] = (prev_start, prev_len + length)
            else:
                runs.append((start, length))
        return runs

    def rows_for_entries(self, entries: np.ndarray) -> np.ndarray:
        """Concrete row indices (into the stored order) for the entries,
        in key order."""
        pieces = [
            np.arange(self.offsets[idx], self.offsets[idx] + self.counts[idx])
            for idx in np.sort(entries)
        ]
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(pieces)
