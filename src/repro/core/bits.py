"""Bit-level utilities for BDCC clustering keys and dimension-use masks.

Conventions
-----------
A BDCC table clustered on ``b`` bits has keys in ``[0, 2**b)`` stored as
``uint64`` (so ``b <= 64``).  Bit positions are numbered LSB=0; the paper
prints masks MSB-first (e.g. ``1010`` sets positions 3 and 1 of a 4-bit
key).  A *mask* is a Python int whose set bits are the key positions a
dimension use occupies (Definition 3).
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "ones",
    "bits_needed",
    "mask_to_string",
    "mask_from_string",
    "mask_positions",
    "scatter_bins_into_key",
    "gather_use_bits",
    "truncate_mask",
]

MAX_KEY_BITS = 64


def ones(mask: int) -> int:
    """Number of set bits in ``mask`` (``ones(M)`` of Definition 3)."""
    return bin(mask).count("1")


def bits_needed(num_bins: int) -> int:
    """``ceil(log2(num_bins))`` — the dimension granularity of Def. 1(vi)."""
    if num_bins <= 0:
        raise ValueError(f"need at least one bin, got {num_bins}")
    return max(1, int(num_bins - 1).bit_length())


def mask_to_string(mask: int, total_bits: int) -> str:
    """Render ``mask`` MSB-first over ``total_bits`` positions, as printed
    in the paper's dimension-use tables (leading zeros stripped there; we
    keep the full width and callers may ``lstrip('0')``)."""
    if total_bits <= 0 or total_bits > MAX_KEY_BITS:
        raise ValueError(f"total_bits out of range: {total_bits}")
    if mask >= (1 << total_bits):
        raise ValueError(f"mask {mask:#x} does not fit in {total_bits} bits")
    return format(mask, f"0{total_bits}b")


def mask_from_string(text: str) -> int:
    """Parse an MSB-first mask string such as ``"10001000100010001000"``."""
    if not text or set(text) - {"0", "1"}:
        raise ValueError(f"not a binary mask string: {text!r}")
    return int(text, 2)


def mask_positions(mask: int) -> List[int]:
    """Set-bit positions of ``mask``, most significant first.

    The i-th returned position receives the i-th most significant of the
    dimension bits used (Definition 4: "map the major ones(M) bits of the
    bin number to ``_bdcc_`` according to mask M").
    """
    positions = [p for p in range(mask.bit_length() - 1, -1, -1) if (mask >> p) & 1]
    return positions


def scatter_bins_into_key(
    bins: np.ndarray, dim_bits: int, mask: int, out: np.ndarray
) -> None:
    """OR the major ``ones(mask)`` bits of each bin number into ``out``.

    Args:
        bins: integer array of bin numbers (``< 2**dim_bits``).
        dim_bits: granularity of the dimension, ``bits(D)``.
        mask: the dimension use's bitmask within the clustering key.
        out: uint64 array updated in place.
    """
    positions = mask_positions(mask)
    k = len(positions)
    if k > dim_bits:
        raise ValueError(
            f"mask uses {k} bits but dimension only has {dim_bits} bits"
        )
    bins_u = bins.astype(np.uint64, copy=False)
    for j, dst in enumerate(positions):
        src = dim_bits - 1 - j  # j-th most significant bin bit
        out |= ((bins_u >> np.uint64(src)) & np.uint64(1)) << np.uint64(dst)


def gather_use_bits(keys: np.ndarray, mask: int, num_bits: int | None = None) -> np.ndarray:
    """Extract a dimension use's bits from clustering keys, compacted.

    Returns an array of group numbers formed by the ``num_bits`` most
    significant positions of ``mask`` (all of them when ``num_bits`` is
    None), preserving their MSB-to-LSB order.  This is what the scatter
    scan uses to emit group identifiers in any major/minor dimension
    order, and what sandwich operators use to align co-clustered inputs.
    """
    positions = mask_positions(mask)
    if num_bits is not None:
        if num_bits < 0 or num_bits > len(positions):
            raise ValueError(
                f"num_bits {num_bits} out of range for mask with {len(positions)} bits"
            )
        positions = positions[:num_bits]
    out = np.zeros(keys.shape, dtype=np.uint64)
    keys_u = keys.astype(np.uint64, copy=False)
    k = len(positions)
    for j, src in enumerate(positions):
        out |= ((keys_u >> np.uint64(src)) & np.uint64(1)) << np.uint64(k - 1 - j)
    return out


def truncate_mask(mask: int, total_bits: int, granularity: int) -> int:
    """A mask restricted to the top ``granularity`` positions of a
    ``total_bits``-wide key (used to express dimension uses at the reduced
    count-table granularity of Algorithm 1)."""
    if granularity < 0 or granularity > total_bits:
        raise ValueError(f"granularity {granularity} out of [0, {total_bits}]")
    return mask >> (total_bits - granularity)
