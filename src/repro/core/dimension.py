"""BDCC dimensions (Definition 1 of the paper).

A :class:`Dimension` is an order-respecting surjective mapping from a
dimension key — one or more attributes of a *host table* — onto a finite
sequence of bins.  We represent bins as intervals of the order-preserving
``int64`` codes produced by :class:`~repro.core.binning.KeyEncoder`; bin
``i`` covers codes in ``(uppers[i-1], uppers[i]]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .binning import KeyEncoder, equi_frequency_cuts
from .bits import bits_needed

__all__ = ["Dimension"]


@dataclass
class Dimension:
    """A BDCC dimension ``D = <T, K, S>``.

    Attributes:
        name: dimension identifier, e.g. ``"D_NATION"``.
        table: host table ``T(D)`` owning the key attributes.
        key: dimension key ``K(D)`` — attribute names on ``table``.
        encoder: order-preserving key-tuple encoder.
        uppers: inclusive upper-bound code of each bin, ascending.
    """

    name: str
    table: str
    key: Tuple[str, ...]
    encoder: KeyEncoder
    uppers: np.ndarray

    def __post_init__(self) -> None:
        self.uppers = np.asarray(self.uppers, dtype=np.int64)
        if len(self.uppers) == 0:
            raise ValueError(f"dimension {self.name!r} has no bins")
        if np.any(np.diff(self.uppers) <= 0):
            raise ValueError(f"dimension {self.name!r} bins are not ordered")

    # ---------------------------------------------------------- properties
    @property
    def num_bins(self) -> int:
        """``m(D)``, the number of dimension entries."""
        return len(self.uppers)

    @property
    def bits(self) -> int:
        """``bits(D) = ceil(log2(m))`` — Definition 1(vi)."""
        return bits_needed(self.num_bins)

    # ------------------------------------------------------------- binning
    def bin_of_codes(self, codes: np.ndarray) -> np.ndarray:
        """Bin numbers for key codes (Definition 1(v)).

        Codes above the largest upper bound clamp to the last bin, which
        keeps the mapping total and order-respecting.
        """
        bins = np.searchsorted(self.uppers, codes, side="left")
        np.minimum(bins, self.num_bins - 1, out=bins)
        return bins.astype(np.uint64)

    def bin_of_values(self, attribute_values: Sequence[np.ndarray]) -> np.ndarray:
        """Bin numbers straight from key attribute arrays."""
        return self.bin_of_codes(self.encoder.encode(attribute_values))

    # -------------------------------------------------- predicate pushdown
    def bin_range_for_codes(self, lo_code: int, hi_code: int) -> Optional[Tuple[int, int]]:
        """The inclusive bin-number range overlapping ``[lo_code, hi_code]``,
        or None when the code interval is empty."""
        if hi_code < lo_code:
            return None
        lo_bin = int(np.searchsorted(self.uppers, lo_code, side="left"))
        hi_bin = int(np.searchsorted(self.uppers, hi_code, side="left"))
        lo_bin = min(lo_bin, self.num_bins - 1)
        hi_bin = min(hi_bin, self.num_bins - 1)
        return lo_bin, hi_bin

    # -------------------------------------------------------- granularity
    def reduced_bins(self, bins: np.ndarray, granularity: int) -> np.ndarray:
        """Bin numbers at reduced granularity ``g < bits(D)`` — Definition
        1(vii): chop off the ``bits(D) - g`` least significant bits."""
        if granularity < 0 or granularity > self.bits:
            raise ValueError(
                f"granularity {granularity} out of [0, {self.bits}] for {self.name}"
            )
        shift = np.uint64(self.bits - granularity)
        return bins.astype(np.uint64) >> shift

    # ------------------------------------------------------------- factory
    @classmethod
    def create(
        cls,
        name: str,
        table: str,
        key: Sequence[str],
        attribute_values: Sequence[np.ndarray],
        max_bits: int = 13,
        weights_values: Optional[Sequence[np.ndarray]] = None,
    ) -> "Dimension":
        """Build a dimension from observed key values.

        Args:
            name, table, key: identity of the dimension.
            attribute_values: key attribute arrays from the host table —
                they define the encodable domain.
            max_bits: granularity cap (the paper uses ``bits(D) <= 13``).
            weights_values: optional key attribute arrays drawn from the
                union of *all* tables using the dimension (each resolved
                over its dimension path), per Algorithm 2(ii); bins are
                equi-depth on this distribution.  Defaults to the host
                table's own values.
        """
        encoder = KeyEncoder(attribute_values)
        freq_source = weights_values if weights_values is not None else attribute_values
        codes = encoder.encode(freq_source)
        uppers = equi_frequency_cuts(codes, max_bits)
        return cls(name=name, table=table, key=tuple(key), encoder=encoder, uppers=uppers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dimension({self.name}: {self.table}({', '.join(self.key)}), "
            f"{self.num_bins} bins, {self.bits} bits)"
        )
