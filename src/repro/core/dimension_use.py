"""Dimension paths, dimension uses and BDCC table specs (Definitions 2-4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .bits import mask_to_string, ones, truncate_mask
from .dimension import Dimension

__all__ = ["DimensionUse", "check_bdcc_constraints"]


@dataclass
class DimensionUse:
    """A dimension use ``U = <D, P, M>`` (Definition 3).

    Attributes:
        dimension: the BDCC dimension ``D(U)``.
        path: the dimension path ``P(U)`` — foreign-key identifiers from
            the clustered table to the dimension's host table; empty for a
            local dimension.
        mask: bitmask ``M(U)`` placing this use's bits within the
            clustering key.  Zero until Algorithm 1 assigns masks.
    """

    dimension: Dimension
    path: Tuple[str, ...] = ()
    mask: int = 0

    @property
    def instance(self) -> Tuple[str, Tuple[str, ...]]:
        """Identity for co-clustering compatibility.

        Two uses of the *same* dimension over *different* paths are
        logically different dimensions (the paper's twin D_NATION uses on
        LINEITEM), so the path participates in the identity.
        """
        return (self.dimension.name, self.path)

    @property
    def bits_used(self) -> int:
        """``ones(M)`` — number of clustering-key bits this use occupies."""
        return ones(self.mask)

    @property
    def first_fk(self) -> Optional[str]:
        return self.path[0] if self.path else None

    def mask_string(self, total_bits: int) -> str:
        """The mask as printed in the paper (MSB-first, no leading zeros)."""
        text = mask_to_string(self.mask, total_bits).lstrip("0")
        return text or "0"

    def truncated(self, total_bits: int, granularity: int) -> "DimensionUse":
        """This use with its mask restricted to the top ``granularity``
        key bits (the count-table granularity of Algorithm 1)."""
        return DimensionUse(
            dimension=self.dimension,
            path=self.path,
            mask=truncate_mask(self.mask, total_bits, granularity),
        )

    def path_string(self) -> str:
        return ".".join(self.path) if self.path else "-"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Use({self.dimension.name} via {self.path_string()}, mask={bin(self.mask)})"


def check_bdcc_constraints(uses: Sequence[DimensionUse], total_bits: int) -> None:
    """Enforce Definition 4's constraints on a set of dimension uses.

    (i) together the masks set all ``total_bits`` bits;
    (ii) no two masks overlap;
    additionally no mask may use more bits than its dimension has.
    """
    combined = 0
    for use in uses:
        if use.mask & combined:
            raise ValueError(f"dimension-use masks overlap at {use!r}")
        if use.bits_used > use.dimension.bits:
            raise ValueError(
                f"{use!r} uses {use.bits_used} bits but dimension has only "
                f"{use.dimension.bits}"
            )
        combined |= use.mask
    expected = (1 << total_bits) - 1
    if combined != expected:
        raise ValueError(
            f"masks cover {bin(combined)} instead of all {total_bits} bits"
        )
