"""Scatter scan over a BDCC table (Section II, "Scanning BDCC tables").

A BDCC table interleaves several dimensions in its storage order.  The
scatter scan retrieves the table in *any* major-minor order of those
dimensions by walking the count table: for table A clustered on (D1, D2)
it can emit (D1), (D2), (D1,D2) or (D2,D1) order, attaching a group
identifier to the stream — the enabler for sandwich operators.

Offsets come from ``T_COUNT``; each group is contiguous in storage, so a
scan in an order other than the native Z-order costs one random access
per emitted group run (adjacent runs merge), which is exactly what the IO
model charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ScanResult", "ScatterScan"]


@dataclass
class ScanResult:
    """Rows (positions in the stored table), their group ids, and the
    storage runs that were read."""

    rows: np.ndarray
    group_ids: np.ndarray
    runs: List[Tuple[int, int]]

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_groups(self) -> int:
        if len(self.group_ids) == 0:
            return 0
        return len(np.unique(self.group_ids))


class ScatterScan:
    """Plans group-ordered access to one BDCC table."""

    def __init__(self, bdcc) -> None:
        self._bdcc = bdcc

    def scan(
        self,
        restrictions: Sequence[Tuple[int, np.ndarray, int]] = (),
        major: Optional[Sequence[Tuple[int, Optional[int]]]] = None,
    ) -> ScanResult:
        """Retrieve (row positions of) the table.

        Args:
            restrictions: selection pushdown, per
                :meth:`BDCCTable.entries_matching`.
            major: requested emission order as ``(use_index, bits)`` pairs,
                major first; ``bits=None`` uses the full effective bits of
                that use.  ``None`` scans in native storage (Z-)order with
                a zero group id.

        Returns:
            :class:`ScanResult` whose ``rows`` are emitted group-major and
            whose ``group_ids`` concatenate the requested uses' group
            numbers (major use in the most significant position).
        """
        bdcc = self._bdcc
        ct = bdcc.count_table
        entries = bdcc.entries_matching(restrictions) if restrictions else bdcc.all_entries()
        if major:
            per_use_vals = []
            per_use_bits = []
            for use_index, bits in major:
                eff = bdcc.effective_bits(use_index)
                take = eff if bits is None else min(bits, eff)
                per_use_vals.append(bdcc.entry_group_values(use_index, take)[entries])
                per_use_bits.append(take)
            combined = np.zeros(len(entries), dtype=np.uint64)
            for vals, bits in zip(per_use_vals, per_use_bits):
                combined = (combined << np.uint64(bits)) | vals
            # sort entries by requested group id, tie-break on storage key
            order = np.lexsort((ct.keys[entries], combined))
            entries = entries[order]
            entry_groups = combined[order]
        else:
            order = np.argsort(ct.keys[entries], kind="stable")
            entries = entries[order]
            entry_groups = np.zeros(len(entries), dtype=np.uint64)

        rows_pieces: List[np.ndarray] = []
        runs: List[Tuple[int, int]] = []
        for idx in entries:
            start = int(ct.offsets[idx])
            length = int(ct.counts[idx])
            rows_pieces.append(np.arange(start, start + length, dtype=np.int64))
            if runs and runs[-1][0] + runs[-1][1] == start:
                prev_start, prev_len = runs[-1]
                runs[-1] = (prev_start, prev_len + length)
            else:
                runs.append((start, length))
        if rows_pieces:
            rows = np.concatenate(rows_pieces)
            group_ids = np.repeat(entry_groups, ct.counts[entries])
        else:
            rows = np.zeros(0, dtype=np.int64)
            group_ids = np.zeros(0, dtype=np.uint64)
        return ScanResult(rows=rows, group_ids=group_ids, runs=runs)
