"""Algorithm 1: building a self-tuned BDCC table.

Given a table's dimension uses, the builder:

(i)   assigns round-robin (Z-order) masks until every dimension's full
      granularity is used (``B`` total bits);
(ii)  computes the ``_bdcc_`` key for every tuple, sorts the table on it,
      and piggy-backs the group-size analysis over all granularities;
(iii) picks the count-table granularity ``b <= B`` from the densest
      column's byte density and the efficient random access size ``A_R``;
(iv)  materialises ``T_COUNT`` at granularity ``b``;
(v)   optionally consolidates very small groups: their tuples are copied
      and appended contiguously, the original entries marked invalid —
      the paper's post-bulk-load step for better buffer locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.database import Database
from .bits import gather_use_bits, scatter_bins_into_key, truncate_mask
from .count_table import CountTable
from .dimension_use import DimensionUse, check_bdcc_constraints
from .histograms import GranularityStats, choose_granularity, collect_granularity_stats
from .interleave import assign_masks, assign_masks_major_minor

__all__ = ["BDCCTable", "BDCCBuildConfig", "build_bdcc_table"]


@dataclass
class BDCCBuildConfig:
    """Knobs of Algorithm 1 (defaults follow the paper's evaluation)."""

    #: efficient random access size A_R in bytes (32 KB flash, per [5]).
    efficient_access_bytes: float = 32 * 1024
    #: bit interleaving: "round_robin" (Z-order, the automatic choice) or
    #: "major_minor" (the hand-tuned MDAM-style comparison layout).
    interleave: str = "round_robin"
    #: use the prose variant of Algorithm 1(i) that groups round-robin
    #: turns by foreign key (see DESIGN.md §5).
    fk_grouped: bool = False
    #: consolidate groups smaller than A_R if they hold at most this
    #: fraction of the data; None disables consolidation.
    consolidate_max_fraction: Optional[float] = 0.1


@dataclass
class BDCCTable:
    """A built BDCC table: physical order, key column, count table, stats.

    ``row_source[i]`` is the original row index stored at position ``i``;
    after small-group consolidation the storage holds duplicates, and only
    the count table's *valid* entries see each logical row exactly once.
    """

    table: str
    uses: List[DimensionUse]
    total_bits: int
    granularity: int
    row_source: np.ndarray
    keys: np.ndarray
    count_table: CountTable
    stats: GranularityStats
    densest_column: str
    densest_bytes_per_tuple: float
    logical_rows: int

    # ---------------------------------------------------------- accessors
    @property
    def stored_rows(self) -> int:
        return len(self.row_source)

    @property
    def effective_uses(self) -> List[DimensionUse]:
        """Dimension uses with masks truncated to the count-table
        granularity — what the paper's LINEITEM table prints (20 of 36
        bits at SF100)."""
        return [u.truncated(self.total_bits, self.granularity) for u in self.uses]

    def use_for(self, dimension_name: str, path: Tuple[str, ...]) -> Optional[DimensionUse]:
        for use in self.uses:
            if use.dimension.name == dimension_name and use.path == path:
                return use
        return None

    # ------------------------------------------------------------- groups
    def entry_group_values(self, use_index: int, num_bits: Optional[int] = None) -> np.ndarray:
        """Per count-table entry: the group number of one dimension use
        (its ``num_bits`` most significant bits)."""
        use = self.uses[use_index]
        eff_mask = truncate_mask(use.mask, self.total_bits, self.granularity)
        return gather_use_bits(self.count_table.keys, eff_mask, num_bits)

    def effective_bits(self, use_index: int) -> int:
        """How many of this use's bits survive at count-table granularity."""
        use = self.uses[use_index]
        return bin(truncate_mask(use.mask, self.total_bits, self.granularity)).count("1")

    def restriction_mask(
        self,
        zone_prefixes: np.ndarray,
        restrictions: Sequence[Tuple[int, np.ndarray, int]],
    ) -> np.ndarray:
        """Which of the given zone prefixes (keys truncated to count-table
        granularity) may satisfy all restrictions.

        Each restriction is ``(use_index, allowed_bins, bin_bits)`` where
        ``allowed_bins`` are dimension bin numbers expressed with
        ``bin_bits`` bits.  Bins are truncated to the use's effective bit
        count, making the selection a superset — pushdown never loses
        rows, the residual predicate still runs after the scan.  The one
        truncation rule serves both the base count table
        (:meth:`entries_matching`) and per-row delta zone tags
        (merge-on-read scans), so base and delta pruning can never
        diverge.
        """
        keep = np.ones(len(zone_prefixes), dtype=bool)
        for use_index, allowed_bins, bin_bits in restrictions:
            eff_bits = self.effective_bits(use_index)
            if eff_bits == 0:
                continue  # this use has no bits at count granularity
            take = min(eff_bits, bin_bits)
            eff_mask = truncate_mask(
                self.uses[use_index].mask, self.total_bits, self.granularity
            )
            values = gather_use_bits(zone_prefixes, eff_mask, take)
            allowed = np.unique(
                np.asarray(allowed_bins, dtype=np.uint64) >> np.uint64(bin_bits - take)
            )
            keep &= np.isin(values, allowed)
        return keep

    def entries_matching(
        self, restrictions: Sequence[Tuple[int, np.ndarray, int]]
    ) -> np.ndarray:
        """Count-table entry indices whose groups may satisfy all
        restrictions (see :meth:`restriction_mask`)."""
        keep = self.count_table.valid & self.restriction_mask(
            self.count_table.keys, restrictions
        )
        return np.flatnonzero(keep)

    def all_entries(self) -> np.ndarray:
        return self.count_table.select_entries()

    # ------------------------------------------------------------- updates
    def keys_for_rows(self, db: Database, row_indices: np.ndarray) -> np.ndarray:
        """``_bdcc_`` keys for the given rows of the live database,
        binned with the *existing* dimensions — no renumbering,
        out-of-domain key values clamp to the nearest bin (the paper's
        update story).  Shared by the incremental append path and the
        delta-store placement."""
        keys = np.zeros(len(row_indices), dtype=np.uint64)
        for use in self.uses:
            values = db.resolve_path_values(
                self.table, use.path, use.dimension.key, rows=row_indices
            )
            bins = use.dimension.bin_of_values(values)
            scatter_bins_into_key(bins, use.dimension.bits, use.mask, keys)
        return keys


def _widest_stored_column(db: Database, table: str) -> Tuple[str, float]:
    definition = db.schema.table(table)
    widest = max(definition.columns, key=lambda c: c.datatype.stored_bytes)
    return widest.name, float(widest.datatype.stored_bytes)


def build_bdcc_table(
    db: Database,
    table: str,
    uses: Sequence[DimensionUse],
    config: Optional[BDCCBuildConfig] = None,
) -> BDCCTable:
    """Run Algorithm 1 for one table.

    The given uses need no masks; they are assigned here according to the
    configured interleaving.  Dimension bin numbers are resolved over each
    use's dimension path against the live database.
    """
    config = config or BDCCBuildConfig()
    if not uses:
        raise ValueError(f"table {table!r} needs at least one dimension use")
    uses = [DimensionUse(u.dimension, u.path) for u in uses]  # private copies

    # (i) mask assignment at maximal granularity B = sum bits(D(U_i))
    bits_per_use = [u.dimension.bits for u in uses]
    if config.interleave == "round_robin":
        masks = assign_masks(
            bits_per_use,
            fk_groups=[u.first_fk for u in uses],
            fk_grouped=config.fk_grouped,
        )
    elif config.interleave == "major_minor":
        masks = assign_masks_major_minor(bits_per_use)
    else:
        raise ValueError(f"unknown interleave mode {config.interleave!r}")
    total_bits = sum(bits_per_use)
    for use, mask in zip(uses, masks):
        use.mask = mask
    check_bdcc_constraints(uses, total_bits)

    # (ii) compute _bdcc_ at maximal granularity and sort
    n = db.num_rows(table)
    keys = np.zeros(n, dtype=np.uint64)
    for use in uses:
        values = db.resolve_path_values(table, use.path, use.dimension.key)
        bins = use.dimension.bin_of_values(values)
        scatter_bins_into_key(bins, use.dimension.bits, use.mask, keys)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    stats = collect_granularity_stats(sorted_keys, total_bits)

    # (iii) choose the count-table granularity from the densest column
    densest_col, densest_bytes = _widest_stored_column(db, table)
    granularity = choose_granularity(stats, densest_bytes, config.efficient_access_bytes)

    # (iv) T_COUNT at the reduced granularity
    count_table = CountTable.from_sorted_keys(sorted_keys, total_bits, granularity)

    bdcc = BDCCTable(
        table=table,
        uses=uses,
        total_bits=total_bits,
        granularity=granularity,
        row_source=order.astype(np.int64),
        keys=sorted_keys,
        count_table=count_table,
        stats=stats,
        densest_column=densest_col,
        densest_bytes_per_tuple=densest_bytes,
        logical_rows=n,
    )

    # (v) post-bulk-load consolidation of very small groups
    if config.consolidate_max_fraction is not None and n > 0:
        _consolidate_small_groups(
            bdcc,
            threshold_bytes=config.efficient_access_bytes,
            max_fraction=config.consolidate_max_fraction,
        )
    return bdcc


def _consolidate_small_groups(
    bdcc: BDCCTable, threshold_bytes: float, max_fraction: float
) -> None:
    """Copy tuples of groups smaller than ``threshold_bytes`` (in the
    densest column) to a contiguous region appended at the end; mark the
    original count-table entries invalid.

    Skipped when small groups hold more than ``max_fraction`` of the data
    (Algorithm 1 only tolerates a low percentage there) or when fewer than
    two groups qualify (nothing to co-locate)."""
    ct = bdcc.count_table
    group_bytes = ct.counts * bdcc.densest_bytes_per_tuple
    small = ct.valid & (group_bytes < threshold_bytes)
    small_rows = int(ct.counts[small].sum())
    if np.count_nonzero(small) < 2 or small_rows == 0:
        return
    if small_rows > max_fraction * bdcc.logical_rows:
        return

    small_indices = np.flatnonzero(small)  # already in key order
    pieces = [
        np.arange(ct.offsets[i], ct.offsets[i] + ct.counts[i]) for i in small_indices
    ]
    moved = np.concatenate(pieces)
    base = bdcc.stored_rows
    bdcc.row_source = np.concatenate([bdcc.row_source, bdcc.row_source[moved]])
    bdcc.keys = np.concatenate([bdcc.keys, bdcc.keys[moved]])

    new_keys = ct.keys[small_indices]
    new_counts = ct.counts[small_indices]
    new_offsets = base + np.concatenate([[0], np.cumsum(new_counts[:-1])]).astype(np.int64)
    ct.valid[small_indices] = False
    bdcc.count_table = CountTable(
        granularity=ct.granularity,
        keys=np.concatenate([ct.keys, new_keys]),
        counts=np.concatenate([ct.counts, new_counts]),
        offsets=np.concatenate([ct.offsets, new_offsets]),
        valid=np.concatenate([ct.valid, np.ones(len(new_keys), dtype=bool)]),
    )
