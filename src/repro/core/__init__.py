"""BDCC core: dimensions, interleaving, Algorithms 1 & 2, scatter scan."""

from .advisor import AdvisorConfig, SchemaAdvisor, SchemaDesign
from .append import append_rows
from .bdcc_table import BDCCBuildConfig, BDCCTable, build_bdcc_table
from .binning import KeyEncoder, equi_frequency_cuts
from .bits import (
    bits_needed,
    gather_use_bits,
    mask_from_string,
    mask_positions,
    mask_to_string,
    ones,
    scatter_bins_into_key,
    truncate_mask,
)
from .count_table import CountTable
from .dimension import Dimension
from .dimension_use import DimensionUse, check_bdcc_constraints
from .histograms import GranularityStats, choose_granularity, collect_granularity_stats
from .interleave import assign_masks, assign_masks_major_minor
from .report import design_report
from .scatter_scan import ScanResult, ScatterScan
from .workload import UseScore, WorkloadAnalyzer, prune_design

__all__ = [
    "AdvisorConfig",
    "SchemaAdvisor",
    "SchemaDesign",
    "BDCCBuildConfig",
    "BDCCTable",
    "build_bdcc_table",
    "KeyEncoder",
    "equi_frequency_cuts",
    "bits_needed",
    "gather_use_bits",
    "mask_from_string",
    "mask_positions",
    "mask_to_string",
    "ones",
    "scatter_bins_into_key",
    "truncate_mask",
    "CountTable",
    "Dimension",
    "DimensionUse",
    "check_bdcc_constraints",
    "GranularityStats",
    "choose_granularity",
    "collect_granularity_stats",
    "assign_masks",
    "assign_masks_major_minor",
    "ScanResult",
    "ScatterScan",
    "append_rows",
    "UseScore",
    "WorkloadAnalyzer",
    "prune_design",
    "design_report",
]
