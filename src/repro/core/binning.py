"""Order-preserving value encoding and frequency-based binning.

``KeyEncoder`` maps (possibly multi-attribute) dimension key values onto
``int64`` codes that preserve lexicographic order, so that bins — which
Definition 1 requires to be *ordered* and *non-overlapping* — can be
represented as code intervals.

``equi_frequency_cuts`` is our substitute for the paper's companion tech
report [4] ("Creating Dimensions for BDCC"): equi-depth binning over the
value distribution observed across *all* tables that use the dimension
(union over their dimension paths), which yields balanced bins under skew
— heavy hitters simply absorb several quantile cuts and the dimension ends
up with fewer, well-filled bins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .bits import bits_needed

__all__ = ["KeyEncoder", "equi_frequency_cuts"]


class KeyEncoder:
    """Order-preserving encoder from key tuples to ``int64`` codes.

    Built over the union of observed key values.  Each attribute is
    mapped to its rank among the attribute's distinct values, and ranks
    are packed lexicographically (first attribute major).

    Unseen values still encode sensibly for predicate analysis: they are
    mapped to *half-open rank positions* via :meth:`lower_code` /
    :meth:`upper_code`, which is all range pushdown needs.
    """

    def __init__(self, attribute_values: Sequence[np.ndarray]):
        if not attribute_values:
            raise ValueError("need at least one key attribute")
        lengths = {len(a) for a in attribute_values}
        if len(lengths) != 1:
            raise ValueError("key attribute arrays must have equal length")
        self._uniques: List[np.ndarray] = [np.unique(a) for a in attribute_values]
        self._cards: List[int] = [len(u) for u in self._uniques]
        # multiplier[i] = product of cardinalities of attributes after i
        mult = [1] * len(self._cards)
        for i in range(len(self._cards) - 2, -1, -1):
            mult[i] = mult[i + 1] * self._cards[i + 1]
        if self._cards and self._cards[0] * mult[0] >= 2**62:
            raise ValueError("key domain too large to encode in int64")
        self._multipliers = mult

    @property
    def num_attributes(self) -> int:
        return len(self._uniques)

    @property
    def domain_size(self) -> int:
        """Number of representable key tuples (product of cardinalities)."""
        return self._cards[0] * self._multipliers[0]

    def encode(self, attribute_values: Sequence[np.ndarray]) -> np.ndarray:
        """Codes for key tuples whose attribute values were observed.

        Values not present in the observed domain are clamped to their
        insertion rank, which keeps the mapping monotone (adequate for
        binning data that was itself used to build the encoder).
        """
        if len(attribute_values) != self.num_attributes:
            raise ValueError(
                f"expected {self.num_attributes} attributes, got {len(attribute_values)}"
            )
        code = np.zeros(len(attribute_values[0]), dtype=np.int64)
        for values, uniques, mult in zip(attribute_values, self._uniques, self._multipliers):
            ranks = np.searchsorted(uniques, values)
            np.minimum(ranks, len(uniques) - 1, out=ranks)
            code += ranks.astype(np.int64) * mult
        return code

    # ------------------------------------------------- predicate constants
    def _prefix_code(self, prefix: Sequence[object], last_rank: int) -> int:
        code = 0
        for value, uniques, mult in zip(prefix, self._uniques, self._multipliers):
            code += int(np.searchsorted(uniques, value)) * mult
        code += last_rank * self._multipliers[len(prefix)]
        return code

    def lower_code(self, prefix: Sequence[object], inclusive: bool = True) -> int:
        """Smallest code of any key tuple ``>=`` (or ``>``) the given
        key-attribute prefix; remaining attributes are unconstrained."""
        if not 0 < len(prefix) <= self.num_attributes:
            raise ValueError("prefix length out of range")
        idx = len(prefix) - 1
        uniques = self._uniques[idx]
        side = "left" if inclusive else "right"
        rank = int(np.searchsorted(uniques, prefix[-1], side=side))
        return self._prefix_code(list(prefix[:-1]), 0) + rank * self._multipliers[idx]

    def upper_code(self, prefix: Sequence[object], inclusive: bool = True) -> int:
        """Largest code of any key tuple ``<=`` (or ``<``) the prefix,
        with remaining attributes unconstrained.  May be ``-1`` when no
        tuple qualifies."""
        if not 0 < len(prefix) <= self.num_attributes:
            raise ValueError("prefix length out of range")
        idx = len(prefix) - 1
        uniques = self._uniques[idx]
        side = "right" if inclusive else "left"
        rank = int(np.searchsorted(uniques, prefix[-1], side=side)) - 1
        if rank < 0:
            return self._prefix_code(list(prefix[:-1]), 0) - 1
        base = self._prefix_code(list(prefix[:-1]), rank)
        # all remaining attributes at their maximum rank
        return base + self._multipliers[idx] - 1


def equi_frequency_cuts(codes: np.ndarray, max_bits: int) -> np.ndarray:
    """Equi-depth bin boundaries (inclusive upper codes) for a multiset.

    Produces at most ``2**max_bits`` bins.  When the number of distinct
    codes fits the budget every distinct value receives its own bin
    (Definition 1(iv): unique bins).  Otherwise cuts are placed at
    frequency quantiles of the distribution; duplicate boundaries caused
    by heavy hitters collapse, so skewed data yields fewer but balanced
    bins (the behaviour [4] is after).

    Args:
        codes: observed key codes (any order, duplicates = frequencies).
        max_bits: granularity cap, ``bits(D) <= max_bits``.

    Returns:
        Sorted ``int64`` array of inclusive upper-bound codes, one per
        bin; the last equals ``codes.max()``.
    """
    if max_bits <= 0:
        raise ValueError(f"max_bits must be positive, got {max_bits}")
    if len(codes) == 0:
        raise ValueError("cannot bin an empty value set")
    distinct, counts = np.unique(codes, return_counts=True)
    max_bins = 1 << max_bits
    if len(distinct) <= max_bins:
        return distinct.astype(np.int64)
    cum = np.cumsum(counts)
    total = int(cum[-1])
    quantiles = np.ceil(total * (np.arange(1, max_bins + 1) / max_bins)).astype(np.int64)
    idx = np.searchsorted(cum, quantiles, side="left")
    np.minimum(idx, len(distinct) - 1, out=idx)
    uppers = np.unique(distinct[idx])
    return uppers.astype(np.int64)


def unique_value_bins(codes: np.ndarray) -> Tuple[np.ndarray, int]:
    """One bin per distinct code; returns (uppers, bits)."""
    distinct = np.unique(codes).astype(np.int64)
    return distinct, bits_needed(len(distinct))
