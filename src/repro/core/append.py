"""Incremental maintenance: appending rows to a built BDCC table.

The paper motivates BDCC's flat (non-hierarchical) bin numbering with
maintainability "under updates".  This module delivers that property:
new tuples are binned with the *existing* dimensions (no renumbering —
out-of-domain key values clamp to the nearest bin, keeping the mapping
order-respecting), keyed, and merged into the sorted order; the count
table is rebuilt at the same granularity in one ordered aggregation.

Appending therefore never changes existing groups' identities, only their
counts — co-clustered neighbours remain compatible and no other table is
touched.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..storage.database import Database
from .bdcc_table import BDCCTable
from .bits import scatter_bins_into_key
from .count_table import CountTable
from .histograms import collect_granularity_stats

__all__ = ["append_rows"]


def append_rows(
    bdcc: BDCCTable,
    db: Database,
    new_rows: Dict[str, np.ndarray],
) -> BDCCTable:
    """A new :class:`BDCCTable` with ``new_rows`` merged in.

    Args:
        bdcc: the table built so far (not mutated).
        db: the logical database; the base table's data must *already*
            contain the new rows appended at the end (so that dimension
            paths over foreign keys resolve for them).
        new_rows: the appended columns, used for sanity checks only.

    Returns:
        A rebuilt :class:`BDCCTable` over all ``old + new`` rows: same
        uses, same masks, same count-table granularity; consolidation is
        not re-applied (run Algorithm 1 afresh for that).
    """
    lengths = {len(v) for v in new_rows.values()}
    if len(lengths) != 1:
        raise ValueError("ragged append batch")
    n_new = lengths.pop()
    n_total = db.num_rows(bdcc.table)
    n_old = bdcc.logical_rows
    if n_total != n_old + n_new:
        raise ValueError(
            f"database holds {n_total} rows; expected {n_old} existing "
            f"+ {n_new} appended"
        )

    # bin and key only the delta, against the existing dimensions
    new_indices = np.arange(n_old, n_total, dtype=np.int64)
    new_keys = np.zeros(n_new, dtype=np.uint64)
    for use in bdcc.uses:
        values = db.resolve_path_values(bdcc.table, use.path, use.dimension.key)
        delta_values = [v[n_old:] for v in values]
        bins = use.dimension.bin_of_values(delta_values)
        scatter_bins_into_key(bins, use.dimension.bits, use.mask, new_keys)

    # merge-sort the delta into the existing order (ignore any
    # consolidated duplicates of the old table: rebuild from logical rows)
    old_logical = bdcc.count_table.rows_for_entries(bdcc.all_entries())
    old_source = bdcc.row_source[old_logical]
    old_keys = bdcc.keys[old_logical]
    all_keys = np.concatenate([old_keys, new_keys])
    all_source = np.concatenate([old_source, new_indices])
    order = np.argsort(all_keys, kind="stable")
    sorted_keys = all_keys[order]
    row_source = all_source[order]

    stats = collect_granularity_stats(sorted_keys, bdcc.total_bits)
    count_table = CountTable.from_sorted_keys(
        sorted_keys, bdcc.total_bits, bdcc.granularity
    )
    return BDCCTable(
        table=bdcc.table,
        uses=list(bdcc.uses),
        total_bits=bdcc.total_bits,
        granularity=bdcc.granularity,
        row_source=row_source,
        keys=sorted_keys,
        count_table=count_table,
        stats=stats,
        densest_column=bdcc.densest_column,
        densest_bytes_per_tuple=bdcc.densest_bytes_per_tuple,
        logical_rows=n_total,
    )
