"""Incremental maintenance: appending rows to a built BDCC table.

The paper motivates BDCC's flat (non-hierarchical) bin numbering with
maintainability "under updates".  This module delivers that property:
new tuples are binned with the *existing* dimensions (no renumbering —
out-of-domain key values clamp to the nearest bin, keeping the mapping
order-respecting), keyed, and spliced into the sorted order at their
``searchsorted`` positions; the count table is maintained
*incrementally* — per-group counts gain the new tuples' zone histogram
through :meth:`~repro.core.count_table.CountTable.merge_entries`, the
key column is never re-aggregated.

Appending therefore never changes existing groups' identities, only
their counts — co-clustered neighbours remain compatible and no other
table is touched.  ``rebuild=True`` keeps the original full-rebuild
(sort everything, re-aggregate the count table) as a slow reference
path; the differential oracle runs both and checks they agree.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..storage.database import Database
from .bdcc_table import BDCCTable
from .count_table import CountTable
from .histograms import collect_granularity_stats

__all__ = ["append_rows"]


def append_rows(
    bdcc: BDCCTable,
    db: Database,
    new_rows: Dict[str, np.ndarray],
    rebuild: bool = False,
) -> BDCCTable:
    """A new :class:`BDCCTable` with ``new_rows`` merged in.

    Args:
        bdcc: the table built so far (not mutated).
        db: the logical database; the base table's data must *already*
            contain the new rows appended at the end (so that dimension
            paths over foreign keys resolve for them).
        new_rows: the appended columns, used for sanity checks only.
        rebuild: take the original full-rebuild path (stable sort over
            all keys, count table re-aggregated from the key column)
            instead of the incremental splice — the slow path the
            differential oracle uses as a second reference.

    Returns:
        A :class:`BDCCTable` over all ``old + new`` rows: same uses, same
        masks, same count-table granularity; consolidation is not
        re-applied (run Algorithm 1 afresh for that).
    """
    lengths = {len(v) for v in new_rows.values()}
    if len(lengths) != 1:
        raise ValueError("ragged append batch")
    n_new = lengths.pop()
    n_total = db.num_rows(bdcc.table)
    n_old = bdcc.logical_rows
    if n_total != n_old + n_new:
        raise ValueError(
            f"database holds {n_total} rows; expected {n_old} existing "
            f"+ {n_new} appended"
        )

    # bin and key only the delta, against the existing dimensions
    new_indices = np.arange(n_old, n_total, dtype=np.int64)
    new_keys = bdcc.keys_for_rows(db, new_indices)

    # the logical (un-consolidated) view of the existing table
    old_logical = bdcc.count_table.rows_for_entries(bdcc.all_entries())
    old_source = bdcc.row_source[old_logical]
    old_keys = bdcc.keys[old_logical]

    if rebuild:
        # full rebuild: one stable sort over everything, count table
        # re-aggregated from the merged key column
        all_keys = np.concatenate([old_keys, new_keys])
        all_source = np.concatenate([old_source, new_indices])
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        row_source = all_source[order]
        count_table = CountTable.from_sorted_keys(
            sorted_keys, bdcc.total_bits, bdcc.granularity
        )
    else:
        # incremental splice: new keys enter after their equal old keys
        # (the stable-merge order), grouped by key so equal new keys keep
        # batch order; the count table merges the delta's zone histogram
        # into the existing entries — no re-aggregation of the key column
        batch_order = np.argsort(new_keys, kind="stable")
        insert_keys = new_keys[batch_order]
        insert_source = new_indices[batch_order]
        positions = np.searchsorted(old_keys, insert_keys, side="right")
        sorted_keys = np.insert(old_keys, positions, insert_keys)
        row_source = np.insert(old_source, positions, insert_source)
        shift = np.uint64(bdcc.total_bits - bdcc.granularity)
        added_keys, added_counts = np.unique(insert_keys >> shift, return_counts=True)
        ct = bdcc.count_table
        valid = np.flatnonzero(ct.valid)
        count_table = CountTable.merge_entries(
            bdcc.granularity,
            ct.keys[valid], ct.counts[valid],
            added_keys=added_keys, added_counts=added_counts,
        )

    stats = collect_granularity_stats(sorted_keys, bdcc.total_bits)
    return BDCCTable(
        table=bdcc.table,
        uses=list(bdcc.uses),
        total_bits=bdcc.total_bits,
        granularity=bdcc.granularity,
        row_source=row_source,
        keys=sorted_keys,
        count_table=count_table,
        stats=stats,
        densest_column=bdcc.densest_column,
        densest_bytes_per_tuple=bdcc.densest_bytes_per_tuple,
        logical_rows=n_total,
    )
