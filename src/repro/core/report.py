"""Human-readable design reports: what the advisor decided and why.

``design_report`` renders a :class:`SchemaDesign` (plus, optionally, the
built tables) in the layout of the paper's Section IV tables — the
dimension table and the per-table dimension-use table with interleave
masks — followed by self-tuning details (count-table granularity, group
counts, consolidation).  Used by the CLI (``--design``) and the examples.
"""

from __future__ import annotations

from typing import Dict, Optional

from .advisor import SchemaDesign
from .bdcc_table import BDCCTable
from .bits import mask_to_string

__all__ = ["design_report"]


def design_report(
    design: SchemaDesign,
    built: Optional[Dict[str, BDCCTable]] = None,
) -> str:
    lines = ["BDCC schema design (Algorithm 2)", ""]

    lines.append("dimensions:")
    lines.append(f"  {'name':<12}{'bits':>5}  host(key)")
    for name, bits, table, key in sorted(design.describe_dimensions()):
        lines.append(f"  {name:<12}{bits:>5}  {table}({key})")
    lines.append("")

    lines.append("dimension uses per table:")
    for table, uses in design.table_uses.items():
        if not uses:
            continue
        bdcc = (built or {}).get(table)
        header = f"  {table}"
        if bdcc is not None:
            header += (
                f"  [B={bdcc.total_bits} bits, count table b={bdcc.granularity}, "
                f"{bdcc.count_table.num_groups} groups]"
            )
        lines.append(header)
        total_bits = bdcc.total_bits if bdcc is not None else sum(
            u.dimension.bits for u in uses
        )
        source = bdcc.uses if bdcc is not None else uses
        for use in source:
            mask = (
                mask_to_string(use.mask, total_bits)
                if use.mask
                else "(assigned at build)"
            )
            lines.append(
                f"     {use.dimension.name:<12} {use.path_string():<28} {mask}"
            )
    unclustered = [
        t for t, uses in design.table_uses.items() if not uses
    ]
    if unclustered:
        lines.append("")
        lines.append(f"unclustered tables: {', '.join(sorted(unclustered))}")

    if built:
        lines.append("")
        lines.append("self-tuning (Algorithm 1):")
        for table, bdcc in built.items():
            consolidated = int((~bdcc.count_table.valid).sum())
            missing = bdcc.stats.missing_group_fraction(bdcc.granularity)
            lines.append(
                f"  {table:<10} densest column {bdcc.densest_column} "
                f"({bdcc.densest_bytes_per_tuple:.0f} B/tuple); "
                f"median group {bdcc.stats.median_group_size[bdcc.granularity]:.0f} "
                f"tuples; missing groups {missing:.0%}; "
                f"consolidated entries {consolidated}"
            )
    return "\n".join(lines)
