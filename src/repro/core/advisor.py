"""Algorithm 2: semi-automatic BDCC schema design.

The advisor consumes nothing but classic DDL — declared foreign keys and
``CREATE INDEX`` statements interpreted as hints — and derives a fully
co-clustered schema:

(i)   traverse the schema DAG leaves-first (referenced tables before
      referencing ones); an index hint equal to an outgoing foreign key
      inherits *all* dimension uses of the referenced table with the FK
      identifier prepended to their paths; any other hint introduces a
      new dimension on its columns;
(ii)  create each dimension once, equi-frequency binned over the union of
      key values of all tables using it (each resolved over its path),
      granularity capped (``bits(D) <= max_dimension_bits``, paper: 13);
(iii) BDCC-cluster every table with at least one use via Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog import IndexHint, Schema
from ..storage.database import Database
from .bdcc_table import BDCCBuildConfig, BDCCTable, build_bdcc_table
from .binning import KeyEncoder, equi_frequency_cuts
from .dimension import Dimension
from .dimension_use import DimensionUse

__all__ = ["AdvisorConfig", "SchemaDesign", "SchemaAdvisor"]


@dataclass
class AdvisorConfig:
    """Advisor parameters (paper defaults)."""

    #: granularity cap for created dimensions, the paper's bits(D) <= 13.
    max_dimension_bits: int = 13
    #: cap on dimension uses per table (the paper's noted limitation on
    #: very large schemas: realistically 5-8 uses). None = unlimited.
    max_uses_per_table: Optional[int] = None
    #: Algorithm 1 knobs used in phase (iii).
    build: BDCCBuildConfig = field(default_factory=BDCCBuildConfig)


@dataclass
class SchemaDesign:
    """The advisor's output: dimensions plus per-table dimension uses."""

    dimensions: Dict[str, Dimension]
    table_uses: Dict[str, List[DimensionUse]]

    def uses_for(self, table: str) -> List[DimensionUse]:
        return self.table_uses.get(table, [])

    def clustered_tables(self) -> List[str]:
        return [t for t, uses in self.table_uses.items() if uses]

    def describe_dimensions(self) -> List[Tuple[str, int, str, str]]:
        """Rows of the paper's dimension table:
        (dimension, bits, host table, key)."""
        rows = []
        for dim in self.dimensions.values():
            rows.append((dim.name, dim.bits, dim.table, ",".join(dim.key)))
        return rows


@dataclass
class _PendingDimension:
    """A dimension discovered in phase (i), created in phase (ii)."""

    name: str
    table: str
    key: Tuple[str, ...]
    #: (using_table, path) pairs for the usage-union histogram.
    usages: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)


def _derive_dimension_name(hint: IndexHint) -> str:
    if hint.dimension_name:
        return hint.dimension_name
    return f"D_{hint.table.upper()}_{hint.columns[-1].upper()}"


class SchemaAdvisor:
    """Runs Algorithm 2 against a schema and its data."""

    def __init__(self, schema: Schema, config: Optional[AdvisorConfig] = None):
        self.schema = schema
        self.config = config or AdvisorConfig()

    # ------------------------------------------------------------ phase i
    def discover(self) -> Tuple[Dict[str, _PendingDimension], Dict[str, List[Tuple[str, Tuple[str, ...]]]]]:
        """Traverse the DAG and collect dimensions and per-table uses.

        Returns pending dimensions keyed by name and, per table, the list
        of ``(dimension_name, path)`` uses in discovery order.
        """
        pending: Dict[str, _PendingDimension] = {}
        uses: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
        by_identity: Dict[Tuple[str, Tuple[str, ...]], str] = {}

        for table in self.schema.leaves_first_order():
            table_uses: List[Tuple[str, Tuple[str, ...]]] = []
            for hint in self.schema.hints_for(table):
                fk = self.schema.find_foreign_key(table, hint.columns)
                if fk is not None:
                    # inherit the referenced table's uses, FK id in front
                    for dim_name, path in uses.get(fk.parent_table, []):
                        table_uses.append((dim_name, (fk.name,) + path))
                else:
                    identity = (table, tuple(hint.columns))
                    name = by_identity.get(identity)
                    if name is None:
                        name = _derive_dimension_name(hint)
                        if name in pending:
                            raise ValueError(
                                f"dimension name collision: {name!r} hinted on "
                                f"both {pending[name].table!r} and {table!r}"
                            )
                        pending[name] = _PendingDimension(name, table, tuple(hint.columns))
                        by_identity[identity] = name
                    table_uses.append((name, ()))
            if self.config.max_uses_per_table is not None:
                table_uses = table_uses[: self.config.max_uses_per_table]
            uses[table] = table_uses

        for table, table_uses in uses.items():
            for dim_name, path in table_uses:
                pending[dim_name].usages.append((table, path))
        return pending, uses

    # ----------------------------------------------------------- phase ii
    def create_dimensions(
        self, db: Database, pending: Dict[str, _PendingDimension]
    ) -> Dict[str, Dimension]:
        """Create each dimension from the union of key values across all
        tables that use it, joined over their dimension paths
        (Algorithm 2(ii), standing in for tech report [4])."""
        dimensions: Dict[str, Dimension] = {}
        for name, spec in pending.items():
            host_values = [db.column(spec.table, attr) for attr in spec.key]
            union_parts: List[List[np.ndarray]] = []
            for using_table, path in spec.usages:
                union_parts.append(db.resolve_path_values(using_table, path, spec.key))
            if union_parts:
                weights = [
                    np.concatenate([part[i] for part in union_parts])
                    for i in range(len(spec.key))
                ]
            else:
                weights = None
            dimensions[name] = Dimension.create(
                name=name,
                table=spec.table,
                key=spec.key,
                attribute_values=host_values,
                max_bits=self.config.max_dimension_bits,
                weights_values=weights,
            )
        return dimensions

    # -------------------------------------------------------------- design
    def design(self, db: Database) -> SchemaDesign:
        """Phases (i) + (ii): a schema design without materialisation."""
        pending, raw_uses = self.discover()
        dimensions = self.create_dimensions(db, pending)
        table_uses: Dict[str, List[DimensionUse]] = {}
        for table, entries in raw_uses.items():
            table_uses[table] = [
                DimensionUse(dimensions[dim_name], path) for dim_name, path in entries
            ]
        return SchemaDesign(dimensions=dimensions, table_uses=table_uses)

    def build(self, db: Database, design: Optional[SchemaDesign] = None) -> Dict[str, BDCCTable]:
        """Phase (iii): BDCC-cluster every table with uses (Algorithm 1)."""
        if design is None:
            design = self.design(db)
        built: Dict[str, BDCCTable] = {}
        for table in self.schema.table_names:
            uses = design.uses_for(table)
            if not uses:
                continue
            built[table] = build_bdcc_table(db, table, uses, self.config.build)
        return built
