"""Closed-loop query and refresh stream sources for the serving layer.

A *query stream* is a session submitting one query at a time: the next
item is submitted the instant the previous one completes (the TPC-H
throughput test's closed-loop shape).  A *refresh stream* is the same
shape over update batches: the next batch is issued when the previous
commit's charged work finishes (background compaction does not block
it).

Items are materialized **lazily, at submission/commit processing
time**: generated queries and update batches sample literals from the
*current* database content, so the item a stream yields depends on
every commit already applied — which is deterministic because the
engine processes events in a single deterministic order, and which the
differential oracle replays by regenerating the same ``(seed, index)``
sequence in the same recorded order against an identical database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..execution.expressions import Col, InList
from ..planner.executor import ExecutionOptions, Executor
from ..storage.database import Database
from ..updates.session import UpdateSession
from ..workload.generator import PlanGenerator
from ..workload.updates import UpdateGenerator

__all__ = [
    "QueryItem",
    "QueryStream",
    "PlanListStream",
    "GeneratedQueryStream",
    "RefreshStream",
    "GeneratedRefreshStream",
    "TpchRefreshStream",
    "capture_tpch_items",
]


@dataclass
class QueryItem:
    """One submittable query: a logical plan plus its label."""

    plan: object
    description: str


class QueryStream:
    """A named, finite, closed-loop source of queries."""

    def __init__(self, name: str):
        self.name = name

    def item(self, index: int) -> Optional[QueryItem]:
        """The ``index``-th query, or ``None`` when the stream is
        exhausted.  Called exactly once per index, in submission
        order."""
        raise NotImplementedError


class PlanListStream(QueryStream):
    """A fixed list of pre-built logical plans (TPC-H throughput
    streams use this over the captured per-stage plans)."""

    def __init__(
        self,
        name: str,
        plans: Sequence,
        descriptions: Optional[Sequence[str]] = None,
    ):
        super().__init__(name)
        self._plans = list(plans)
        if descriptions is None:
            descriptions = [f"{name}[{i}]" for i in range(len(self._plans))]
        self._descriptions = list(descriptions)

    def item(self, index: int) -> Optional[QueryItem]:
        if index >= len(self._plans):
            return None
        return QueryItem(self._plans[index], self._descriptions[index])


class GeneratedQueryStream(QueryStream):
    """Seeded random queries (:class:`~repro.workload.generator.PlanGenerator`)
    drawn lazily against the stream's database — plan ``index`` samples
    the data as of its submission instant."""

    def __init__(self, name: str, db: Database, seed: int, count: int):
        super().__init__(name)
        self.seed = int(seed)
        self.count = int(count)
        self._generator = PlanGenerator(db)

    def item(self, index: int) -> Optional[QueryItem]:
        if index >= self.count:
            return None
        generated = self._generator.generate(self.seed, index)
        return QueryItem(generated.plan, generated.description)


# ------------------------------------------------------------- refresh
class RefreshStream:
    """A named, finite, closed-loop source of update batches."""

    def __init__(self, name: str):
        self.name = name

    def apply(self, index: int, session: UpdateSession) -> Optional[str]:
        """Buffer the ``index``-th batch into ``session`` (the engine
        commits it), returning its description — or ``None`` when the
        stream is exhausted.  Called exactly once per index, in commit
        order."""
        raise NotImplementedError


class GeneratedRefreshStream(RefreshStream):
    """Seeded random update batches
    (:class:`~repro.workload.updates.UpdateGenerator`), drawn lazily at
    commit time like generated queries are at submission time."""

    def __init__(self, name: str, db: Database, seed: int, rounds: int):
        super().__init__(name)
        self.seed = int(seed)
        self.rounds = int(rounds)
        self._generator = UpdateGenerator(db)

    def apply(self, index: int, session: UpdateSession) -> Optional[str]:
        if index >= self.rounds:
            return None
        batch = self._generator.generate(self.seed, index)
        for table, rows in batch.inserts:
            session.insert_rows(table, rows)
        for table, predicate in batch.deletes:
            session.delete_where(table, predicate)
        return batch.description


class TpchRefreshStream(RefreshStream):
    """TPC-H RF1/RF2 pairs: even indices insert orders+lineitems, odd
    indices delete an equal number of existing orders with their
    lineitems — ``pairs`` pairs in total, batch size from
    :func:`~repro.tpch.refresh.refresh_pair_size`."""

    def __init__(self, name: str, db: Database, seed: int, pairs: int):
        super().__init__(name)
        self.db = db
        self.pairs = int(pairs)
        self._rng = np.random.default_rng(seed)

    def apply(self, index: int, session: UpdateSession) -> Optional[str]:
        from ..tpch.refresh import generate_rf1, refresh_pair_size, rf2_order_keys

        if index >= 2 * self.pairs:
            return None
        sf = self.db.scale_factor or 0.01
        batch = refresh_pair_size(sf)
        if index % 2 == 0:
            orders_rows, lineitem_rows = generate_rf1(self.db, self._rng, batch)
            session.insert_rows("orders", orders_rows)
            session.insert_rows("lineitem", lineitem_rows)
            return f"RF1 pair {index // 2 + 1} (+{batch} orders)"
        doomed = rf2_order_keys(self.db, self._rng, batch)
        session.delete_where("lineitem", InList(Col("l_orderkey"), doomed.tolist()))
        session.delete_where("orders", InList(Col("o_orderkey"), doomed.tolist()))
        return f"RF2 pair {index // 2 + 1} (-{len(doomed)} orders)"


# ----------------------------------------------------- TPC-H capture
class _CapturingRunner:
    """A :class:`~repro.tpch.runner.QueryRunner`-shaped probe that
    records each stage's *logical* plan while executing it (multi-stage
    queries parametrize stage N+1 from stage N's result, so capture
    must actually run the stages)."""

    def __init__(self, executor: Executor):
        self.executor = executor
        self.logical_plans: List[object] = []

    @property
    def database(self) -> Database:
        return self.executor.pdb.database

    @property
    def scale_factor(self) -> float:
        sf = self.database.scale_factor
        return 1.0 if sf is None else sf

    def execute(self, plan):
        self.logical_plans.append(plan)
        return self.executor.execute(plan)


def capture_tpch_items(
    pdb,
    queries: Dict[str, Callable],
    disk=None,
    costs=None,
) -> List[QueryItem]:
    """Per-stage logical plans of TPC-H query functions, captured by
    running each once serially.  Multi-stage queries (Q11/Q15/Q22)
    expand into one item per stage, labelled ``Q15/s2``; their later
    stages carry literals computed from the capture-time state, which
    is exact for read-only serving and an accepted approximation when
    refresh streams run concurrently (the serving differential uses
    generated streams, which are re-drawn per submission instead)."""
    items: List[QueryItem] = []
    options = ExecutionOptions(workers=1)
    with Executor(pdb, disk=disk, costs=costs, options=options) as executor:
        for qname, fn in queries.items():
            runner = _CapturingRunner(executor)
            fn(runner)
            stages = runner.logical_plans
            for position, plan in enumerate(stages):
                label = (
                    qname if len(stages) == 1
                    else f"{qname}/s{position + 1}"
                )
                items.append(QueryItem(plan, label))
    return items
