"""The serving loop: N closed-loop streams on one shared timeline.

The engine keeps the repo's execute/schedule split at serving scale.
Events (query submissions, refresh commits) live in a deterministic
priority queue ordered by ``(simulated time, kind, insertion order)``
— commits rank before submissions at equal instants, and work
completions on the shared :class:`~repro.parallel.scheduler.TimelineSimulator`
are always processed before external events at the same instant.  When
an event is processed:

* **submit** — the stream draws its next item (generated queries sample
  literals from the *current* data, so generation order matters and is
  logged), a ticket joins the admission queue, and the policy fills
  free multiprogramming slots;
* **admit** — the query pins an :class:`~repro.serving.snapshot.EpochSnapshot`
  and is **physically executed right now**, in program order, before
  any later commit mutates storage — that is the MVCC mechanism: reads
  at the admission instant see exactly the pinned epochs, with zero
  copying.  Its fragments' *charged* costs then interleave with every
  other query's on the shared simulated timeline; the query completes
  when its final fragment's slot ends;
* **commit** — the refresh batch is applied and becomes visible
  *atomically at the issue instant* (the write-ahead-log view: later
  admissions see it, in-flight queries — already executed — do not).
  Its charged work (binning CPU + delta-write IO) is scheduled on the
  pool afterward; the stream's next batch waits for that work, while
  compaction runs as a separate background unit that blocks nothing —
  charged to whatever worker is idle.

Determinism: given the same streams, seed, policy and worker count, the
event order, the interleaving, every instant and every charged second
are identical across runs (``ServingReport.fingerprint`` pins this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..execution.cost import DEFAULT_COSTS, CostModel
from ..execution.metrics import ExecutionMetrics
from ..execution.operators import ExecutionContext, walk_physical
from ..observe.registry import REGISTRY
from ..planner.executor import ExecutionOptions, Executor
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import PAPER_SSD, DiskModel
from ..updates.compaction import CompactionPolicy
from ..updates.session import UpdateSession
from .metrics import CommitRecord, QueryRecord, ServingReport, WorkSlot
from .policies import AdmissionPolicy, create_policy
from .snapshot import EpochSnapshot
from .streams import QueryStream, RefreshStream
from ..parallel.scheduler import FragmentWork, TimelineSimulator

__all__ = ["QueryTicket", "ServingEngine"]

_EVENT_COMMIT = 0
_EVENT_SUBMIT = 1


@dataclass
class QueryTicket:
    """A submitted-but-not-yet-admitted query in the waiting queue."""

    stream: str
    seq: int
    submit_seq: int
    submitted: float
    plan: object
    description: str
    estimated_work: float = 0.0


@dataclass
class _WorkInfo:
    """What one timeline work unit belongs to."""

    kind: str                     # "fragment" | "commit" | "compaction"
    label: str
    stream: str
    io_seconds: float
    cpu_seconds: float
    finish: Optional[Callable[[float], None]] = None


class ServingEngine:
    """Serves concurrent query and refresh streams over one physical
    database on a shared simulated worker pool."""

    def __init__(
        self,
        pdb: PhysicalDatabase,
        disk: Optional[DiskModel] = None,
        costs: Optional[CostModel] = None,
        options: Optional[ExecutionOptions] = None,
        policy: object = "fifo",
        max_concurrent: Optional[int] = None,
        compaction_policy: Optional[CompactionPolicy] = None,
        keep_results: bool = True,
    ):
        self.pdb = pdb
        self.disk = disk or PAPER_SSD
        self.costs = costs or DEFAULT_COSTS
        self.options = options or ExecutionOptions()
        self.executor = Executor(
            pdb, disk=self.disk, costs=self.costs, options=self.options
        )
        self.policy: AdmissionPolicy = create_policy(policy)
        self.workers = max(int(self.options.workers), 1)
        #: multiprogramming limit: how many queries may be in flight at
        #: once; defaults to the pool size, so admission pressure (and
        #: with it the fairness policy) kicks in exactly when the pool
        #: would be oversubscribed.
        self.max_concurrent = (
            int(max_concurrent) if max_concurrent is not None else self.workers
        )
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.compaction_policy = compaction_policy
        self.keep_results = bool(keep_results)

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- serve
    def serve(
        self,
        query_streams: Sequence[QueryStream],
        refresh_streams: Sequence[RefreshStream] = (),
        observer: Optional[Callable[[QueryRecord], None]] = None,
    ) -> ServingReport:
        """Run every stream to exhaustion; returns the full report."""
        names = [s.name for s in list(query_streams) + list(refresh_streams)]
        if len(set(names)) != len(names):
            raise ValueError(f"stream names must be unique: {names}")

        self.policy.reset()
        report = ServingReport(
            scheme=self.pdb.scheme_name,
            policy=self.policy.name,
            workers=self.workers,
            max_concurrent=self.max_concurrent,
        )
        sim = TimelineSimulator(
            self.workers, stream_rate=self.disk.stream_rate
        )
        state = _ServeState(
            engine=self, sim=sim, report=report, observer=observer
        )
        for stream in query_streams:
            state.push(0.0, _EVENT_SUBMIT, stream, 0)
        for stream in refresh_streams:
            state.push(0.0, _EVENT_COMMIT, stream, 0)
        state.run()
        report.makespan_seconds = sim.makespan
        report.timeline = state.timeline()
        return report


@dataclass
class _ServeState:
    """One serve() run's mutable state (kept off the engine so engines
    are reusable and the loop reads as plain functions)."""

    engine: ServingEngine
    sim: TimelineSimulator
    report: ServingReport
    observer: Optional[Callable[[QueryRecord], None]]
    heap: list = field(default_factory=list)
    waiting: List[QueryTicket] = field(default_factory=list)
    inflight: int = 0
    next_event_seq: int = 0
    next_submit_seq: int = 0
    next_work_id: int = 0
    work_info: Dict[int, _WorkInfo] = field(default_factory=dict)
    streams: Dict[str, QueryStream] = field(default_factory=dict)

    # ---------------------------------------------------------- plumbing
    def push(self, when: float, kind: int, stream, index: int) -> None:
        heapq.heappush(
            self.heap, (when, kind, self.next_event_seq, stream, index)
        )
        self.next_event_seq += 1

    def new_work(
        self, info: _WorkInfo, depends_on: Tuple[int, ...] = ()
    ) -> FragmentWork:
        index = self.next_work_id
        self.next_work_id += 1
        self.work_info[index] = info
        return FragmentWork(
            index=index,
            io_seconds=info.io_seconds,
            cpu_seconds=info.cpu_seconds,
            depends_on=depends_on,
        )

    def log(self, kind: str, stream: str, index: int) -> None:
        self.report.events.append(
            {"kind": kind, "stream": stream, "index": index,
             "seconds": self.sim.now}
        )

    # -------------------------------------------------------------- loop
    def run(self) -> None:
        while True:
            t_next = self.sim.next_event_time()
            t_ext = self.heap[0][0] if self.heap else None
            if t_ext is None and t_next is None:
                if self.waiting:
                    raise RuntimeError(
                        "serving deadlock: queries waiting with no "
                        "in-flight work or pending events"
                    )
                return
            if t_ext is not None and (t_next is None or t_ext <= t_next):
                completed = self.sim.run_until(t_ext)
                if completed:
                    # completions at or before the external instant are
                    # handled first; their consequences (closed-loop
                    # submissions) re-enter the heap and re-sort
                    self.on_completions(completed)
                    self.try_admit()
                    continue
                when, kind, _, stream, index = heapq.heappop(self.heap)
                if kind == _EVENT_COMMIT:
                    self.process_commit(stream, index)
                else:
                    self.process_submit(stream, index)
                self.try_admit()
            else:
                completed = self.sim.run_until(t_next)
                if completed:
                    self.on_completions(completed)
                self.try_admit()

    def on_completions(self, completed: List[int]) -> None:
        for index in completed:
            info = self.work_info[index]
            if info.finish is not None:
                info.finish(self.sim.now)

    # ------------------------------------------------------- submissions
    def process_submit(self, stream: QueryStream, index: int) -> None:
        item = stream.item(index)
        if item is None:
            return  # stream exhausted: its closed loop ends here
        self.log("generate", stream.name, index)
        ticket = QueryTicket(
            stream=stream.name,
            seq=index,
            submit_seq=self.next_submit_seq,
            submitted=self.sim.now,
            plan=item.plan,
            description=item.description,
        )
        self.next_submit_seq += 1
        if getattr(self.engine.policy, "needs_estimate", False):
            ticket.estimated_work = self.estimate(item.plan)
        self.waiting.append(ticket)
        self.streams[stream.name] = stream
        REGISTRY.inc("serving.submitted")

    def estimate(self, plan) -> float:
        """Pure pre-execution work proxy: ``est_rows`` summed over the
        lowered physical plan (cached lowering; runs nothing)."""
        pplan = self.engine.executor.lower(plan)
        return float(
            sum(
                float(getattr(op, "est_rows", 0) or 0)
                for op in walk_physical(pplan.root)
            )
        )

    def try_admit(self) -> None:
        while self.waiting and self.inflight < self.engine.max_concurrent:
            position = self.engine.policy.select(self.waiting)
            ticket = self.waiting.pop(position)
            self.engine.policy.on_admitted(ticket)
            self.admit(ticket)

    # --------------------------------------------------------- admission
    def admit(self, ticket: QueryTicket) -> None:
        engine = self.engine
        snapshot = EpochSnapshot.pin(engine.pdb)
        self.log("execute", ticket.stream, ticket.seq)
        REGISTRY.inc("serving.admitted")

        pplan = engine.executor.lower(ticket.plan)
        parallel = None
        if engine.options.workers > 1:
            candidate = engine.executor.parallel_plan(pplan)
            if candidate.is_parallel:
                parallel = candidate

        merged = ExecutionMetrics()
        merged.workers = engine.workers
        admit_now = self.sim.now
        works: List[FragmentWork] = []
        if parallel is not None:
            results, fragment_metrics = engine.executor.backend().execute_fragments(
                parallel, engine.disk, engine.costs,
                profile=engine.options.profile,
            )
            relation = results[parallel.final.index]
            local_to_global: Dict[int, int] = {}
            final_fragment = parallel.final
            for fragment in parallel.fragments:
                metrics = fragment_metrics[fragment.index]
                merged.charge_io(
                    metrics.io_bytes, metrics.io_accesses, metrics.io_seconds
                )
                merged.charge_cpu(metrics.cpu_seconds)
                merged.rows_scanned += metrics.rows_scanned
                merged.delta_rows_scanned += metrics.delta_rows_scanned
                label = f"{ticket.description} f{fragment.index}"
                info = _WorkInfo(
                    kind="fragment", label=label, stream=ticket.stream,
                    io_seconds=metrics.io_seconds,
                    cpu_seconds=metrics.cpu_seconds,
                )
                work = self.new_work(
                    info,
                    depends_on=tuple(
                        local_to_global[dep] for dep in fragment.depends_on
                    ),
                )
                local_to_global[fragment.index] = work.index
                works.append(work)
                if fragment is final_fragment:
                    info.finish = self.query_finisher(
                        ticket, snapshot, relation, merged,
                        admit_now, len(parallel.fragments),
                        reorders=parallel.reorders,
                        reaggregates=parallel.reaggregates,
                    )
        else:
            metrics = ExecutionMetrics()
            ctx = ExecutionContext(engine.disk, engine.costs, metrics)
            relation = pplan.root.run(ctx)
            ctx.release_all()
            merged.charge_io(
                metrics.io_bytes, metrics.io_accesses, metrics.io_seconds
            )
            merged.charge_cpu(metrics.cpu_seconds)
            merged.rows_scanned += metrics.rows_scanned
            merged.delta_rows_scanned += metrics.delta_rows_scanned
            info = _WorkInfo(
                kind="fragment", label=ticket.description,
                stream=ticket.stream,
                io_seconds=metrics.io_seconds,
                cpu_seconds=metrics.cpu_seconds,
            )
            info.finish = self.query_finisher(
                ticket, snapshot, relation, merged, admit_now, 1,
                reorders=False, reaggregates=False,
            )
            works.append(self.new_work(info))

        # reads must not move epochs: the MVCC invariant, checked hot
        snapshot.check(engine.pdb)
        merged.rows_produced = relation.num_rows
        self.inflight += 1
        self.sim.add_works(works)

    def query_finisher(
        self,
        ticket: QueryTicket,
        snapshot: EpochSnapshot,
        relation,
        merged: ExecutionMetrics,
        admit_seconds: float,
        fragment_count: int,
        reorders: bool,
        reaggregates: bool,
    ) -> Callable[[float], None]:
        def finish(now: float) -> None:
            merged.makespan_seconds = now - admit_seconds
            record = QueryRecord(
                stream=ticket.stream,
                seq=ticket.seq,
                global_seq=ticket.submit_seq,
                description=ticket.description,
                submit_seconds=ticket.submitted,
                admit_seconds=admit_seconds,
                finish_seconds=now,
                snapshot=snapshot,
                reorders=reorders,
                reaggregates=reaggregates,
                rows=relation.num_rows,
                fragment_count=fragment_count,
                metrics=merged,
                relation=relation if self.engine.keep_results else None,
            )
            self.report.queries.append(record)
            self.inflight -= 1
            REGISTRY.inc("serving.completed")
            if self.observer is not None:
                self.observer(record)
            # closed loop: the stream submits its next query now
            stream = self.streams.get(ticket.stream)
            if stream is not None:
                self.push(now, _EVENT_SUBMIT, stream, ticket.seq + 1)

        return finish

    # ----------------------------------------------------------- commits
    def process_commit(self, stream: RefreshStream, index: int) -> None:
        engine = self.engine
        session = UpdateSession(
            engine.pdb,
            policy=engine.compaction_policy,
            disk=engine.disk,
            costs=engine.costs,
        )
        description = stream.apply(index, session)
        if description is None:
            return  # refresh stream exhausted
        self.log("commit", stream.name, index)
        result = session.commit()
        metrics = result.scheme_metrics.get(
            engine.pdb.scheme_name, ExecutionMetrics()
        )
        record = CommitRecord(
            stream=stream.name,
            seq=index,
            description=description,
            issue_seconds=self.sim.now,
            work_seconds=metrics.total_seconds,
            compaction_seconds=metrics.compaction_seconds,
            epochs=dict(result.epochs),
            rows_inserted=sum(result.inserted.values()),
            rows_deleted=sum(result.deleted.values()),
            compacted_tables=result.compacted_tables(),
        )
        self.report.commits.append(record)
        REGISTRY.inc("serving.commits")

        info = _WorkInfo(
            kind="commit", label=f"{stream.name}: {description}",
            stream=stream.name,
            io_seconds=metrics.io_seconds,
            cpu_seconds=metrics.cpu_seconds,
        )

        def commit_work_done(now: float) -> None:
            record.work_end_seconds = now
            # closed loop: the next refresh batch waits for the commit
            # *work*, never for background compaction
            self.push(now, _EVENT_COMMIT, stream, index + 1)

        info.finish = commit_work_done
        works = [self.new_work(info)]
        if metrics.compaction_seconds > 0.0:
            # compaction is rewrite-dominated: modelled as IO so it
            # contends for disk streams, on whichever worker is idle
            works.append(
                self.new_work(
                    _WorkInfo(
                        kind="compaction",
                        label=f"{stream.name}: compaction",
                        stream=stream.name,
                        io_seconds=metrics.compaction_seconds,
                        cpu_seconds=0.0,
                    )
                )
            )
            REGISTRY.inc("serving.background_compactions")
        self.sim.add_works(works)

    # ------------------------------------------------------------ output
    def timeline(self) -> List[WorkSlot]:
        slots = []
        for index in sorted(self.sim.slots):
            slot = self.sim.slots[index]
            info = self.work_info[index]
            slots.append(
                WorkSlot(
                    index=index,
                    kind=info.kind,
                    label=info.label,
                    stream=info.stream,
                    worker=slot.worker,
                    ready_seconds=slot.ready_seconds,
                    start_seconds=slot.start_seconds,
                    io_end_seconds=slot.io_end_seconds,
                    end_seconds=slot.end_seconds,
                    io_seconds=info.io_seconds,
                    cpu_seconds=info.cpu_seconds,
                )
            )
        return slots
