"""Concurrent multi-query serving: the ninth pillar.

Everything below this package serves *one* query at a time; production
systems serve streams of them — the TPC-H throughput test's N parallel
query streams plus refresh streams, all sharing one worker pool and one
disk.  This package adds that layer without giving up the engine's core
property (results computed exactly once, time modelled deterministically):

* :mod:`repro.serving.policies` — admission (fairness) policies: FIFO,
  round-robin per stream, shortest-remaining-makespan;
* :mod:`repro.serving.snapshot` — MVCC-style epoch snapshots: each
  query pins the table epochs it was admitted under, so refresh-stream
  commits and background compaction proceed concurrently with readers;
* :mod:`repro.serving.streams` — closed-loop query/refresh stream
  sources (generated workloads, TPC-H throughput and RF1/RF2 streams);
* :mod:`repro.serving.engine` — the event-driven serving loop over the
  shared :class:`~repro.parallel.scheduler.TimelineSimulator`;
* :mod:`repro.serving.metrics` — per-stream latency percentiles,
  aggregate QPS, worker accounting, Perfetto lanes per stream;
* :mod:`repro.serving.differential` — the serving-vs-solo oracle: every
  concurrently served query must match its solo run against the pinned
  epoch snapshot bit-for-bit (or order-insensitively where the plan's
  contracts allow).

See ``docs/serving.md`` for the model and its invariants.
"""

from .differential import ServingDifferentialReport, run_serving_differential
from .engine import ServingEngine
from .metrics import QueryRecord, ServingReport, StreamStats, serving_trace
from .policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    ShortestRemainingPolicy,
    create_policy,
)
from .snapshot import EpochSnapshot, SnapshotViolation
from .streams import (
    GeneratedQueryStream,
    GeneratedRefreshStream,
    PlanListStream,
    QueryStream,
    RefreshStream,
    TpchRefreshStream,
    capture_tpch_items,
)

__all__ = [
    "ServingEngine",
    "ServingReport",
    "StreamStats",
    "QueryRecord",
    "serving_trace",
    "AdmissionPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "ShortestRemainingPolicy",
    "POLICY_NAMES",
    "create_policy",
    "EpochSnapshot",
    "SnapshotViolation",
    "QueryStream",
    "PlanListStream",
    "GeneratedQueryStream",
    "RefreshStream",
    "GeneratedRefreshStream",
    "TpchRefreshStream",
    "capture_tpch_items",
    "ServingDifferentialReport",
    "run_serving_differential",
]
