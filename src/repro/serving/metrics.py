"""Per-stream serving metrics: latency percentiles, QPS, worker
accounting, and the Perfetto view of a serving run.

Everything here is derived from the engine's deterministic outputs
(simulated instants and charged seconds), so two runs with the same
seed, policy and streams produce byte-identical reports — the
admission-determinism tests compare :meth:`ServingReport.fingerprint`
across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..execution.metrics import ExecutionMetrics
from .snapshot import EpochSnapshot

__all__ = [
    "percentile",
    "QueryRecord",
    "CommitRecord",
    "WorkSlot",
    "StreamStats",
    "ServingReport",
    "serving_trace",
]


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (deterministic, no
    interpolation); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(len(ordered) * fraction + 0.999999) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


@dataclass
class QueryRecord:
    """One served query's life cycle on the simulated clock."""

    stream: str
    seq: int                      # index within its stream
    global_seq: int               # global submission sequence
    description: str
    submit_seconds: float
    admit_seconds: float
    finish_seconds: float
    snapshot: EpochSnapshot
    reorders: bool                # plan contract: gather may reorder
    reaggregates: bool            # plan contract: merge-agg may re-add
    rows: int
    fragment_count: int
    metrics: ExecutionMetrics
    relation: Optional[object] = None   # kept when the engine is asked to

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.submit_seconds

    @property
    def queue_seconds(self) -> float:
        return self.admit_seconds - self.submit_seconds

    @property
    def service_seconds(self) -> float:
        return self.finish_seconds - self.admit_seconds


@dataclass
class CommitRecord:
    """One refresh-stream commit: visible at issue, charged afterward."""

    stream: str
    seq: int
    description: str
    issue_seconds: float          # visibility instant
    work_end_seconds: float = 0.0
    work_seconds: float = 0.0     # charged binning CPU + delta-write IO
    compaction_seconds: float = 0.0
    epochs: Dict[str, int] = field(default_factory=dict)
    rows_inserted: int = 0
    rows_deleted: int = 0
    compacted_tables: List[str] = field(default_factory=list)


@dataclass
class WorkSlot:
    """One unit on the shared timeline (fragment, commit, compaction)."""

    index: int
    kind: str                     # "fragment" | "commit" | "compaction"
    label: str
    stream: str
    worker: int
    ready_seconds: float
    start_seconds: float
    io_end_seconds: float
    end_seconds: float
    io_seconds: float
    cpu_seconds: float


@dataclass
class StreamStats:
    """Aggregates of one stream's finished queries."""

    name: str
    queries: int
    latencies: List[float]
    queue_delays: List[float]
    first_submit_seconds: float
    last_finish_seconds: float

    @property
    def mean_latency_seconds(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def p50_latency_seconds(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p95_latency_seconds(self) -> float:
        return percentile(self.latencies, 0.95)

    @property
    def max_latency_seconds(self) -> float:
        return max(self.latencies, default=0.0)

    @property
    def mean_queue_seconds(self) -> float:
        return (
            sum(self.queue_delays) / len(self.queue_delays)
            if self.queue_delays else 0.0
        )

    @property
    def qps(self) -> float:
        window = self.last_finish_seconds - self.first_submit_seconds
        return self.queries / window if window > 0 else 0.0


@dataclass
class ServingReport:
    """Everything one :meth:`~repro.serving.engine.ServingEngine.serve`
    run produced: per-query records, commit records, the shared
    timeline, and the deterministic event log the differential oracle
    replays."""

    scheme: str
    policy: str
    workers: int
    max_concurrent: int
    makespan_seconds: float = 0.0
    queries: List[QueryRecord] = field(default_factory=list)
    commits: List[CommitRecord] = field(default_factory=list)
    timeline: List[WorkSlot] = field(default_factory=list)
    #: ordered log of every instant the engine touched the database:
    #: ``generate`` (item drawn at submission), ``commit`` (batch applied,
    #: visibility), ``execute`` (query physically run at admission).
    events: List[dict] = field(default_factory=list)

    # ------------------------------------------------------- aggregates
    @property
    def queries_per_second(self) -> float:
        return (
            len(self.queries) / self.makespan_seconds
            if self.makespan_seconds > 0 else 0.0
        )

    @property
    def worker_busy_seconds(self) -> float:
        return sum(s.end_seconds - s.start_seconds for s in self.timeline)

    @property
    def utilization(self) -> float:
        denom = self.workers * self.makespan_seconds
        return self.worker_busy_seconds / denom if denom > 0 else 0.0

    def stream_stats(self) -> Dict[str, StreamStats]:
        per: Dict[str, List[QueryRecord]] = {}
        for record in self.queries:
            per.setdefault(record.stream, []).append(record)
        return {
            name: StreamStats(
                name=name,
                queries=len(records),
                latencies=[r.latency_seconds for r in records],
                queue_delays=[r.queue_seconds for r in records],
                first_submit_seconds=min(r.submit_seconds for r in records),
                last_finish_seconds=max(r.finish_seconds for r in records),
            )
            for name, records in sorted(per.items())
        }

    # ---------------------------------------------------- serialization
    def fingerprint(self) -> tuple:
        """A deterministic digest of the interleaving and metrics —
        equal across runs iff the runs were identical (results
        excluded; the differential compares those)."""
        return (
            self.scheme, self.policy, self.workers, self.max_concurrent,
            self.makespan_seconds,
            tuple(
                (r.stream, r.seq, r.submit_seconds, r.admit_seconds,
                 r.finish_seconds, r.rows, r.fragment_count,
                 r.metrics.io_seconds, r.metrics.cpu_seconds)
                for r in self.queries
            ),
            tuple(
                (c.stream, c.seq, c.issue_seconds, c.work_end_seconds,
                 c.work_seconds, c.compaction_seconds)
                for c in self.commits
            ),
            tuple(
                (s.index, s.kind, s.worker, s.start_seconds, s.end_seconds)
                for s in self.timeline
            ),
        )

    def to_dict(self) -> dict:
        stats = self.stream_stats()
        return {
            "scheme": self.scheme,
            "policy": self.policy,
            "workers": self.workers,
            "max_concurrent": self.max_concurrent,
            "makespan_seconds": self.makespan_seconds,
            "queries": len(self.queries),
            "commits": len(self.commits),
            "queries_per_second": self.queries_per_second,
            "worker_busy_seconds": self.worker_busy_seconds,
            "utilization": self.utilization,
            "streams": {
                name: {
                    "queries": s.queries,
                    "qps": s.qps,
                    "mean_latency_seconds": s.mean_latency_seconds,
                    "p50_latency_seconds": s.p50_latency_seconds,
                    "p95_latency_seconds": s.p95_latency_seconds,
                    "max_latency_seconds": s.max_latency_seconds,
                    "mean_queue_seconds": s.mean_queue_seconds,
                }
                for name, s in stats.items()
            },
            "events": list(self.events),
        }

    def render(self) -> str:
        lines = [
            f"serving run: scheme={self.scheme} policy={self.policy} "
            f"workers={self.workers} mpl={self.max_concurrent}",
            f"  {len(self.queries)} queries, {len(self.commits)} commits, "
            f"makespan {self.makespan_seconds * 1e3:.3f} ms, "
            f"{self.queries_per_second:,.1f} q/s simulated, "
            f"utilization {self.utilization * 100:.1f}%",
            f"  {'stream':<14}{'queries':>8}{'qps':>12}{'p50 ms':>10}"
            f"{'p95 ms':>10}{'max ms':>10}{'queue ms':>10}",
        ]
        for name, s in self.stream_stats().items():
            lines.append(
                f"  {name:<14}{s.queries:>8}{s.qps:>12,.1f}"
                f"{s.p50_latency_seconds * 1e3:>10.3f}"
                f"{s.p95_latency_seconds * 1e3:>10.3f}"
                f"{s.max_latency_seconds * 1e3:>10.3f}"
                f"{s.mean_queue_seconds * 1e3:>10.3f}"
            )
        if self.commits:
            refresh_work = sum(c.work_seconds for c in self.commits)
            compaction = sum(c.compaction_seconds for c in self.commits)
            lines.append(
                f"  refresh: {refresh_work * 1e3:.3f} ms commit work, "
                f"{compaction * 1e3:.3f} ms background compaction"
            )
        return "\n".join(lines)


_US = 1e6


def serving_trace(report: ServingReport, builder=None):
    """A Chrome trace-event view of one serving run: the shared worker
    pool as one process (workers as lanes, every fragment / commit /
    compaction slot as a slice), and each stream as its own lane of a
    per-scheme ``streams`` process — one slice per query from submission
    to completion with the queue wait as a nested sub-slice.  Returns a
    :class:`~repro.observe.TraceBuilder` (call ``write(path)``); pass an
    existing ``builder`` to merge several schemes' runs into one file
    (process names are scheme-qualified, so lanes never collide)."""
    from ..observe.trace_events import TraceBuilder

    if builder is None:
        builder = TraceBuilder()
    pool_pid = builder._pid(f"serving workers ({report.scheme})")
    for worker in range(report.workers):
        builder._thread(pool_pid, worker + 1, f"worker {worker}")
    for slot in report.timeline:
        builder._slice(
            pool_pid, slot.worker + 1, slot.label, slot.kind,
            slot.start_seconds * _US,
            (slot.end_seconds - slot.start_seconds) * _US,
            args={
                "stream": slot.stream,
                "kind": slot.kind,
                "ready_s": slot.ready_seconds,
                "io_s": slot.io_seconds,
                "cpu_s": slot.cpu_seconds,
            },
        )
        stretch = (
            (slot.io_end_seconds - slot.start_seconds) - slot.io_seconds
        )
        if slot.io_seconds > 0.0:
            builder._slice(
                pool_pid, slot.worker + 1, "io", "io",
                slot.start_seconds * _US,
                (slot.io_end_seconds - slot.start_seconds) * _US,
                args={"charged_io_s": slot.io_seconds, "stretch_s": stretch},
            )
    streams_pid = builder._pid(f"streams ({report.scheme})")
    lanes: Dict[str, int] = {}
    for record in report.queries:
        lane = lanes.get(record.stream)
        if lane is None:
            lane = len(lanes) + 1
            lanes[record.stream] = lane
            builder._thread(streams_pid, lane, record.stream)
        builder._slice(
            streams_pid, lane, record.description, "query",
            record.submit_seconds * _US,
            record.latency_seconds * _US,
            args={
                "seq": record.seq,
                "queue_s": record.queue_seconds,
                "service_s": record.service_seconds,
                "rows": record.rows,
                "epoch": record.snapshot.epoch,
            },
        )
        if record.queue_seconds > 0.0:
            builder._slice(
                streams_pid, lane, "queued", "queue",
                record.submit_seconds * _US,
                record.queue_seconds * _US,
                args={},
            )
    refresh_lane_base = len(lanes) + 1
    refresh_lanes: Dict[str, int] = {}
    for commit in report.commits:
        lane = refresh_lanes.get(commit.stream)
        if lane is None:
            lane = refresh_lane_base + len(refresh_lanes)
            refresh_lanes[commit.stream] = lane
            builder._thread(streams_pid, lane, commit.stream)
        builder._slice(
            streams_pid, lane, commit.description, "commit",
            commit.issue_seconds * _US,
            max(commit.work_end_seconds - commit.issue_seconds, 0.0) * _US,
            args={
                "seq": commit.seq,
                "work_s": commit.work_seconds,
                "compaction_s": commit.compaction_seconds,
            },
        )
    return builder
