"""Admission (fairness) policies for the serving queue.

A policy decides *which waiting query is admitted next* whenever a
multiprogramming slot frees up; once admitted, a query's fragments
compete on the shared worker pool under the scheduler's own dispatch
rule (most work first), so fairness is enforced at admission, where a
real system's workload manager enforces it too.

All policies are pure functions of the waiting queue (plus their own
deterministic bookkeeping), so the same seed and policy always produce
the same interleaving — the admission-determinism tests pin this.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "AdmissionPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "ShortestRemainingPolicy",
    "POLICY_NAMES",
    "create_policy",
]


class AdmissionPolicy:
    """Chooses the next ticket to admit from the waiting queue."""

    name = "abstract"
    #: whether the engine should compute ``estimated_work`` per ticket
    #: (a lowering per submission — only pay it when the policy reads it)
    needs_estimate = False

    def select(self, waiting: Sequence) -> int:
        """Index into ``waiting`` of the ticket to admit.  ``waiting``
        holds the engine's ``QueryTicket`` objects in submission order;
        every ticket carries ``stream``, ``submit_seq`` (global
        submission sequence) and ``estimated_work`` (pure pre-execution
        work proxy)."""
        raise NotImplementedError

    def on_admitted(self, ticket) -> None:  # stateful policies override
        pass

    def reset(self) -> None:
        pass


class FifoPolicy(AdmissionPolicy):
    """First come, first served: global submission order."""

    name = "fifo"

    def select(self, waiting: Sequence) -> int:
        best = min(range(len(waiting)), key=lambda i: waiting[i].submit_seq)
        return best


class RoundRobinPolicy(AdmissionPolicy):
    """Rotate across streams: the stream admitted least recently goes
    first (FIFO within a stream).  Guarantees a waiting stream is never
    starved: with ``S`` active streams it is admitted within ``S``
    consecutive admissions."""

    name = "round-robin"

    def __init__(self) -> None:
        #: stream -> global admission sequence of its last admission
        #: (-1 = never admitted, so new streams go first, by name).
        self._last_admitted: Dict[str, int] = {}
        self._admissions = 0

    def _stream_rank(self, stream: str):
        return (self._last_admitted.get(stream, -1), stream)

    def select(self, waiting: Sequence) -> int:
        best_stream = min(
            {t.stream for t in waiting}, key=self._stream_rank
        )
        return min(
            (i for i, t in enumerate(waiting) if t.stream == best_stream),
            key=lambda i: waiting[i].submit_seq,
        )

    def on_admitted(self, ticket) -> None:
        self._last_admitted[ticket.stream] = self._admissions
        self._admissions += 1

    def reset(self) -> None:
        self._last_admitted = {}
        self._admissions = 0


class ShortestRemainingPolicy(AdmissionPolicy):
    """Shortest remaining makespan first: the waiting query with the
    smallest estimated work (``est_rows`` summed over its lowered
    physical plan — a pure, pre-execution proxy) is admitted first,
    ties by submission order.  Minimizes mean latency at the price of
    possible starvation under sustained load — which is exactly the
    trade the policy tests document."""

    name = "shortest"
    needs_estimate = True

    def select(self, waiting: Sequence) -> int:
        return min(
            range(len(waiting)),
            key=lambda i: (waiting[i].estimated_work, waiting[i].submit_seq),
        )


POLICY_NAMES = ("fifo", "round-robin", "shortest")


def create_policy(name) -> AdmissionPolicy:
    """Instantiate a policy by name (instances pass through, so callers
    can hand the engine a pre-configured or custom policy)."""
    if isinstance(name, AdmissionPolicy):
        return name
    if name == "fifo":
        return FifoPolicy()
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "shortest":
        return ShortestRemainingPolicy()
    raise ValueError(
        f"unknown admission policy {name!r} (expected one of {POLICY_NAMES})"
    )
