"""The serving oracle: concurrent execution vs solo replay.

The snapshot-isolation claim is falsifiable: every query served
concurrently must produce **exactly** the rows it would produce running
*alone* against the epoch state it pinned at admission.  This module
checks it by replay:

1. serve N generated query streams (plus optional refresh streams)
   through a :class:`~repro.serving.engine.ServingEngine` over a fresh
   database, keeping every result and the engine's ordered event log —
   each instant the database was touched (``generate`` / ``commit`` /
   ``execute``);
2. rebuild an *identical* database (same datagen parameters), then walk
   the event log: regenerate each item at its logged position (generated
   plans and batches sample literals from the current data, so order is
   identity), apply each commit, and execute each query **solo** through
   a plain executor at exactly the state the serving run pinned;
3. compare bit-for-bit (:func:`~repro.workload.differential.bitwise_mismatch`);
   plans whose contracts allow reordering (co-partition gather) or
   re-aggregation (merge agg) fall back to the normalized-multiset
   comparison with per-dtype tolerances.  Optionally every solo result
   is additionally checked against the naive reference evaluator —
   reusing the update-differential oracle's machinery end to end.

Epochs are cross-checked too: at each replayed execution the rebuilt
database must sit at the very epochs the serving query pinned, or the
replay (and hence the MVCC bookkeeping) is broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..execution.cost import CostModel
from ..planner.executor import ExecutionOptions, Executor
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import DiskModel
from ..workload.differential import (
    bitwise_mismatch,
    column_tolerances,
    normalized_rows,
    rows_match,
)
from ..workload.reference import evaluate_reference
from .engine import ServingEngine
from .metrics import QueryRecord, ServingReport
from .snapshot import EpochSnapshot
from .streams import GeneratedQueryStream, GeneratedRefreshStream
from ..updates.session import UpdateSession

__all__ = [
    "ServingDivergence",
    "ServingDifferentialReport",
    "run_serving_differential",
]


@dataclass
class ServingDivergence:
    """One served query that failed its solo-replay (or reference)
    check."""

    scheme: str
    policy: str
    stream: str
    seq: int
    description: str
    check: str                    # "solo" | "reference" | "epoch"
    detail: str

    def render(self) -> str:
        return (
            f"DIVERGENCE scheme={self.scheme} policy={self.policy} "
            f"stream={self.stream} seq={self.seq} check={self.check}\n"
            f"  query: {self.description}\n"
            f"  {self.detail}"
        )


@dataclass
class ServingDifferentialReport:
    """Outcome of one serving-vs-solo sweep."""

    seed: int
    policy: str
    workers: int
    backend: str
    queries_checked: int = 0
    commits_replayed: int = 0
    reference_checks: int = 0
    divergences: List[ServingDivergence] = field(default_factory=list)
    serving_reports: Dict[str, ServingReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "policy": self.policy,
            "workers": self.workers,
            "backend": self.backend,
            "queries_checked": self.queries_checked,
            "commits_replayed": self.commits_replayed,
            "reference_checks": self.reference_checks,
            "divergences": len(self.divergences),
            "ok": self.ok,
            "schemes": {
                scheme: report.to_dict()
                for scheme, report in self.serving_reports.items()
            },
        }

    def render(self) -> str:
        lines = [
            f"serving differential: seed={self.seed} policy={self.policy} "
            f"workers={self.workers} backend={self.backend}",
            f"  {self.queries_checked} served queries checked against solo "
            f"replay, {self.commits_replayed} commits replayed, "
            f"{self.reference_checks} reference checks",
        ]
        for scheme, report in self.serving_reports.items():
            lines.append(report.render())
        for divergence in self.divergences:
            lines.append(divergence.render())
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _stream_seed(seed: int, position: int) -> int:
    return (seed + 1009 * (position + 1)) & 0x7FFFFFFF


def run_serving_differential(
    build: Callable[[], Dict[str, PhysicalDatabase]],
    seed: int = 0,
    num_streams: int = 2,
    queries_per_stream: int = 4,
    refresh_rounds: int = 0,
    policy: str = "fifo",
    options: Optional[ExecutionOptions] = None,
    max_concurrent: Optional[int] = None,
    disk: Optional[DiskModel] = None,
    costs: Optional[CostModel] = None,
    schemes: Optional[Sequence[str]] = None,
    check_reference: bool = False,
    fail_fast: bool = False,
    progress: Optional[Callable[[str, int], None]] = None,
) -> ServingDifferentialReport:
    """Serve, replay solo, compare.  ``build`` must return a *fresh*
    identical ``{scheme: PhysicalDatabase}`` mapping on every call (the
    serving run mutates its copy; the replay needs a pristine one)."""
    options = options or ExecutionOptions()
    report = ServingDifferentialReport(
        seed=seed,
        policy=policy,
        workers=max(int(options.workers), 1),
        backend=options.backend,
    )

    first = build()
    wanted = list(schemes) if schemes is not None else list(first)
    for scheme in wanted:
        pdbs = first if first is not None else build()
        first = None
        serving_report = _serve_once(
            pdbs[scheme], seed, num_streams, queries_per_stream,
            refresh_rounds, policy, options, max_concurrent, disk, costs,
        )
        report.serving_reports[scheme] = serving_report
        _replay_and_compare(
            report, serving_report, build()[scheme], seed, num_streams,
            queries_per_stream, refresh_rounds, options, disk, costs,
            check_reference=check_reference, fail_fast=fail_fast,
        )
        if progress is not None:
            progress(scheme, len(report.divergences))
        if report.divergences and fail_fast:
            break
    return report


def _build_query_streams(
    db, seed: int, num_streams: int, queries_per_stream: int
) -> List[GeneratedQueryStream]:
    return [
        GeneratedQueryStream(
            f"s{i}", db, _stream_seed(seed, i), queries_per_stream
        )
        for i in range(num_streams)
    ]


def _serve_once(
    pdb, seed, num_streams, queries_per_stream, refresh_rounds,
    policy, options, max_concurrent, disk, costs,
) -> ServingReport:
    query_streams = _build_query_streams(
        pdb.database, seed, num_streams, queries_per_stream
    )
    refresh_streams = []
    if refresh_rounds > 0:
        refresh_streams.append(
            GeneratedRefreshStream(
                "rf", pdb.database, _stream_seed(seed, -1), refresh_rounds
            )
        )
    with ServingEngine(
        pdb, disk=disk, costs=costs, options=options, policy=policy,
        max_concurrent=max_concurrent, keep_results=True,
    ) as engine:
        return engine.serve(query_streams, refresh_streams)


def _replay_and_compare(
    report: ServingDifferentialReport,
    serving_report: ServingReport,
    pdb,
    seed: int,
    num_streams: int,
    queries_per_stream: int,
    refresh_rounds: int,
    options: ExecutionOptions,
    disk,
    costs,
    check_reference: bool,
    fail_fast: bool,
) -> None:
    """Walk the serving run's event log against a pristine database."""
    db = pdb.database
    query_streams = {
        s.name: s
        for s in _build_query_streams(
            db, seed, num_streams, queries_per_stream
        )
    }
    refresh_streams = {}
    if refresh_rounds > 0:
        stream = GeneratedRefreshStream(
            "rf", db, _stream_seed(seed, -1), refresh_rounds
        )
        refresh_streams[stream.name] = stream
    records: Dict[tuple, QueryRecord] = {
        (r.stream, r.seq): r for r in serving_report.queries
    }
    items: Dict[tuple, object] = {}
    scheme = serving_report.scheme

    with Executor(pdb, disk=disk, costs=costs, options=options) as executor:
        for event in serving_report.events:
            kind = event["kind"]
            stream_name = event["stream"]
            index = event["index"]
            if kind == "generate":
                items[(stream_name, index)] = query_streams[stream_name].item(index)
            elif kind == "commit":
                session = UpdateSession(pdb, disk=disk, costs=costs)
                description = refresh_streams[stream_name].apply(index, session)
                if description is not None:
                    session.commit()
                report.commits_replayed += 1
            elif kind == "execute":
                item = items.pop((stream_name, index))
                record = records[(stream_name, index)]
                _check_one(
                    report, serving_report, executor, db, item, record, scheme,
                    check_reference=check_reference,
                )
                if report.divergences and fail_fast:
                    return


def _check_one(
    report: ServingDifferentialReport,
    serving_report: ServingReport,
    executor: Executor,
    db,
    item,
    record: QueryRecord,
    scheme: str,
    check_reference: bool,
) -> None:
    def diverge(check: str, detail: str) -> None:
        report.divergences.append(
            ServingDivergence(
                scheme=scheme,
                policy=serving_report.policy,
                stream=record.stream,
                seq=record.seq,
                description=record.description,
                check=check,
                detail=detail,
            )
        )

    # the rebuilt database must sit exactly at the pinned epochs — if
    # not, the replay order (or the engine's snapshot log) is wrong
    pinned = record.snapshot
    current = EpochSnapshot.pin(executor.pdb)
    if current != pinned:
        diverge(
            "epoch",
            f"replay epochs {current.as_dict()} != pinned {pinned.as_dict()}",
        )
        return
    if record.relation is None:
        diverge("solo", "serving run kept no result (keep_results=False)")
        return

    solo = executor.execute(item.plan).relation
    report.queries_checked += 1
    detail = bitwise_mismatch(solo, record.relation)
    if detail is not None:
        if record.reorders or record.reaggregates:
            names = sorted(solo.column_names)
            expected = normalized_rows(solo.columns, names)
            got = normalized_rows(record.relation.columns, names)
            tolerances = column_tolerances(
                names, solo.columns, record.relation.columns
            )
            if not rows_match(expected, got, tolerances):
                diverge("solo", f"order-insensitive mismatch: {detail}")
        else:
            diverge("solo", detail)
    if check_reference:
        reference = evaluate_reference(db, item.plan)
        names = sorted(reference.visible_names)
        got_names = sorted(record.relation.column_names)
        if names != got_names:
            diverge(
                "reference",
                f"column mismatch: reference {names}, served {got_names}",
            )
            return
        expected = normalized_rows(reference.columns, names)
        got = normalized_rows(record.relation.columns, names)
        tolerances = column_tolerances(
            names, reference.columns, record.relation.columns
        )
        report.reference_checks += 1
        if not rows_match(expected, got, tolerances):
            diverge(
                "reference",
                f"served result differs from the naive reference "
                f"({len(expected)} vs {len(got)} rows)",
            )
