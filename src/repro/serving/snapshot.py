"""MVCC-style epoch snapshots for concurrent readers.

The engine's storage is merge-on-read (PR 4): a commit appends delta
runs and bumps each touched table's ``epoch``; compaction folds deltas
into the base and bumps again.  There is no versioned storage to read
*through* — so the serving layer gets snapshot isolation from the
execute/schedule split instead: a query's fragments are **physically
executed at its admission instant**, in program order, before any later
commit mutates state, while their *time* interleaves with other queries
and commit work on the shared simulated timeline.  The snapshot object
records the per-table epochs the query was admitted under; it is the
proof obligation, not the mechanism — the engine asserts the epochs are
unchanged across the physical run (reads never mutate), and the
differential oracle replays each query solo at the same epoch state to
check bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..schemes.base import PhysicalDatabase

__all__ = ["EpochSnapshot", "SnapshotViolation"]


class SnapshotViolation(RuntimeError):
    """A query's pinned epochs changed while it was being executed —
    something mutated storage inside a read, breaking the serving
    layer's snapshot-isolation invariant."""


@dataclass(frozen=True)
class EpochSnapshot:
    """The per-table epochs one query pinned at admission."""

    scheme: str
    epoch: int
    table_epochs: Tuple[Tuple[str, int], ...]

    @classmethod
    def pin(cls, pdb: PhysicalDatabase) -> "EpochSnapshot":
        return cls(
            scheme=pdb.scheme_name,
            epoch=pdb.epoch,
            table_epochs=tuple(
                sorted((name, stored.epoch) for name, stored in pdb.stored.items())
            ),
        )

    def as_dict(self) -> Dict[str, int]:
        return dict(self.table_epochs)

    def matches(self, pdb: PhysicalDatabase) -> bool:
        return EpochSnapshot.pin(pdb) == self

    def divergence(self, pdb: PhysicalDatabase) -> List[str]:
        """Tables whose epoch moved since the pin (for diagnostics)."""
        current = EpochSnapshot.pin(pdb).as_dict()
        pinned = self.as_dict()
        return sorted(
            name
            for name in set(current) | set(pinned)
            if current.get(name) != pinned.get(name)
        )

    def check(self, pdb: PhysicalDatabase) -> None:
        if not self.matches(pdb):
            raise SnapshotViolation(
                f"epochs moved under an in-flight read of scheme "
                f"{self.scheme!r}: {self.divergence(pdb)}"
            )
