"""Command-line driver: ``python -m repro.workload [options]``.

Generates TPC-H data, builds the physical schemes, then sweeps ``N``
seeded random plans through every scheme x ablation variant against the
naive reference evaluator.  Exits non-zero on any result divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import List, Optional

from ..observe import SCHEMA_VERSION, QueryLog, TraceBuilder, build_record
from ..tpch.datagen import generate
from ..tpch.environment import make_environment
from ..tpch.harness import build_schemes
from .differential import (
    ablation_variants,
    run_differential,
    run_update_differential,
    worker_count_variants,
)

__all__ = ["main"]


class _Sink:
    """Observability fan-out for sweep executions: ``--trace`` and
    ``--query-log`` capture *every* (scheme, variant) execution; the
    ``--json`` record list keeps only the default variant's (one per
    query x scheme) so the document stays bounded."""

    def __init__(
        self,
        trace_path: Optional[str],
        query_log_path: Optional[str],
        collect: bool,
    ):
        self.trace_path = trace_path
        self.builder = TraceBuilder() if trace_path else None
        self.query_log = QueryLog(query_log_path) if query_log_path else None
        self.records: Optional[List[dict]] = [] if collect else None

    @property
    def enabled(self) -> bool:
        return bool(self.builder or self.query_log or self.records is not None)

    def observe(self, query, scheme, variant, executor, result) -> None:
        label = f"q{query.index}/{scheme}/{variant}"
        if self.builder is not None:
            self.builder.add_execution(label, result.metrics)
        if self.query_log is None and (
            self.records is None or variant != "default"
        ):
            return
        record = build_record(
            label,
            result.metrics,
            pdb=executor.pdb,
            scheme=scheme,
            options=executor.options,
            plans=[executor.lower(query.plan)],
            relation=result.relation,
        )
        if self.query_log is not None:
            self.query_log.write(record)
        if self.records is not None and variant == "default":
            self.records.append(record)

    def finish(self) -> None:
        if self.builder is not None:
            self.builder.write(self.trace_path)
        if self.query_log is not None:
            self.query_log.close()


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description=(
            "Randomized differential testing: seeded random plans executed "
            "under Plain/PK/BDCC x the ablation grid, checked against a "
            "scheme-independent reference evaluator."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument("--queries", type=int, default=100, help="number of plans (default 100)")
    parser.add_argument("--sf", type=float, default=0.005, help="TPC-H scale factor (default 0.005)")
    parser.add_argument("--datagen-seed", type=int, default=7, help="data generator seed")
    parser.add_argument(
        "--schemes", default="plain,pk,bdcc", help="comma-separated subset of plain,pk,bdcc"
    )
    parser.add_argument(
        "--variants", choices=("all", "default"), default="all",
        help="'all' sweeps the ablation grid, 'default' runs only default options",
    )
    parser.add_argument(
        "--workers", default="",
        help=(
            "comma-separated worker counts to sweep (e.g. 1,2,4); parallel "
            "runs are additionally checked bit-for-bit against the serial "
            "default run (the full ablation grid already includes 2 and 4)"
        ),
    )
    parser.add_argument(
        "--backend", choices=("simulated", "process"), default="simulated",
        help=(
            "execution backend for the --workers sweep variants: 'simulated' "
            "(in-process deterministic scheduler) or 'process' (a real "
            "multiprocessing pool over shared-memory column exports); the "
            "oracle holds both to the same result contracts"
        ),
    )
    parser.add_argument(
        "--updates", type=int, default=0, metavar="ROUNDS",
        help=(
            "run the update-aware sweep instead: ROUNDS seeded insert/delete "
            "batches committed through an UpdateSession, each followed by "
            "generated queries checked against the reference (which reads "
            "the shared logical database, so it sees every commit)"
        ),
    )
    parser.add_argument(
        "--streams", type=int, default=0, metavar="N",
        help=(
            "run the concurrent-serving differential instead: serve N "
            "generated closed-loop query streams (plus --updates refresh "
            "rounds) through the multi-query serving layer, then replay "
            "the recorded event log solo against a pristine identical "
            "database — every served result must match its pinned-epoch "
            "solo run bit-for-bit (and the naive reference)"
        ),
    )
    parser.add_argument(
        "--policy", choices=("fifo", "round-robin", "shortest"),
        default="fifo",
        help="admission policy for the --streams serving run (default fifo)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=None, metavar="M",
        help="multiprogramming limit for --streams (default: worker count)",
    )
    parser.add_argument("--fail-fast", action="store_true", help="stop at the first divergence")
    parser.add_argument("--verbose", action="store_true", help="per-query progress")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help=(
            "write a Chrome trace-event timeline of every sweep execution "
            "(open in https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--query-log", metavar="FILE", default=None,
        help="append one validated JSONL record per sweep execution",
    )
    parser.add_argument(
        "--json", action="store_true",
        help=(
            "print a machine-readable JSON document (report summary plus "
            "default-variant query-log records) instead of the text report"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "run every sweep variant's fragments under cProfile and attach "
            "the top functions to query-log records and trace slices "
            "(passive: the oracle's result contracts are unaffected)"
        ),
    )
    return parser.parse_args(argv)


def _run_serving_mode(args, names: List[str]) -> int:
    """``--streams N``: the concurrent-serving differential."""
    from ..planner.executor import ExecutionOptions
    from ..serving import run_serving_differential

    env = make_environment(args.sf)
    counts = [int(n) for n in args.workers.split(",") if n.strip()]
    workers = counts[0] if counts else 4
    options = ExecutionOptions(workers=workers, backend=args.backend)

    def build():
        db = generate(scale_factor=args.sf, seed=args.datagen_seed)
        return build_schemes(db, env, include=names)

    def progress(scheme: str, divergences: int) -> None:
        print(
            f"  {scheme}: served + replayed "
            f"({divergences} divergence(s) so far)",
            file=sys.stderr,
        )

    started = time.time()
    report = run_serving_differential(
        build,
        seed=args.seed,
        num_streams=args.streams,
        queries_per_stream=max(args.queries // args.streams, 1),
        refresh_rounds=args.updates,
        policy=args.policy,
        options=options,
        max_concurrent=args.max_concurrent,
        disk=env.disk,
        costs=env.cost_model,
        schemes=names,
        check_reference=True,
        fail_fast=args.fail_fast,
        progress=progress if args.verbose else None,
    )
    if args.json:
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": "serving_differential",
            "report": report.to_dict(),
        }
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        print(report.render())
    print(f"({time.time() - started:.1f}s)", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: List[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    names = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if args.streams > 0:
        return _run_serving_mode(args, names)
    print(
        f"generating TPC-H SF={args.sf} (seed {args.datagen_seed}) and "
        f"building {','.join(names)} ...",
        file=sys.stderr,
    )
    db = generate(scale_factor=args.sf, seed=args.datagen_seed)
    env = make_environment(args.sf)
    pdbs = build_schemes(db, env, include=names)

    started = time.time()

    def progress(done: int, total: int) -> None:
        if args.verbose or done % 25 == 0 or done == total:
            print(f"  {done}/{total} queries checked", file=sys.stderr)

    variants = ablation_variants(full=args.variants == "all")
    if args.workers:
        counts = [int(n) for n in args.workers.split(",") if n.strip()]
        variants.update(
            worker_count_variants(
                [n for n in counts if n > 1], backend=args.backend
            )
        )

    if args.profile:
        variants = {
            name: dataclasses.replace(options, profile=True)
            for name, options in variants.items()
        }

    sink = _Sink(args.trace, args.query_log, collect=args.json)
    observer = sink.observe if sink.enabled else None

    repro_flags = f"--sf {args.sf} --datagen-seed {args.datagen_seed}"
    if args.updates > 0:
        report = run_update_differential(
            pdbs,
            seed=args.seed,
            rounds=args.updates,
            queries_per_round=max(args.queries // args.updates, 1),
            variants=variants,
            disk=env.disk,
            costs=env.cost_model,
            fail_fast=args.fail_fast,
            progress=progress,
            repro_flags=repro_flags + f" --updates {args.updates}",
            observer=observer,
        )
    else:
        report = run_differential(
            pdbs,
            seed=args.seed,
            num_queries=args.queries,
            variants=variants,
            disk=env.disk,
            costs=env.cost_model,
            fail_fast=args.fail_fast,
            progress=progress,
            repro_flags=repro_flags,
            observer=observer,
        )
    sink.finish()
    if args.json:
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": "workload_differential",
            "report": report.to_dict(),
            "records": sink.records or [],
        }
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        print(report.render())
    print(f"({time.time() - started:.1f}s)", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
