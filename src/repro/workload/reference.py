"""Naive reference evaluator: logical plans directly on base arrays.

This is the oracle half of the differential test.  It interprets a
logical plan straight over the :class:`~repro.storage.database.Database`
column vectors — no physical schemes, no lowering, no physical
operators, no shared join/aggregation kernels.  Joins use python
dictionaries, grouping uses ordered key-tuple maps, sorting uses a
comparison sort; the only shared machinery is the expression language
(predicates and projections are *inputs* to both systems, not the
subject under test).

NULL semantics mirror the engine's: a left join's unmatched rows carry
placeholder values plus a validity mask, ``count`` over a column skips
invalid rows, and aggregates of non-``Col`` expressions ignore validity
(exactly what :mod:`repro.execution.operators` does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.aggregate import AggSpec
from ..execution.expressions import Col
from ..planner.logical import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..storage.database import Database

__all__ = ["RefRelation", "evaluate_reference"]


@dataclass
class RefRelation:
    """Columns plus per-column validity (False = NULL)."""

    columns: Dict[str, np.ndarray]
    valid: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def visible_names(self) -> List[str]:
        return [c for c in self.columns if not c.startswith("__")]

    def gather(self, indices) -> "RefRelation":
        idx = np.asarray(indices, dtype=np.int64)
        return RefRelation(
            columns={n: a[idx] for n, a in self.columns.items()},
            valid={n: m[idx] for n, m in self.valid.items()},
        )

    def filter(self, mask: np.ndarray) -> "RefRelation":
        return RefRelation(
            columns={n: a[mask] for n, a in self.columns.items()},
            valid={n: m[mask] for n, m in self.valid.items()},
        )


def evaluate_reference(db: Database, plan) -> RefRelation:
    """Evaluate a logical plan against the base data."""
    node = plan.node if isinstance(plan, Plan) else plan
    return _eval(db, node)


# ---------------------------------------------------------------- dispatch
def _eval(db: Database, node: PlanNode) -> RefRelation:
    if isinstance(node, ScanNode):
        return _eval_scan(db, node)
    if isinstance(node, FilterNode):
        rel = _eval(db, node.input)
        mask = np.asarray(node.predicate.eval(rel), dtype=bool)
        return rel.filter(mask)
    if isinstance(node, ProjectNode):
        return _eval_project(_eval(db, node.input), node)
    if isinstance(node, JoinNode):
        return _eval_join(_eval(db, node.left), _eval(db, node.right), node)
    if isinstance(node, GroupByNode):
        return _eval_groupby(_eval(db, node.input), node)
    if isinstance(node, SortNode):
        return _eval_sort(_eval(db, node.input), node)
    if isinstance(node, LimitNode):
        rel = _eval(db, node.input)
        return rel.gather(np.arange(min(node.count, rel.num_rows)))
    raise TypeError(f"unknown node {type(node).__name__}")


def _eval_scan(db: Database, node: ScanNode) -> RefRelation:
    data = db.table_data(node.table)
    rel = RefRelation(columns={node.prefix + c: v for c, v in data.items()})
    if node.predicate is not None:
        rel = rel.filter(np.asarray(node.predicate.eval(rel), dtype=bool))
    return rel


def _eval_project(rel: RefRelation, node: ProjectNode) -> RefRelation:
    columns: Dict[str, np.ndarray] = {}
    valid: Dict[str, np.ndarray] = {}
    for name, expr in node.exprs:
        columns[name] = np.asarray(expr.eval(rel))
        if isinstance(expr, Col) and expr.name in rel.valid:
            valid[name] = rel.valid[expr.name]
    return RefRelation(columns=columns, valid=valid)


# ------------------------------------------------------------------- joins
def _key_tuples(rel: RefRelation, names: Tuple[str, ...]) -> List[tuple]:
    arrays = [rel.columns[n].tolist() for n in names]
    return list(zip(*arrays)) if arrays else []


def _pair_env(left: RefRelation, right: RefRelation, lidx, ridx) -> RefRelation:
    """Joined-row environment for residual evaluation; on duplicate
    names the left side wins (the engine assembles the same way)."""
    lpart = left.gather(lidx)
    rpart = right.gather(ridx)
    columns = dict(lpart.columns)
    for name, arr in rpart.columns.items():
        columns.setdefault(name, arr)
    return RefRelation(columns=columns)


def _eval_join(left: RefRelation, right: RefRelation, node: JoinNode) -> RefRelation:
    lkeys = _key_tuples(left, node.left_cols)
    rkeys = _key_tuples(right, node.right_cols)
    index: Dict[tuple, List[int]] = {}
    for j, key in enumerate(rkeys):
        index.setdefault(key, []).append(j)

    if node.how in ("semi", "anti"):
        if node.residual is None:
            keep = np.array([key in index for key in lkeys], dtype=bool)
        else:
            lidx: List[int] = []
            ridx: List[int] = []
            for i, key in enumerate(lkeys):
                for j in index.get(key, ()):
                    lidx.append(i)
                    ridx.append(j)
            keep = np.zeros(left.num_rows, dtype=bool)
            if lidx:
                mask = np.asarray(
                    node.residual.eval(_pair_env(left, right, lidx, ridx)), dtype=bool
                )
                keep[np.asarray(lidx, dtype=np.int64)[mask]] = True
        if node.how == "anti":
            keep = ~keep
        return left.filter(keep)

    if node.how == "inner":
        lidx, ridx = [], []
        for i, key in enumerate(lkeys):
            for j in index.get(key, ()):
                lidx.append(i)
                ridx.append(j)
        if node.residual is not None and lidx:
            mask = np.asarray(
                node.residual.eval(_pair_env(left, right, lidx, ridx)), dtype=bool
            )
            lidx = [i for i, ok in zip(lidx, mask) if ok]
            ridx = [j for j, ok in zip(ridx, mask) if ok]
        lpart = left.gather(lidx)
        rpart = right.gather(ridx)
        columns = dict(lpart.columns)
        valid = dict(lpart.valid)
        for name, arr in rpart.columns.items():
            columns.setdefault(name, arr)
        for name, mask in rpart.valid.items():
            valid.setdefault(name, mask)
        return RefRelation(columns=columns, valid=valid)

    if node.how == "left":
        lidx, ridx = [], []
        for i, key in enumerate(lkeys):
            matches = index.get(key)
            if matches:
                for j in matches:
                    lidx.append(i)
                    ridx.append(j)
            else:
                lidx.append(i)
                ridx.append(-1)
        ridx_arr = np.asarray(ridx, dtype=np.int64)
        matched = ridx_arr >= 0
        take = np.where(matched, ridx_arr, 0)
        lpart = left.gather(lidx)
        columns = dict(lpart.columns)
        valid = dict(lpart.valid)
        for name, arr in right.columns.items():
            if name in columns:
                continue
            if len(arr) == 0:
                columns[name] = np.zeros(len(lidx), dtype=arr.dtype)
            else:
                columns[name] = arr[take]
            prior = right.valid.get(name)
            valid[name] = matched if prior is None else (matched & prior[take])
        return RefRelation(columns=columns, valid=valid)

    raise AssertionError(node.how)


# --------------------------------------------------------------- group by
def _eval_groupby(rel: RefRelation, node: GroupByNode) -> RefRelation:
    n = rel.num_rows
    if node.keys:
        key_tuples = _key_tuples(rel, node.keys)
        groups: Dict[tuple, List[int]] = {}
        for i, key in enumerate(key_tuples):
            groups.setdefault(key, []).append(i)
        group_rows = list(groups.values())
    else:
        group_rows = [list(range(n))] if n else []

    columns: Dict[str, np.ndarray] = {}
    first_rows = np.asarray([rows[0] for rows in group_rows], dtype=np.int64)
    for key in node.keys:
        columns[key] = rel.columns[key][first_rows]
    for spec in node.aggs:
        columns[spec.name] = _aggregate(rel, spec, group_rows)
    return RefRelation(columns=columns)


def _aggregate(rel: RefRelation, spec: AggSpec, group_rows: List[List[int]]) -> np.ndarray:
    values: Optional[np.ndarray] = None
    valid: Optional[np.ndarray] = None
    if spec.expr is not None:
        values = np.asarray(spec.expr.eval(rel))
        if isinstance(spec.expr, Col):
            valid = rel.valid.get(spec.expr.name)

    out: List = []
    for rows in group_rows:
        idx = np.asarray(rows, dtype=np.int64)
        if spec.fn == "count":
            if valid is not None:
                out.append(int(np.count_nonzero(valid[idx])))
            else:
                out.append(len(rows))
            continue
        if spec.fn == "count_distinct":
            # validity is ignored, as in the engine kernel
            out.append(len(set(values[idx].tolist())))
            continue
        group_values = values[idx]
        if valid is not None:
            group_values = group_values[valid[idx]]
        if spec.fn == "sum":
            out.append(float(np.sum(group_values.astype(np.float64))))
        elif spec.fn == "avg":
            if len(group_values) == 0:
                out.append(float("nan"))
            else:
                out.append(float(np.sum(group_values.astype(np.float64))) / len(group_values))
        elif spec.fn in ("min", "max"):
            reducer = np.min if spec.fn == "min" else np.max
            integral = group_values.dtype.kind in "iu"
            if len(group_values) == 0:
                # mirrors the kernel's empty-group sentinel behaviour
                out.append(0 if integral else float("inf") if spec.fn == "min" else float("-inf"))
            elif group_values.dtype.kind == "U":
                out.append(str(reducer(group_values)))
            elif integral:
                out.append(int(reducer(group_values)))
            else:
                out.append(float(reducer(group_values)))
        else:
            raise AssertionError(spec.fn)
    if not out:
        return np.zeros(0)
    return np.asarray(out)


# -------------------------------------------------------------------- sort
def _eval_sort(rel: RefRelation, node: SortNode) -> RefRelation:
    """Order rows by the sort keys.  Only the *order relation* matters
    (the differential compares multisets, and a LIMIT is only generated
    above a total-order sort), so descending keys may be realised by
    negating numeric values / string ranks."""
    n = rel.num_rows
    if n == 0:
        return rel
    sort_keys = []
    for name, ascending in reversed(node.keys):
        values = rel.columns[name]
        if values.dtype.kind == "U":
            _, values = np.unique(values, return_inverse=True)
        if values.dtype.kind in "iu":
            # keep integral: a float64 cast would collapse distinct
            # int64 keys above 2^53 and break total-order LIMITs
            values = values.astype(np.int64)
        else:
            values = values.astype(np.float64)
        sort_keys.append(values if ascending else -values)
    order = np.lexsort(tuple(sort_keys))
    return rel.gather(order)
