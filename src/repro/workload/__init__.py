"""Randomized workload: generated plans + cross-scheme differential oracle.

The fifth pillar of the architecture.  The 22 TPC-H queries prove BDCC's
equivalence claim — same results, different cost, under Plain/PK/BDCC
and every ablation — on 22 fixed anecdotes; this package turns the claim
into a *property* checked over an unbounded query space:

* :mod:`repro.workload.generator` — a seeded, deterministic logical-plan
  generator over any :class:`~repro.catalog.Schema`: scans with random
  predicate shapes on FK / dimension / plain columns, FK joins in both
  directions (N:1 and 1:N, inner/left/semi/anti, optional residuals),
  group-bys over key subsets, sort/limit — biased toward the shapes that
  exercise the merge, sandwich and hash paths;
* :mod:`repro.workload.reference` — a naive reference evaluator that
  computes each logical plan directly on the base numpy arrays,
  independent of schemes, lowering and the physical operators;
* :mod:`repro.workload.differential` — the differential runner: every
  generated plan is executed under Plain/PK/BDCC x the ablation grid and
  compared against the reference; any divergence fails loudly with the
  seed, the logical plan and the per-scheme physical plans annotated
  with their per-operator actuals.

Command line
------------

``python -m repro.workload --seed S --queries N`` generates and checks
``N`` plans (options: ``--sf`` scale factor, ``--datagen-seed``,
``--schemes plain,pk,bdcc``, ``--variants default|all``, ``--fail-fast``,
``--verbose``).  Exit status is non-zero when any divergence was found;
each divergence report carries everything needed to reproduce it:
the ``--seed``, the query index, and the data flags (``--sf``,
``--datagen-seed``) the plan's sampled literals depend on.

Example::

    python -m repro.workload --seed 0 --queries 200

runs the acceptance sweep: 200 random plans x 3 schemes x the ablation
grid, all compared against the scheme-independent reference.
"""

from .differential import WorkloadReport, ablation_variants, run_differential
from .generator import GeneratedQuery, PlanGenerator
from .reference import evaluate_reference

__all__ = [
    "GeneratedQuery",
    "PlanGenerator",
    "WorkloadReport",
    "ablation_variants",
    "evaluate_reference",
    "run_differential",
]
