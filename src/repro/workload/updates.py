"""Seeded random update batches for the differential oracle.

The generator draws *referential-integrity-safe* insert/delete batches
against any schema, the way :class:`~repro.workload.generator.PlanGenerator`
draws queries:

* **inserts** go to tables whose primary key can be kept unique
  mechanically — the PK is empty, or at least one PK column is not part
  of any outgoing foreign key (that column receives ``max+1..`` values;
  TPC-H: every table except PARTSUPP, whose PK is entirely foreign
  keys).  Foreign-key columns sample from the referenced keys currently
  live, other columns sample from the column's own current values — so
  domains stay realistic.  Occasionally a dimension-hinted numeric
  column is pushed *beyond* its observed domain, exercising the paper's
  out-of-domain clamping (new tuples land in the nearest existing bin,
  no renumbering);
* **deletes** target leaf tables only (no incoming foreign keys, so no
  dangling references) with a sampled predicate whose selectivity is
  capped — repeated rounds must not drain the table.

A batch depends only on ``(seed, index)`` and the current database
content, exactly like generated queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog import Schema
from ..execution.expressions import Between, Cmp, Col, Const, Expr
from ..storage.database import Database

__all__ = ["UpdateBatch", "UpdateGenerator"]

_MAX_DELETE_FRACTION = 0.15


@dataclass
class UpdateBatch:
    """One commit's worth of randomized changes."""

    seed: int
    index: int
    inserts: List[Tuple[str, Dict[str, np.ndarray]]] = field(default_factory=list)
    deletes: List[Tuple[str, Expr]] = field(default_factory=list)
    description: str = ""

    @property
    def is_insert_only(self) -> bool:
        return bool(self.inserts) and not self.deletes

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes


class UpdateGenerator:
    """Draws random valid update batches against one logical database."""

    def __init__(self, db: Database):
        self.db = db
        self.schema: Schema = db.schema

    # ---------------------------------------------------------- candidates
    def insertable_tables(self) -> List[str]:
        """Tables whose primary key we can keep unique: empty PK, or a
        PK column free of foreign-key constraints to carry fresh
        ``max+1..`` values."""
        out = []
        for table in self.db.loaded_tables:
            if self.db.num_rows(table) == 0:
                continue
            pk = self.schema.key_columns(table)
            if not pk:
                out.append(table)
                continue
            fk_cols = set(self.schema.fk_child_columns(table))
            free = [c for c in pk if c not in fk_cols]
            if free and all(
                self.db.column(table, c).dtype.kind in "iu" for c in free
            ):
                out.append(table)
        return out

    def deletable_tables(self) -> List[str]:
        """Leaf tables: deleting their rows can never dangle a foreign
        key."""
        return [
            table
            for table in self.db.loaded_tables
            if not self.schema.incoming_foreign_keys(table)
            and self.db.num_rows(table) > 20
        ]

    # ------------------------------------------------------------- inserts
    def _make_insert(
        self, rng: np.random.RandomState, table: str, n_rows: int
    ) -> Dict[str, np.ndarray]:
        definition = self.schema.table(table)
        pk = set(self.schema.key_columns(table))
        fk_cols = set(self.schema.fk_child_columns(table))
        free_pk = [c for c in self.schema.key_columns(table) if c not in fk_cols]
        hinted = set(self.schema.hinted_columns(table))

        rows: Dict[str, np.ndarray] = {}
        # foreign-key columns sample parent key *tuples* jointly, widest
        # FK first — a composite key like LINEITEM's (l_partkey,
        # l_suppkey) must name an existing PARTSUPP pair, which then also
        # satisfies the single-column FKs to PART and SUPPLIER
        for fk in sorted(
            self.schema.outgoing_foreign_keys(table),
            key=lambda f: -len(f.child_columns),
        ):
            if any(c in rows for c in fk.child_columns):
                continue
            parent_rows = self.db.num_rows(fk.parent_table)
            picks = rng.randint(0, parent_rows, n_rows)
            for child_col, parent_col in zip(fk.child_columns, fk.parent_columns):
                rows[child_col] = self.db.column(fk.parent_table, parent_col)[picks]
        clamp_target: Optional[str] = None
        numeric_hinted = [
            c for c in hinted
            if c not in pk and c not in fk_cols
            and self.db.column(table, c).dtype.kind in "iuf"
        ]
        if numeric_hinted and rng.random_sample() < 0.2:
            clamp_target = numeric_hinted[int(rng.randint(len(numeric_hinted)))]

        for column in definition.column_names:
            if column in rows and column not in free_pk:
                continue  # assigned from a parent key tuple
            values = self.db.column(table, column)
            if column in free_pk:
                start = values.max() + 1 if len(values) else 1
                rows[column] = (start + np.arange(n_rows)).astype(values.dtype)
            else:
                picks = rng.randint(0, len(values), n_rows)
                sampled = values[picks]
                if column == clamp_target:
                    # beyond the observed domain: bins must clamp
                    span = values.max() - values.min()
                    sampled = sampled + (span + 1)
                rows[column] = sampled
        return rows

    # ------------------------------------------------------------- deletes
    def _make_delete(
        self, rng: np.random.RandomState, table: str
    ) -> Optional[Expr]:
        """A predicate deleting a bounded fraction of the table."""
        numeric = [
            c for c in self.schema.table(table).column_names
            if self.db.column(table, c).dtype.kind in "iuf"
        ]
        if not numeric:
            return None
        data = self.db.table_data(table)
        n = self.db.num_rows(table)
        for _ in range(4):
            column = numeric[int(rng.randint(len(numeric)))]
            values = data[column]
            a = values[int(rng.randint(n))]
            b = values[int(rng.randint(n))]
            low, high = (a, b) if a <= b else (b, a)
            predicate: Expr = Between(Col(column), Const(low), Const(high))
            frac = np.count_nonzero((values >= low) & (values <= high)) / n
            if frac <= _MAX_DELETE_FRACTION:
                return predicate
        # fall back to a point delete on a sampled value
        column = numeric[int(rng.randint(len(numeric)))]
        value = data[column][int(rng.randint(n))]
        return Cmp("==", Col(column), Const(value))

    # -------------------------------------------------------------- public
    def generate(self, seed: int, index: int) -> UpdateBatch:
        """The batch for ``(seed, index)``; deterministic for a given
        database state.  Round 0 is insert-only so the differential
        oracle can cross-check the incremental append path against the
        full-rebuild reference."""
        rng = np.random.RandomState([seed & 0x7FFFFFFF, (index + 0x5EED) & 0x7FFFFFFF])
        batch = UpdateBatch(seed=seed, index=index)
        shape: List[str] = []

        insertable = self.insertable_tables()
        want_inserts = index == 0 or rng.random_sample() < 0.8
        if want_inserts and insertable:
            num_tables = 1 + int(rng.random_sample() < 0.4)
            chosen: List[str] = []
            for _ in range(num_tables):
                table = insertable[int(rng.randint(len(insertable)))]
                if table not in chosen:
                    chosen.append(table)
            # parents before children so same-commit FK references resolve
            order = {t: i for i, t in enumerate(self.schema.leaves_first_order())}
            for table in sorted(chosen, key=lambda t: order.get(t, len(order))):
                n_rows = int(rng.randint(8, 48))
                batch.inserts.append((table, self._make_insert(rng, table, n_rows)))
                shape.append(f"+{n_rows} {table}")

        if index > 0 and rng.random_sample() < 0.5:
            deletable = self.deletable_tables()
            if deletable:
                table = deletable[int(rng.randint(len(deletable)))]
                predicate = self._make_delete(rng, table)
                if predicate is not None:
                    batch.deletes.append((table, predicate))
                    shape.append(f"-{table} where ...")

        batch.description = (
            f"update seed={seed} round={index}: " + (", ".join(shape) or "no-op")
        )
        return batch
