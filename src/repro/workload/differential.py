"""Cross-scheme differential oracle over generated plans.

Every generated plan is evaluated once by the naive reference
(:mod:`repro.workload.reference`) and then executed under each physical
scheme x each ablation variant; normalized result multisets must agree
everywhere.  A divergence fails loudly: the report carries the seed and
query index (which fully determine the plan), the logical plan, and the
offending scheme/variant's physical plan annotated with its
per-operator actuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..execution.cost import CostModel
from ..planner.executor import ExecutionOptions, Executor
from ..planner.explain import format_physical_plan, format_plan
from ..schemes.base import PhysicalDatabase
from ..storage.io_model import DiskModel
from .generator import PlanGenerator
from .reference import evaluate_reference

__all__ = [
    "Divergence",
    "WorkloadReport",
    "ablation_variants",
    "worker_count_variants",
    "column_tolerances",
    "normalized_rows",
    "rows_match",
    "bitwise_mismatch",
    "worst_relative_error",
    "run_differential",
    "run_update_differential",
]

_SWITCHES = (
    "enable_pushdown",
    "enable_propagation",
    "enable_minmax",
    "enable_sandwich",
    "enable_merge",
)

#: worker counts the default grid sweeps; parallel executions are
#: additionally checked *bit-for-bit* against the serial default run.
_WORKER_COUNTS = (1, 2, 4)


def worker_count_variants(
    counts: Sequence[int], backend: str = "simulated"
) -> Dict[str, ExecutionOptions]:
    """One ``workers-N`` variant per requested count (1 is the serial
    default and named so the report can point at the diverging count).
    Small scans still split under the sweep: the partition floor drops
    so tiny differential databases exercise the parallel machinery —
    including co-partitioned sandwich joins, which are on by default.

    With ``backend="process"`` the variants execute their fragments on
    the real multiprocessing backend (named ``workers-N-process``) and
    are held to exactly the same oracle as simulated parallel runs:
    normalized multisets against the reference, and bit-for-bit against
    the scheme's serial default run for plans without a reordering
    exchange."""
    suffix = "" if backend == "simulated" else f"-{backend}"
    return {
        f"workers-{n}{suffix}": ExecutionOptions(
            workers=n, min_partition_rows=256, backend=backend
        )
        for n in counts
    }


def ablation_variants(full: bool = True) -> Dict[str, ExecutionOptions]:
    """The option grid a differential run sweeps: the default plan,
    each feature switched off on its own, a narrow sandwich-bit budget,
    the everything-off baseline, the worker-count sweep, the
    gather-then-aggregate parallel variant (partial aggregation
    disabled, co-partitioning still on), and the broadcast-only parallel
    variant (co-partitioning *and* partial aggregation disabled, so
    every parallel plan keeps the bit-identical contract)."""
    variants = {"default": ExecutionOptions()}
    if not full:
        return variants
    for switch in _SWITCHES:
        variants["no-" + switch[len("enable_"):]] = ExecutionOptions(**{switch: False})
    variants["narrow-sandwich"] = ExecutionOptions(max_sandwich_bits=2)
    variants["baseline"] = ExecutionOptions(
        **{switch: False for switch in _SWITCHES}
    )
    variants.update(worker_count_variants([n for n in _WORKER_COUNTS if n > 1]))
    variants["workers-4-gatheragg"] = ExecutionOptions(
        workers=4, min_partition_rows=256, enable_partial_agg=False
    )
    variants["workers-4-broadcast"] = ExecutionOptions(
        workers=4, min_partition_rows=256,
        enable_copartition=False, enable_partial_agg=False,
    )
    return variants


# ---------------------------------------------------------- normalization
_NAN_SENTINEL = -8.98846567431158e307   # distinct, sortable stand-ins
#: comparison tolerance; the sort-key rounding granule (7 significant
#: digits: at most 1e-6 relative, at mantissa ~1) stays at or below
#: half this, so two rows that can end up ordered differently on the
#: two sides are themselves within tolerance of each other —
#: misalignment can never cause a spurious mismatch.
_REL_TOL = 2e-6
_ABS_TOL = 2e-6
#: per-dtype envelopes (keyed on float itemsize): float64 carries ~15
#: significant digits, so summation-order noise sits far below 2e-6;
#: float32 only carries ~7 — whenever either side stored one, the
#: looser envelope applies to that column.
_DTYPE_TOLERANCES = {8: (_REL_TOL, _ABS_TOL), 4: (1e-4, 1e-4)}


def column_tolerances(names: Sequence[str], *column_maps) -> List[Optional[tuple]]:
    """Per-column ``(rel_tol, abs_tol)`` over ``sorted(names)``: the
    loosest envelope any side's float dtype needs, ``None`` for
    non-float columns (compared exactly).  Pass every side's column
    mapping — the reference computes in float64, but an engine column
    that was stored narrower legitimately rounds more coarsely."""
    tolerances: List[Optional[tuple]] = []
    for name in sorted(names):
        tol: Optional[tuple] = None
        for columns in column_maps:
            array = np.asarray(columns[name])
            if array.dtype.kind != "f":
                continue
            candidate = _DTYPE_TOLERANCES.get(
                array.dtype.itemsize, _DTYPE_TOLERANCES[8]
            )
            if tol is None or candidate[0] > tol[0]:
                tol = candidate
        tolerances.append(tol)
    return tolerances


def _normalize_column(array: np.ndarray) -> list:
    """Comparable canonical form of one output column.  Floats are *not*
    rounded — any digit-rounding can straddle a boundary and turn
    summation-order noise into a spurious mismatch; instead row
    comparison is tolerance-based (see :func:`rows_match`).  NaN is
    replaced by a sortable sentinel, -0.0 by 0.0."""
    if array.dtype.kind == "f":
        values = array.astype(np.float64)
        values = np.where(values == 0, 0.0, values)  # -0.0 -> 0.0
        values = np.where(np.isnan(values), _NAN_SENTINEL, values)
        return values.tolist()
    if array.dtype.kind in "iub":
        return array.astype(np.int64).tolist()
    return [str(v) for v in array.tolist()]


def _sort_key_column(array: np.ndarray, raw: list) -> list:
    """Row-ordering form of one column: floats rounded to 7 significant
    digits so summation-order noise (~1e-11 relative) cannot reorder
    rows across the two sides unless the rows are within comparison
    tolerance anyway."""
    if array.dtype.kind != "f":
        return raw
    values = np.asarray(raw, dtype=np.float64)
    magnitude = np.abs(values)
    exponent = np.zeros(len(values))
    nonzero = magnitude > 0
    with np.errstate(divide="ignore"):
        exponent[nonzero] = np.floor(np.log10(magnitude[nonzero]))
    scale = np.power(10.0, 6.0 - exponent)
    return (np.round(values * scale) / scale).tolist()


def normalized_rows(columns: Dict[str, np.ndarray], names: Sequence[str]) -> List[tuple]:
    """Canonically ordered multiset of rows over ``names`` (column order
    by name, row order by rounded sort keys, so neither engine/reference
    column orderings nor scheme-dependent row orderings matter)."""
    ordered = sorted(names)
    arrays = [np.asarray(columns[n]) for n in ordered]
    raw_cols = [_normalize_column(a) for a in arrays]
    if not raw_cols:
        return []
    key_cols = [_sort_key_column(a, raw) for a, raw in zip(arrays, raw_cols)]
    rows = list(zip(*raw_cols))
    keys = list(zip(*key_cols))
    order = sorted(range(len(rows)), key=keys.__getitem__)
    return [rows[i] for i in order]


def _values_match(a, b, tol: Optional[tuple] = None) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        rel, abs_ = tol if tol is not None else (_REL_TOL, _ABS_TOL)
        return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
    return a == b


def rows_match(
    expected: List[tuple],
    got: List[tuple],
    tolerances: Optional[List[Optional[tuple]]] = None,
) -> bool:
    """Pairwise comparison of two sorted row multisets; floats compare
    with relative/absolute tolerance (the reference's pairwise ``np.sum``
    and the engine's per-row accumulation round differently, and row
    order — hence accumulation order — differs per scheme).  With
    ``tolerances`` (see :func:`column_tolerances`) each column gets its
    own dtype-derived envelope; without, the float64 default applies."""
    if len(expected) != len(got):
        return False
    for expected_row, got_row in zip(expected, got):
        if len(expected_row) != len(got_row):
            return False
        for index, (a, b) in enumerate(zip(expected_row, got_row)):
            tol = tolerances[index] if tolerances is not None else None
            if not _values_match(a, b, tol):
                return False
    return True


def worst_relative_error(expected: List[tuple], got: List[tuple]) -> float:
    """The largest relative float discrepancy between two matched row
    multisets — the sweep reports its maximum so the gap between the
    noise actually observed and the comparison tolerance stays
    visible."""
    worst = 0.0
    for expected_row, got_row in zip(expected, got):
        for a, b in zip(expected_row, got_row):
            if not (isinstance(a, float) or isinstance(b, float)):
                continue
            denominator = max(abs(a), abs(b))
            if denominator > 0.0:
                worst = max(worst, abs(a - b) / denominator)
    return worst


# -------------------------------------------------------------- reporting
@dataclass
class Divergence:
    """One (query, scheme, variant) whose result differs from the
    reference; self-contained for reproduction.  ``repro_flags`` pins
    the database the plan was generated against (predicate literals are
    sampled from the data, so the plan depends on the data too)."""

    seed: int
    index: int
    scheme: str
    variant: str
    description: str
    logical_plan: str
    physical_plan: str
    detail: str
    repro_flags: str = ""

    def render(self) -> str:
        flags = f" {self.repro_flags}" if self.repro_flags else ""
        return "\n".join(
            [
                f"DIVERGENCE {self.description} under scheme={self.scheme} "
                f"variant={self.variant}",
                f"  reproduce: python -m repro.workload --seed {self.seed} "
                f"--queries {self.index + 1}{flags}",
                "  logical plan:",
                _indent(self.logical_plan, 4),
                "  physical plan (with per-operator actuals):",
                _indent(self.physical_plan, 4),
                "  mismatch:",
                _indent(self.detail, 4),
            ]
        )


def _indent(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


@dataclass
class WorkloadReport:
    """Outcome of one differential sweep."""

    seed: int
    queries: int
    executions: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: physical-operator kind -> times planned (default variant, all schemes)
    strategies: Dict[str, int] = field(default_factory=dict)
    #: per-operator-kind actuals accumulated over the default-variant runs
    operator_totals: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: largest relative float discrepancy seen across all matched
    #: (query, scheme, variant) results — how close the observed
    #: summation-order noise comes to the comparison tolerance
    worst_rel_error: float = 0.0
    #: update-aware sweeps only: committed batches and their volume
    commits: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    compactions: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        """JSON-ready form of the report (the ``--json`` CLI mode);
        per-execution detail lives in query-log records, not here."""
        return {
            "seed": int(self.seed),
            "queries": int(self.queries),
            "executions": int(self.executions),
            "ok": self.ok,
            "worst_rel_error": float(self.worst_rel_error),
            "strategies": {k: int(v) for k, v in sorted(self.strategies.items())},
            "operator_totals": {
                kind: {key: float(value) for key, value in totals.items()}
                for kind, totals in sorted(self.operator_totals.items())
            },
            "commits": int(self.commits),
            "rows_inserted": int(self.rows_inserted),
            "rows_deleted": int(self.rows_deleted),
            "compactions": int(self.compactions),
            "divergences": [
                {
                    "seed": d.seed,
                    "index": d.index,
                    "scheme": d.scheme,
                    "variant": d.variant,
                    "description": d.description,
                    "detail": d.detail,
                }
                for d in self.divergences
            ],
        }

    def render(self) -> str:
        lines = [
            f"workload differential: seed={self.seed} queries={self.queries} "
            f"executions={self.executions} divergences={len(self.divergences)}"
        ]
        if self.commits:
            lines.append(
                f"updates: {self.commits} commits (+{self.rows_inserted} rows, "
                f"-{self.rows_deleted} rows, {self.compactions} compactions)"
            )
        if self.executions:
            lines.append(
                f"worst float relative error: {self.worst_rel_error:.2e} "
                f"(tolerance {_REL_TOL:.0e})"
            )
        if self.strategies:
            strategies = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.strategies.items())
            )
            lines.append(f"strategies planned: {strategies}")
        if self.operator_totals:
            lines.append("per-operator actuals (default variant, all schemes):")
            lines.append(
                f"  {'operator':<14}{'calls':>8}{'rows out':>12}"
                f"{'io ms':>10}{'cpu ms':>10}{'mem MB':>10}"
            )
            for kind in sorted(self.operator_totals):
                totals = self.operator_totals[kind]
                lines.append(
                    f"  {kind:<14}{int(totals['calls']):>8}"
                    f"{int(totals['rows_out']):>12}"
                    f"{totals['io_seconds'] * 1e3:>10.2f}"
                    f"{totals['cpu_seconds'] * 1e3:>10.2f}"
                    f"{totals['reserved_bytes'] / 1e6:>10.2f}"
                )
        for divergence in self.divergences:
            lines.append("")
            lines.append(divergence.render())
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _bitwise_mismatch(serial, got) -> Optional[str]:
    """Exact (order- and bit-sensitive) comparison of a parallel
    execution's relation against the same scheme's serial default run.
    Fragmented plans without a reordering exchange gather partitions in
    storage order, so their parallel stream must reproduce the serial
    one *exactly* — no tolerance.  (Plans *with* a reordering
    co-partition gather carry the order-insensitive contract instead and
    are only held to the normalized-multiset check vs the reference.)"""
    serial_names = serial.column_names
    got_names = got.column_names
    if serial_names != got_names:
        return f"column mismatch: serial {serial_names}, parallel {got_names}"
    if serial.num_rows != got.num_rows:
        return f"row count mismatch: serial {serial.num_rows}, parallel {got.num_rows}"
    for name in serial_names:
        a, b = serial.column(name), got.column(name)
        equal = (
            np.array_equal(a, b, equal_nan=True)
            if a.dtype.kind == "f" and b.dtype.kind == "f"
            else np.array_equal(a, b)
        )
        if not equal:
            same = a == b
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                same = same | (np.isnan(a) & np.isnan(b))  # NaN pairs match
            rows = np.flatnonzero(~same) if len(a) else np.zeros(0, dtype=int)
            where = int(rows[0]) if len(rows) else -1
            return (
                f"column {name!r} differs (first at row {where}: "
                f"serial {a[where]!r}, parallel {b[where]!r})"
            )
    return None


#: public name for external exact-comparison users (the serving
#: differential); the underscore form stays the patchable internal hook.
bitwise_mismatch = _bitwise_mismatch


# ------------------------------------------------------------------ runner
def _diff_detail(
    expected: List[tuple],
    got: List[tuple],
    tolerances: Optional[List[Optional[tuple]]] = None,
) -> str:
    lines = [f"expected {len(expected)} rows, got {len(got)} rows"]
    shown = 0
    for i in range(min(len(expected), len(got))):
        if shown >= 3:
            lines.append("...")
            break
        if not all(
            _values_match(a, b, tolerances[j] if tolerances else None)
            for j, (a, b) in enumerate(zip(expected[i], got[i]))
        ):
            lines.append(f"row {i}: expected {expected[i]}")
            lines.append(f"row {i}: got      {got[i]}")
            shown += 1
    if len(expected) != len(got):
        longer, label = (expected, "missing") if len(expected) > len(got) else (got, "unexpected")
        for row in longer[min(len(expected), len(got)):][:3]:
            lines.append(f"{label}: {row}")
    return "\n".join(lines)


def run_differential(
    physical_dbs: Dict[str, PhysicalDatabase],
    seed: int = 0,
    num_queries: int = 50,
    variants: Optional[Dict[str, ExecutionOptions]] = None,
    disk: Optional[DiskModel] = None,
    costs: Optional[CostModel] = None,
    fail_fast: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    repro_flags: str = "",
    observer: Optional[Callable] = None,
) -> WorkloadReport:
    """Generate ``num_queries`` plans from ``seed`` and check every
    scheme x variant against the scheme-independent reference.

    ``repro_flags`` names the extra CLI flags (``--sf``,
    ``--datagen-seed``) that rebuild the same database, so divergence
    reports reproduce exactly.  ``observer`` is called as
    ``observer(query, scheme, variant, executor, result)`` after every
    execution — the CLI's observability sinks hang off it."""
    variants = variants or ablation_variants()
    db = next(iter(physical_dbs.values())).database
    generator = PlanGenerator(db)
    executors: Dict[Tuple[str, str], Executor] = {
        (scheme, variant): Executor(pdb, disk=disk, costs=costs, options=options)
        for scheme, pdb in physical_dbs.items()
        for variant, options in variants.items()
    }
    report = WorkloadReport(seed=seed, queries=num_queries)

    try:
        for index in range(num_queries):
            query = generator.generate(seed, index)
            _check_one_query(report, executors, db, query, repro_flags, observer)
            if report.divergences and fail_fast:
                return report
            if progress is not None:
                progress(index + 1, num_queries)
        return report
    finally:
        # process-backend variants hold worker pools and shared memory
        for executor in executors.values():
            executor.close()


def _check_one_query(
    report: WorkloadReport,
    executors: Dict[Tuple[str, str], "Executor"],
    db,
    query,
    repro_flags: str,
    observer: Optional[Callable] = None,
) -> None:
    """Run one generated query under every (scheme, variant) executor and
    record divergences against the naive reference (parallel variants
    additionally bit-for-bit against the scheme's serial default run)."""
    reference = evaluate_reference(db, query.plan)
    expected_names = sorted(reference.visible_names)
    expected = normalized_rows(reference.columns, expected_names)
    serial_relations: Dict[str, object] = {}

    for (scheme, variant), executor in executors.items():
        result = executor.execute(query.plan)
        report.executions += 1
        if observer is not None:
            observer(query, scheme, variant, executor, result)
        if variant == "default":
            serial_relations[scheme] = result.relation
        got_names = sorted(result.relation.column_names)
        if got_names != expected_names:
            detail = f"column mismatch: expected {expected_names}, got {got_names}"
            got = None
        else:
            got = normalized_rows(result.relation.columns, got_names)
            tolerances = column_tolerances(
                got_names, reference.columns, result.relation.columns
            )
            if rows_match(expected, got, tolerances):
                detail = None
                report.worst_rel_error = max(
                    report.worst_rel_error, worst_relative_error(expected, got)
                )
            else:
                detail = _diff_detail(expected, got, tolerances)
        if (
            detail is None
            and executor.options.workers > 1
            and scheme in serial_relations
        ):
            # result-contract dispatch: plans whose fragment plan
            # contains a reordering (canonical) gather are deterministic
            # multisets, not serial-ordered streams — the normalized
            # comparison above already covers them; everything else must
            # still match the serial run bit-for-bit, order included
            parallel = executor.parallel_plan(executor.lower(query.plan))
            if not (parallel.is_parallel and parallel.reorders):
                mismatch = _bitwise_mismatch(serial_relations[scheme], result.relation)
                if mismatch is not None:
                    detail = (
                        f"workers={executor.options.workers} diverges bit-for-bit "
                        f"from the serial default run:\n{mismatch}"
                    )
        if detail is not None:
            pplan = executor.lower(query.plan)
            report.divergences.append(
                Divergence(
                    seed=query.seed,
                    index=query.index,
                    scheme=scheme,
                    variant=variant,
                    description=query.description,
                    logical_plan=format_plan(query.plan),
                    physical_plan=format_physical_plan(
                        pplan, verbose=True, metrics=result.metrics
                    ),
                    detail=detail,
                    repro_flags=repro_flags,
                )
            )
        elif variant == "default":
            pplan = executor.lower(query.plan)
            for op in pplan.operators():
                report.strategies[op.kind] = report.strategies.get(op.kind, 0) + 1
                actuals = result.metrics.actuals_for(op)
                if actuals is None:
                    continue
                totals = report.operator_totals.setdefault(
                    op.kind,
                    {
                        "calls": 0.0,
                        "rows_out": 0.0,
                        "io_seconds": 0.0,
                        "cpu_seconds": 0.0,
                        "reserved_bytes": 0.0,
                    },
                )
                totals["calls"] += 1
                totals["rows_out"] += actuals.rows_out
                totals["io_seconds"] += actuals.io_seconds
                totals["cpu_seconds"] += actuals.cpu_seconds
                totals["reserved_bytes"] += actuals.reserved_bytes


def _append_second_reference(
    report: WorkloadReport,
    physical_dbs: Dict[str, PhysicalDatabase],
    batch,
    repro_flags: str,
) -> None:
    """Cross-check the incremental append path against the full-rebuild
    slow path (``append_rows(..., rebuild=True)``) — valid on the first,
    insert-only commit, while the BDCC base tables still match the
    pristine build.  Key order, row placement and the incrementally
    merged count table must agree exactly."""
    import numpy as np

    from ..core.append import append_rows

    bdcc_pdb = next(
        (pdb for pdb in physical_dbs.values() if pdb.bdcc_tables()), None
    )
    if bdcc_pdb is None:
        return
    db = bdcc_pdb.database
    for table, rows in batch.inserts:
        stored = bdcc_pdb.table(table)
        if stored.bdcc is None:
            continue
        incremental = append_rows(stored.bdcc, db, rows)
        rebuilt = append_rows(stored.bdcc, db, rows, rebuild=True)
        same = (
            np.array_equal(incremental.keys, rebuilt.keys)
            and np.array_equal(incremental.row_source, rebuilt.row_source)
            and np.array_equal(incremental.count_table.keys, rebuilt.count_table.keys)
            and np.array_equal(incremental.count_table.counts, rebuilt.count_table.counts)
            and np.array_equal(incremental.count_table.offsets, rebuilt.count_table.offsets)
        )
        if not same:
            report.divergences.append(
                Divergence(
                    seed=batch.seed,
                    index=batch.index,
                    scheme=bdcc_pdb.scheme_name,
                    variant="append-rebuild-reference",
                    description=batch.description,
                    logical_plan=f"append {len(next(iter(rows.values())))} rows to {table}",
                    physical_plan="(incremental append vs rebuild=True reference)",
                    detail="incremental append diverges from the full rebuild",
                    repro_flags=repro_flags,
                )
            )


def run_update_differential(
    physical_dbs: Dict[str, PhysicalDatabase],
    seed: int = 0,
    rounds: int = 5,
    queries_per_round: int = 5,
    variants: Optional[Dict[str, ExecutionOptions]] = None,
    disk: Optional[DiskModel] = None,
    costs: Optional[CostModel] = None,
    fail_fast: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    repro_flags: str = "",
    policy=None,
    observer: Optional[Callable] = None,
) -> WorkloadReport:
    """The update-aware sweep: seeded insert/delete batches committed
    through one :class:`~repro.updates.UpdateSession` (all schemes share
    the logical database, so the naive reference sees every change
    automatically), each commit followed by ``queries_per_round``
    generated queries checked against the reference under every
    scheme × variant — and parallel variants bit-for-bit against serial.

    Round 0 is insert-only and additionally cross-checks the incremental
    append path against the full-rebuild slow path (the oracle's second
    reference).  Executors persist across rounds, so a stale cached plan
    surviving a commit would surface as a divergence — the epoch keying
    is under test too.
    """
    from ..updates import UpdateSession
    from .updates import UpdateGenerator

    variants = variants or ablation_variants()
    db = next(iter(physical_dbs.values())).database
    plan_generator = PlanGenerator(db)
    update_generator = UpdateGenerator(db)
    executors: Dict[Tuple[str, str], Executor] = {
        (scheme, variant): Executor(pdb, disk=disk, costs=costs, options=options)
        for scheme, pdb in physical_dbs.items()
        for variant, options in variants.items()
    }
    session = UpdateSession(
        *physical_dbs.values(), policy=policy, disk=disk, costs=costs
    )
    report = WorkloadReport(seed=seed, queries=rounds * queries_per_round)

    try:
        for round_index in range(rounds):
            batch = update_generator.generate(seed, round_index)
            for table, rows in batch.inserts:
                session.insert_rows(table, rows)
            for table, predicate in batch.deletes:
                session.delete_where(table, predicate)
            result = session.commit()
            report.commits += 1
            report.rows_inserted += sum(result.inserted.values())
            report.rows_deleted += sum(result.deleted.values())
            report.compactions += sum(1 for c in result.changes if c.compacted)
            if round_index == 0 and batch.is_insert_only and not result.compacted_tables():
                _append_second_reference(report, physical_dbs, batch, repro_flags)
            if report.divergences and fail_fast:
                return report

            for q in range(queries_per_round):
                query = plan_generator.generate(
                    seed, round_index * queries_per_round + q
                )
                query.description += f" (after {batch.description})"
                _check_one_query(
                    report, executors, db, query, repro_flags, observer
                )
                if report.divergences and fail_fast:
                    return report
            if progress is not None:
                progress(round_index + 1, rounds)
        return report
    finally:
        # process-backend variants hold worker pools and shared memory
        for executor in executors.values():
            executor.close()
