"""Seeded random logical-plan generator over any schema.

Each plan is a random-but-*valid* composition of the logical algebra:
a base scan, up to three foreign-key joins (child->parent N:1 or
parent->child 1:N; inner, left, semi or anti, occasionally with a
residual condition), predicates with random shapes over FK / dimension /
plain columns (literals sampled from the actual data so selectivities
vary from empty to full), then either a group-by over key subsets or an
explicit projection, and optionally sort and limit.

Generation is deterministic in ``(seed, index)`` *for a given
database* (predicate literals are sampled from the data): a divergence
report needs those two numbers plus the data-generation parameters to
be reproduced.  The shapes are biased
toward what the planner's strategy decisions key on — joins over
declared FKs (merge joins under PK, sandwich joins under BDCC),
group-bys over FK child columns (sandwich aggregation), predicates on
dimension-hinted columns (pushdown + propagation).

Differential-comparison invariants the generator maintains:

* columns made nullable by a left join never reach the output raw and
  are only ever aggregated with ``count`` (valid-mask semantics); they
  are also never used as join keys, group keys or sort keys;
* ``LIMIT`` only ever follows a *total-order* sort (the sort keys
  contain all group-by keys, or the primary key of the alias whose rows
  the output is in 1:1 correspondence with), so the limited prefix is
  scheme-independent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..catalog import Schema
from ..execution.aggregate import AggSpec
from ..execution.expressions import (
    Between,
    Cmp,
    Col,
    Expr,
    InList,
    Like,
    Not,
    Or,
)
from ..planner.logical import Plan, scan
from ..storage.database import Database

__all__ = ["GeneratedQuery", "PlanGenerator"]

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_MAX_JOINS = 3


@dataclass
class GeneratedQuery:
    """One generated query: the plan plus how to regenerate it."""

    seed: int
    index: int
    plan: Plan
    description: str


def _choice(rng: np.random.RandomState, items: Sequence):
    return items[int(rng.randint(len(items)))]


def _sample_value(rng: np.random.RandomState, values: np.ndarray):
    """One literal sampled from a column's actual values, as a python
    scalar (so plans repr cleanly and expressions broadcast)."""
    raw = values[int(rng.randint(len(values)))]
    return raw.item() if hasattr(raw, "item") else raw


@dataclass
class _Stream:
    """Generator-side view of the plan built so far."""

    plan: Plan
    #: stream column name -> (alias, base column name)
    columns: Dict[str, Tuple[str, str]]
    #: alias -> base table
    aliases: Dict[str, str]
    #: aliases whose columns may be NULL (right side of a left join)
    nullable: Set[str]
    #: alias whose primary key is unique per output row (enables a
    #: total-order sort on non-aggregated plans), or None
    granular: Optional[str]
    #: group-by keys, once the plan aggregated (None before/otherwise)
    group_keys: Optional[List[str]] = None
    #: projected primary-key columns, once the plan projected
    projected_pk: List[str] = dataclasses.field(default_factory=list)

    def prefix(self, alias: str) -> str:
        return "" if alias == self.aliases[alias] else f"{alias}."

    def non_nullable_columns(self) -> List[str]:
        return [c for c, (a, _) in self.columns.items() if a not in self.nullable]

    def nullable_columns(self) -> List[str]:
        return [c for c, (a, _) in self.columns.items() if a in self.nullable]


class PlanGenerator:
    """Draws random valid plans against one logical database.

    The database provides both the schema (tables, keys, FKs, hints —
    via the catalog's introspection helpers) and the data the literal
    sampler draws predicate constants from.
    """

    def __init__(self, db: Database):
        self.db = db
        self.schema: Schema = db.schema
        self._tables = [t for t in db.loaded_tables if db.num_rows(t) > 0]
        if not self._tables:
            raise ValueError("database has no populated tables to generate over")

    # -------------------------------------------------------------- public
    def generate(self, seed: int, index: int) -> GeneratedQuery:
        """The plan for ``(seed, index)``; deterministic."""
        rng = np.random.RandomState([seed & 0x7FFFFFFF, index & 0x7FFFFFFF])
        stream = self._base_scan(rng)
        num_joins = int(rng.choice([0, 1, 2, 3], p=[0.2, 0.3, 0.3, 0.2]))
        joins = 0
        for _ in range(num_joins):
            if self._add_join(rng, stream):
                joins += 1
        aggregated = self._add_aggregate_or_project(rng, stream)
        limited = self._add_sort_limit(rng, stream, aggregated)
        shape = [f"{len(stream.aliases)} scans", f"{joins} joins"]
        shape.append("agg" if aggregated else "project")
        if limited:
            shape.append("limit")
        description = f"seed={seed} index={index}: " + ", ".join(shape)
        return GeneratedQuery(seed, index, stream.plan, description)

    # ----------------------------------------------------------- base scan
    def _base_scan(self, rng: np.random.RandomState) -> _Stream:
        table = _choice(rng, self._tables)
        predicate = None
        if rng.random_sample() < 0.55:
            predicate = self._make_predicate(rng, table, "")
        plan = scan(table, predicate=predicate)
        columns = {
            c: (table, c) for c in self.schema.table(table).column_names
        }
        return _Stream(
            plan=plan,
            columns=columns,
            aliases={table: table},
            nullable=set(),
            granular=table if self.schema.key_columns(table) else None,
        )

    # --------------------------------------------------------------- joins
    def _join_candidates(self, stream: _Stream):
        """(direction, anchor alias, fk) edges the plan can still grow
        along; aliases with nullable columns cannot anchor a join (their
        key columns may be NULL)."""
        candidates = []
        for alias, table in stream.aliases.items():
            if alias in stream.nullable:
                continue
            prefix = stream.prefix(alias)
            for fk in self.schema.outgoing_foreign_keys(table):
                if all(prefix + c in stream.columns for c in fk.child_columns):
                    candidates.append(("up", alias, fk))
            for fk in self.schema.incoming_foreign_keys(table):
                if fk.child_table not in self._tables:
                    continue
                if all(prefix + c in stream.columns for c in fk.parent_columns):
                    candidates.append(("down", alias, fk))
        return candidates

    def _new_alias(self, stream: _Stream, table: str) -> str:
        if table not in stream.aliases:
            return table
        n = 2
        while f"{table}{n}" in stream.aliases:
            n += 1
        return f"{table}{n}"

    def _add_join(self, rng: np.random.RandomState, stream: _Stream) -> bool:
        candidates = self._join_candidates(stream)
        if not candidates:
            return False
        direction, anchor, fk = _choice(rng, candidates)
        new_table = fk.parent_table if direction == "up" else fk.child_table
        alias = self._new_alias(stream, new_table)
        new_prefix = "" if alias == new_table else f"{alias}."
        anchor_prefix = stream.prefix(anchor)

        predicate = None
        if rng.random_sample() < 0.55:
            predicate = self._make_predicate(rng, new_table, new_prefix)
        right = scan(new_table, alias=alias, predicate=predicate)

        if direction == "up":
            on = [
                (anchor_prefix + c, new_prefix + p)
                for c, p in zip(fk.child_columns, fk.parent_columns)
            ]
            how = _choice(rng, ["inner"] * 11 + ["semi"] * 3 + ["anti"] * 2 + ["left"] * 4)
        else:
            on = [
                (anchor_prefix + p, new_prefix + c)
                for c, p in zip(fk.child_columns, fk.parent_columns)
            ]
            if anchor == stream.granular:
                how = _choice(rng, ["inner"] * 12 + ["semi"] * 3 + ["anti"] * 2 + ["left"] * 3)
            else:
                # a 1:N expansion off a non-granular alias would multiply
                # already-multiplied rows (quadratic); only the
                # existence-checking kinds stay row-linear
                how = _choice(rng, ["semi"] * 3 + ["anti"] * 2)

        residual = None
        if how in ("inner", "semi", "anti") and rng.random_sample() < 0.15:
            residual = self._make_residual(rng, stream, new_table, new_prefix)

        stream.plan = stream.plan.join(right, on=on, how=how, residual=residual)
        stream.aliases[alias] = new_table
        if how in ("inner", "left"):
            for c in self.schema.table(new_table).column_names:
                stream.columns[new_prefix + c] = (alias, c)
        if how == "left":
            stream.nullable.add(alias)
        # output-row uniqueness bookkeeping (see module docstring)
        if direction == "down":
            if how == "inner":
                stream.granular = alias if stream.granular == anchor else None
            elif how == "left":
                stream.granular = None
        return True

    def _make_residual(
        self, rng: np.random.RandomState, stream: _Stream, new_table: str, new_prefix: str
    ) -> Optional[Expr]:
        """A non-equi condition over joined rows: numeric column vs a
        sampled literal.  Candidates come from the current stream's
        non-nullable columns and the newly scanned table."""
        candidates: List[Tuple[str, str, str]] = [
            (name, alias, base)
            for name, (alias, base) in stream.columns.items()
            if alias not in stream.nullable
        ]
        candidates += [
            (new_prefix + c, None, c)  # type: ignore[list-item]
            for c in self.schema.table(new_table).column_names
        ]
        numeric = []
        for name, alias, base in candidates:
            table = new_table if alias is None else stream.aliases[alias]
            if self.db.column(table, base).dtype.kind in "iuf":
                numeric.append((name, table, base))
        if not numeric:
            return None
        name, table, base = _choice(rng, numeric)
        literal = _sample_value(rng, self.db.column(table, base))
        return Cmp(_choice(rng, ("<", "<=", ">", ">=")), Col(name), _lit(literal))

    # ---------------------------------------------------------- predicates
    def _predicate_columns(self, table: str) -> List[str]:
        """Predicate targets, biased toward the columns clustering acts
        on: FK child columns and dimension-hinted columns first."""
        pool: List[str] = []
        pool += 3 * list(self.schema.fk_child_columns(table))
        pool += 3 * list(self.schema.hinted_columns(table))
        pool += 2 * list(self.schema.key_columns(table))
        pool += 1 * list(self.schema.plain_columns(table))
        return pool

    def _make_predicate(self, rng: np.random.RandomState, table: str, prefix: str) -> Optional[Expr]:
        pool = self._predicate_columns(table)
        if not pool:
            return None
        conjuncts: List[Expr] = []
        for _ in range(1 + int(rng.random_sample() < 0.35)):
            conjunct = self._make_conjunct(rng, table, prefix, _choice(rng, pool))
            if conjunct is not None:
                conjuncts.append(conjunct)
        if not conjuncts:
            return None
        predicate = conjuncts[0]
        for extra in conjuncts[1:]:
            predicate = predicate & extra
        return predicate

    def _make_conjunct(
        self, rng: np.random.RandomState, table: str, prefix: str, column: str
    ) -> Optional[Expr]:
        values = self.db.column(table, column)
        name = prefix + column
        if values.dtype.kind in "iuf":
            shape = rng.random_sample()
            if shape < 0.4:
                low = _sample_value(rng, values)
                high = _sample_value(rng, values)
                if high < low:
                    low, high = high, low
                expr: Expr = Between(Col(name), _lit(low), _lit(high))
            elif shape < 0.85:
                expr = Cmp(_choice(rng, _CMP_OPS), Col(name), _lit(_sample_value(rng, values)))
            else:
                picks = sorted({_sample_value(rng, values) for _ in range(int(rng.randint(1, 5)))})
                expr = InList(Col(name), picks)
        else:
            shape = rng.random_sample()
            sample = str(_sample_value(rng, values))
            if shape < 0.4:
                expr = Cmp("==", Col(name), _lit(sample))
            elif shape < 0.7:
                picks = sorted({str(_sample_value(rng, values)) for _ in range(int(rng.randint(1, 4)))})
                expr = InList(Col(name), picks)
            else:
                fragment = sample[: max(int(rng.randint(2, 5)), 1)]
                if not fragment or "_" in fragment or "%" in fragment:
                    expr = Cmp("!=", Col(name), _lit(sample))
                else:
                    pattern = fragment + "%" if rng.random_sample() < 0.5 else "%" + fragment + "%"
                    expr = Like(Col(name), pattern)
        wrap = rng.random_sample()
        if wrap < 0.1:
            return Not(expr)
        if wrap < 0.2:
            other = self._make_conjunct(rng, table, prefix, column)
            if other is not None and not isinstance(other, (Or, Not)):
                return Or(expr, other)
        return expr

    # --------------------------------------------------- aggregate/project
    def _grouping_pool(self, stream: _Stream) -> List[str]:
        """Group-key candidates over key subsets: FK child columns and
        primary keys weigh heaviest (they are what sandwich/streaming
        aggregation keys on), hinted and plain columns ride along."""
        pool: List[str] = []
        for alias, table in stream.aliases.items():
            if alias in stream.nullable:
                continue
            prefix = stream.prefix(alias)
            for c in self.schema.fk_child_columns(table):
                pool += 3 * [prefix + c]
            for c in self.schema.key_columns(table):
                pool += 2 * [prefix + c]
            for c in self.schema.hinted_columns(table):
                pool += 2 * [prefix + c]
            for c in self.schema.plain_columns(table):
                pool.append(prefix + c)
        return [c for c in pool if c in stream.columns]

    def _numeric_columns(self, stream: _Stream, names: Sequence[str]) -> List[str]:
        out = []
        for name in names:
            alias, base = stream.columns[name]
            if self.db.column(stream.aliases[alias], base).dtype.kind in "iuf":
                out.append(name)
        return out

    def _add_aggregate_or_project(self, rng: np.random.RandomState, stream: _Stream) -> bool:
        """Finish the dataflow with a group-by (returns True) or an
        explicit projection (returns False); either way the plan's
        output columns are exactly known, never nullable raw."""
        if rng.random_sample() < 0.65:
            if self._add_aggregate(rng, stream):
                return True
        self._add_projection(rng, stream)
        return False

    def _add_aggregate(self, rng: np.random.RandomState, stream: _Stream) -> bool:
        non_null = stream.non_nullable_columns()
        if not non_null:
            return False
        scalar = rng.random_sample() < 0.12
        keys: List[str] = []
        if not scalar:
            pool = self._grouping_pool(stream)
            if not pool:
                return False
            wanted = int(rng.randint(1, 4))
            for _ in range(8):
                if len(keys) >= wanted:
                    break
                candidate = _choice(rng, pool)
                if candidate not in keys:
                    keys.append(candidate)
            if not keys:
                return False

        numeric = self._numeric_columns(stream, non_null)
        nullable = stream.nullable_columns()
        aggs: List[AggSpec] = []
        for i in range(int(rng.randint(1, 4))):
            name = f"agg_{i}"
            roll = rng.random_sample()
            if roll < 0.15 or (not numeric and not nullable):
                aggs.append(AggSpec(name, "count"))
            elif nullable and roll < 0.4:
                # the valid-mask path: count a left-join-nullable column
                aggs.append(AggSpec(name, "count", Col(_choice(rng, nullable))))
            elif numeric and roll < 0.85:
                fn = _choice(rng, ("sum", "avg", "min", "max"))
                column = Col(_choice(rng, numeric))
                expr: Expr = column
                if fn == "sum" and len(numeric) > 1 and rng.random_sample() < 0.3:
                    expr = column * Col(_choice(rng, numeric))
                aggs.append(AggSpec(name, fn, expr))
            else:
                aggs.append(AggSpec(name, "count_distinct", Col(_choice(rng, non_null))))
        stream.plan = stream.plan.groupby(keys, aggs)
        stream.columns = {k: stream.columns[k] for k in keys}
        stream.nullable = set()
        stream.granular = None
        stream.group_keys = list(keys)
        return True

    def _add_projection(self, rng: np.random.RandomState, stream: _Stream) -> None:
        visible = stream.non_nullable_columns()
        must_keep: List[str] = []
        if stream.granular and stream.granular in stream.aliases:
            prefix = stream.prefix(stream.granular)
            pk = self.schema.key_columns(stream.aliases[stream.granular])
            must_keep = [prefix + c for c in pk if prefix + c in stream.columns]
            if len(must_keep) != len(pk):
                must_keep = []
                stream.granular = None
        elif stream.granular:
            stream.granular = None
        wanted = int(rng.randint(2, 7))
        chosen = list(must_keep)
        for _ in range(16):
            if len(chosen) >= wanted or len(chosen) >= len(visible):
                break
            candidate = _choice(rng, visible)
            if candidate not in chosen:
                chosen.append(candidate)
        if not chosen:
            chosen = visible[:1] if visible else list(stream.columns)[:1]
        items: List[Tuple[str, Expr]] = [(name, Col(name)) for name in chosen]
        numeric = self._numeric_columns(stream, [c for c in chosen])
        if numeric and rng.random_sample() < 0.3:
            base = Col(_choice(rng, numeric))
            computed = base * 2 if rng.random_sample() < 0.5 else base + Col(_choice(rng, numeric))
            items.append(("expr_0", computed))
        stream.plan = stream.plan.project_items(items)
        stream.columns = {
            name: stream.columns.get(name, ("?", name)) for name, _ in items
        }
        stream.projected_pk = must_keep

    # ----------------------------------------------------------sort/limit
    def _add_sort_limit(self, rng: np.random.RandomState, stream: _Stream, aggregated: bool) -> bool:
        if aggregated:
            keys = list(stream.group_keys or [])
            if not keys or rng.random_sample() >= 0.65:
                return False
            rng.shuffle(keys)
            sort_keys = [(k, bool(rng.randint(2))) for k in keys]
            stream.plan = stream.plan.sort(sort_keys)
            if rng.random_sample() < 0.5:
                stream.plan = stream.plan.limit(int(rng.randint(1, 31)))
                return True
            return False
        if rng.random_sample() >= 0.5:
            return False
        names = list(stream.columns)
        pk = list(stream.projected_pk)
        if pk:
            extras = [n for n in names if n not in pk]
            rng.shuffle(extras)
            lead = extras[: int(rng.randint(0, 3))]
            sort_keys = [(k, bool(rng.randint(2))) for k in lead + pk]
            stream.plan = stream.plan.sort(sort_keys)
            if rng.random_sample() < 0.5:
                stream.plan = stream.plan.limit(int(rng.randint(1, 31)))
                return True
            return False
        rng.shuffle(names)
        lead = names[: max(int(rng.randint(1, 3)), 1)]
        stream.plan = stream.plan.sort([(k, bool(rng.randint(2))) for k in lead])
        return False


def _lit(value):
    from ..execution.expressions import Const

    return Const(value)
