"""Logical column datatypes and their physical representation.

The engine stores every column as a numpy array.  Each logical datatype
maps to a numpy dtype plus a *stored width* in bytes, which the page model
(:mod:`repro.storage.pages`) uses to translate row counts into 32 KB pages
— the unit the paper's IO reasoning (efficient random access size ``A_R``,
count-table granularity selection) is expressed in.

Widths model a lightly compressed column store: the paper notes all three
compared schemes "use automatic compression" and occupy the same ~55 GB,
so a scheme-independent per-type width preserves the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DataType",
    "INT32",
    "INT64",
    "FLOAT64",
    "DECIMAL",
    "DATE",
    "BOOL",
    "string_type",
]


@dataclass(frozen=True)
class DataType:
    """A logical column type.

    Attributes:
        name: human-readable type name, e.g. ``"int32"`` or ``"string(25)"``.
        numpy_dtype: dtype used for in-memory vectors.
        stored_bytes: bytes one value occupies on (modelled) disk after
            light compression.  Drives the page model only; in-memory
            arrays use the natural numpy width.
    """

    name: str
    numpy_dtype: str
    stored_bytes: float

    @property
    def is_string(self) -> bool:
        return self.numpy_dtype.startswith("<U")

    @property
    def is_date(self) -> bool:
        return self.name == "date"

    def empty(self, n: int) -> np.ndarray:
        """Allocate an uninitialised vector of ``n`` values of this type."""
        return np.empty(n, dtype=self.numpy_dtype)


INT32 = DataType("int32", "int32", 4.0)
INT64 = DataType("int64", "int64", 8.0)
FLOAT64 = DataType("float64", "float64", 8.0)
#: TPC-H decimals; stored as float64 in memory, modelled as 8 bytes on disk.
DECIMAL = DataType("decimal", "float64", 8.0)
#: Dates are stored as int32 days since 1970-01-01 (numpy datetime64[D] epoch).
DATE = DataType("date", "int32", 4.0)
BOOL = DataType("bool", "bool", 1.0)


def string_type(width: int, avg_bytes: float | None = None) -> DataType:
    """A fixed-maximum-width string type.

    Args:
        width: maximum number of characters (numpy ``<U{width}`` storage).
        avg_bytes: modelled stored bytes per value.  Defaults to the full
            ``width`` — callers for variable-length text (comments) pass
            the dbgen average so the page model matches dbgen's density.
    """
    if width <= 0:
        raise ValueError(f"string width must be positive, got {width}")
    stored = float(width if avg_bytes is None else avg_bytes)
    return DataType(f"string({width})", f"<U{width}", stored)
