"""Relational catalog: tables, keys, foreign keys and index hints.

This is the "classic DDL" input the paper's Algorithm 2 consumes: the
advisor looks only at declared foreign keys and ``CREATE INDEX``
statements (interpreted as BDCC hints), never at a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .datatypes import DataType

__all__ = ["Column", "Table", "ForeignKey", "IndexHint", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for inconsistent catalog definitions or lookups."""


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    datatype: DataType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} {self.datatype.name}"


@dataclass
class Table:
    """A base table definition.

    Attributes:
        name: table name (unique within a :class:`Schema`).
        columns: ordered column definitions.
        primary_key: names of primary-key columns (may be empty).
    """

    name: str
    columns: List[Column]
    primary_key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(col.name)
        for key_col in self.primary_key:
            if key_col not in seen:
                raise SchemaError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key ``child(child_columns) -> parent(parent_columns)``.

    The identifier ``name`` is the ``FK_Ti_Tj`` of Definition 2; dimension
    paths are chains of these names.
    """

    name: str
    child_table: str
    child_columns: Tuple[str, ...]
    parent_table: str
    parent_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise SchemaError(
                f"foreign key {self.name!r}: column count mismatch "
                f"{self.child_columns} -> {self.parent_columns}"
            )
        if not self.child_columns:
            raise SchemaError(f"foreign key {self.name!r} has no columns")


@dataclass(frozen=True)
class IndexHint:
    """A ``CREATE INDEX name ON table(columns)`` statement.

    Algorithm 2 treats these purely as BDCC hints: an index whose column
    set equals a foreign key requests co-clustering along that key; any
    other index introduces a new dimension on its columns.

    ``dimension_name`` optionally names the dimension a non-FK hint
    creates (the paper uses D_NATION / D_PART / D_DATE); the advisor
    otherwise derives ``D_<TABLE>_<LASTCOL>``.
    """

    name: str
    table: str
    columns: Tuple[str, ...]
    dimension_name: Optional[str] = None


class Schema:
    """A collection of tables, foreign keys and index hints.

    Provides the lookups the advisor needs: outgoing foreign keys per
    table and a leaves-first traversal order of the schema DAG (the
    *projection* of Algorithm 2 step (i): referenced tables before
    referencing tables).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._foreign_keys: Dict[str, ForeignKey] = {}
        self._index_hints: List[IndexHint] = []

    # ------------------------------------------------------------------ DDL
    def add_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, DataType]],
        primary_key: Sequence[str] = (),
    ) -> Table:
        """Define a table from ``(name, datatype)`` pairs."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already defined")
        table = Table(name, [Column(n, t) for n, t in columns], tuple(primary_key))
        self._tables[name] = table
        return table

    def add_foreign_key(
        self,
        name: str,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str] = (),
    ) -> ForeignKey:
        """Declare a foreign key; parent columns default to the parent PK."""
        child = self.table(child_table)
        parent = self.table(parent_table)
        if not parent_columns:
            parent_columns = parent.primary_key
            if not parent_columns:
                raise SchemaError(
                    f"foreign key {name!r}: parent {parent_table!r} has no primary key"
                )
        for col in child_columns:
            if not child.has_column(col):
                raise SchemaError(f"foreign key {name!r}: {child_table}.{col} missing")
        for col in parent_columns:
            if not parent.has_column(col):
                raise SchemaError(f"foreign key {name!r}: {parent_table}.{col} missing")
        if name in self._foreign_keys:
            raise SchemaError(f"foreign key {name!r} already defined")
        fkey = ForeignKey(name, child_table, tuple(child_columns), parent_table, tuple(parent_columns))
        self._foreign_keys[name] = fkey
        return fkey

    def add_index_hint(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        dimension_name: Optional[str] = None,
    ) -> IndexHint:
        """Record a ``CREATE INDEX`` statement (a BDCC hint)."""
        tbl = self.table(table)
        for col in columns:
            if not tbl.has_column(col):
                raise SchemaError(f"index {name!r}: {table}.{col} missing")
        hint = IndexHint(name, table, tuple(columns), dimension_name)
        self._index_hints.append(hint)
        return hint

    # -------------------------------------------------------------- lookups
    @property
    def tables(self) -> List[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    @property
    def foreign_keys(self) -> List[ForeignKey]:
        return list(self._foreign_keys.values())

    @property
    def index_hints(self) -> List[IndexHint]:
        return list(self._index_hints)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def foreign_key(self, name: str) -> ForeignKey:
        try:
            return self._foreign_keys[name]
        except KeyError:
            raise SchemaError(f"unknown foreign key {name!r}") from None

    def outgoing_foreign_keys(self, table: str) -> List[ForeignKey]:
        """Foreign keys whose child is ``table``, in declaration order."""
        return [fk for fk in self._foreign_keys.values() if fk.child_table == table]

    def incoming_foreign_keys(self, table: str) -> List[ForeignKey]:
        """Foreign keys whose parent is ``table``, in declaration order."""
        return [fk for fk in self._foreign_keys.values() if fk.parent_table == table]

    def hints_for(self, table: str) -> List[IndexHint]:
        return [h for h in self._index_hints if h.table == table]

    def find_foreign_key(
        self, child_table: str, child_columns: Iterable[str]
    ) -> Optional[ForeignKey]:
        """The FK on ``child_table`` over exactly ``child_columns``, if any."""
        wanted = tuple(sorted(child_columns))
        for fk in self._foreign_keys.values():
            if fk.child_table == child_table and tuple(sorted(fk.child_columns)) == wanted:
                return fk
        return None

    # -------------------------------------------------------- introspection
    def key_columns(self, table: str) -> Tuple[str, ...]:
        """The primary-key columns of ``table`` (may be empty)."""
        return tuple(self.table(table).primary_key)

    def fk_child_columns(self, table: str) -> Tuple[str, ...]:
        """Columns of ``table`` participating in any outgoing foreign
        key, in declaration order, deduplicated — the columns whose
        predicates and joins BDCC pushdown/propagation act on."""
        seen: List[str] = []
        for fk in self.outgoing_foreign_keys(table):
            for column in fk.child_columns:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def hinted_columns(self, table: str) -> Tuple[str, ...]:
        """Columns of ``table`` named by ``CREATE INDEX`` hints — the
        dimension columns of Algorithm 2 (e.g. ``o_orderdate``)."""
        seen: List[str] = []
        for hint in self.hints_for(table):
            for column in hint.columns:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def plain_columns(self, table: str) -> Tuple[str, ...]:
        """Columns of ``table`` that are neither key, FK-child nor
        hinted: the columns no clustering scheme organises."""
        special = set(self.key_columns(table))
        special.update(self.fk_child_columns(table))
        special.update(self.hinted_columns(table))
        return tuple(
            c for c in self.table(table).column_names if c not in special
        )

    def table_of_column(self, column: str) -> Optional[str]:
        """The unique table owning ``column``, or None if absent/ambiguous."""
        owners = [t.name for t in self._tables.values() if t.has_column(column)]
        if len(owners) == 1:
            return owners[0]
        return None

    # ------------------------------------------------------------ traversal
    def leaves_first_order(self) -> List[str]:
        """Tables ordered so every referenced (parent) table precedes its
        referencing (child) tables — the traversal Algorithm 2 uses.

        Raises:
            SchemaError: if the foreign-key graph has a cycle.
        """
        remaining = dict.fromkeys(self._tables)
        order: List[str] = []
        while remaining:
            progress = False
            for name in list(remaining):
                parents = {
                    fk.parent_table
                    for fk in self.outgoing_foreign_keys(name)
                    if fk.parent_table != name
                }
                if parents.isdisjoint(remaining):
                    order.append(name)
                    del remaining[name]
                    progress = True
            if not progress:
                raise SchemaError(
                    f"foreign-key cycle among tables: {sorted(remaining)}"
                )
        return order
