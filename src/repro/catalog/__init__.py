"""Relational catalog: datatypes, tables, foreign keys and index hints."""

from .datatypes import BOOL, DATE, DECIMAL, FLOAT64, INT32, INT64, DataType, string_type
from .schema import Column, ForeignKey, IndexHint, Schema, SchemaError, Table

__all__ = [
    "BOOL",
    "DATE",
    "DECIMAL",
    "FLOAT64",
    "INT32",
    "INT64",
    "DataType",
    "string_type",
    "Column",
    "ForeignKey",
    "IndexHint",
    "Schema",
    "SchemaError",
    "Table",
]
