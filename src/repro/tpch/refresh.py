"""TPC-H refresh streams RF1/RF2 over the update subsystem.

The spec's refresh functions, scaled like the data generator: one pair
touches ~0.1% of ORDERS — RF1 inserts new orders with their lineitems
(keys above the current maximum, dates/priorities/parts drawn with the
dbgen-style distributions), RF2 deletes an equal number of existing
orders together with their lineitems (children and parents in one
commit, so referential integrity holds throughout).

Both run through :class:`~repro.updates.UpdateSession` against every
scheme at once: inserts bin into existing BDCC zones, deletes mark
bitmaps, the count tables update incrementally, and compaction kicks in
when the policy says so.  :func:`run_refresh_suite` alternates refresh
pairs with probe queries (Q1/Q6 by default) and reports, per scheme, the
refresh cost next to the query latency — the paper's maintainability
story quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..execution.expressions import Col, InList
from ..schemes.base import PhysicalDatabase
from ..storage.database import Database, lookup_rows
from ..updates import CompactionPolicy, UpdateSession
from . import text
from .dates import CURRENT_DATE, ORDER_DATE_MAX, ORDER_DATE_MIN
from .datagen import _comments
from .environment import Environment
from .queries import QUERIES
from .runner import run_query

__all__ = ["refresh_pair_size", "generate_rf1", "rf2_order_keys", "RefreshResult", "run_refresh_suite"]


def refresh_pair_size(scale_factor: float) -> int:
    """Orders touched per refresh function (SF * 1500, floored for the
    tiny scale factors the simulator runs at)."""
    return max(int(1500 * scale_factor), 8)


def generate_rf1(
    db: Database, rng: np.random.Generator, num_orders: int
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """New ORDERS plus their LINEITEMs, dbgen-style distributions drawn
    against the *current* database content."""
    orders = db.table_data("orders")
    customers = db.table_data("customer")
    partsupp = db.table_data("partsupp")
    part = db.table_data("part")

    o_key = orders["o_orderkey"].max() + 1 + np.arange(num_orders, dtype=np.int64)
    eligible = customers["c_custkey"][customers["c_custkey"] % 3 != 0]
    o_cust = rng.choice(eligible, num_orders).astype(orders["o_custkey"].dtype)
    o_date = rng.integers(ORDER_DATE_MIN, ORDER_DATE_MAX + 1, num_orders).astype(np.int32)

    lines_per_order = rng.integers(1, 8, num_orders)
    n_line = int(lines_per_order.sum())
    order_row = np.repeat(np.arange(num_orders), lines_per_order)
    l_orderkey = o_key[order_row]
    l_linenumber = (
        np.arange(n_line)
        - np.repeat(np.cumsum(lines_per_order) - lines_per_order, lines_per_order)
        + 1
    ).astype(np.int32)
    # (partkey, suppkey) pairs come from PARTSUPP so the composite FK holds
    ps_pick = rng.integers(0, len(partsupp["ps_partkey"]), n_line)
    l_part = partsupp["ps_partkey"][ps_pick]
    l_supp = partsupp["ps_suppkey"][ps_pick]
    part_row = lookup_rows([part["p_partkey"]], [l_part])
    l_qty = rng.integers(1, 51, n_line).astype(np.float64)
    l_extprice = np.round(l_qty * part["p_retailprice"][part_row], 2)
    l_discount = np.round(rng.integers(0, 11, n_line) / 100.0, 2)
    l_tax = np.round(rng.integers(0, 9, n_line) / 100.0, 2)
    o_date_per_line = o_date[order_row]
    l_ship = (o_date_per_line + rng.integers(1, 122, n_line)).astype(np.int32)
    l_commit = (o_date_per_line + rng.integers(30, 91, n_line)).astype(np.int32)
    l_receipt = (l_ship + rng.integers(1, 31, n_line)).astype(np.int32)
    received = l_receipt <= CURRENT_DATE
    flag_rand = rng.random(n_line) < 0.5
    l_returnflag = np.where(received, np.where(flag_rand, "R", "A"), "N").astype("<U1")
    l_linestatus = np.where(l_ship > CURRENT_DATE, "O", "F").astype("<U1")

    lineitem_rows = {
        "l_orderkey": l_orderkey,
        "l_partkey": l_part,
        "l_suppkey": l_supp,
        "l_linenumber": l_linenumber,
        "l_quantity": l_qty,
        "l_extendedprice": l_extprice,
        "l_discount": l_discount,
        "l_tax": l_tax,
        "l_returnflag": l_returnflag,
        "l_linestatus": l_linestatus,
        "l_shipdate": l_ship,
        "l_commitdate": l_commit,
        "l_receiptdate": l_receipt,
        "l_shipinstruct": rng.choice(np.array(text.INSTRUCTIONS), n_line),
        "l_shipmode": rng.choice(np.array(text.MODES), n_line),
        "l_comment": _comments(rng, n_line, 4, 44),
    }

    charge = l_extprice * (1.0 + l_tax) * (1.0 - l_discount)
    o_total = np.round(
        np.bincount(order_row, weights=charge, minlength=num_orders), 2
    )
    open_lines = np.bincount(
        order_row, weights=(l_linestatus == "O"), minlength=num_orders
    )
    o_status = np.where(
        open_lines == lines_per_order, "O", np.where(open_lines == 0, "F", "P")
    ).astype("<U1")
    clerk_domain = np.unique(orders["o_clerk"])
    orders_rows = {
        "o_orderkey": o_key.astype(orders["o_orderkey"].dtype),
        "o_custkey": o_cust,
        "o_orderstatus": o_status,
        "o_totalprice": o_total,
        "o_orderdate": o_date,
        "o_orderpriority": rng.choice(np.array(text.PRIORITIES), num_orders),
        "o_clerk": rng.choice(clerk_domain, num_orders),
        "o_shippriority": np.zeros(num_orders, dtype=orders["o_shippriority"].dtype),
        "o_comment": _comments(
            rng, num_orders, 6, 79, inject=("special", "requests"), inject_rate=0.01
        ),
    }
    return orders_rows, lineitem_rows


def rf2_order_keys(db: Database, rng: np.random.Generator, num_orders: int) -> np.ndarray:
    """Existing order keys to delete (sampled without replacement)."""
    keys = db.table_data("orders")["o_orderkey"]
    num = min(num_orders, len(keys))
    return rng.choice(keys, num, replace=False)


# -------------------------------------------------------------- harness
@dataclass
class RefreshMeasurement:
    """Per-scheme cost of one refresh pair and its probe queries."""

    scheme: str
    pair: int
    rf1_seconds: float = 0.0
    rf2_seconds: float = 0.0
    query_seconds: Dict[str, float] = field(default_factory=dict)
    delta_rows: int = 0
    compactions: int = 0
    epoch: int = 0


@dataclass
class RefreshResult:
    scale_factor: float
    pairs: int
    rows_inserted: int = 0
    rows_deleted: int = 0
    measurements: List[RefreshMeasurement] = field(default_factory=list)

    def for_scheme(self, scheme: str) -> List[RefreshMeasurement]:
        return [m for m in self.measurements if m.scheme == scheme]

    def render(self) -> str:
        schemes = sorted({m.scheme for m in self.measurements})
        queries = sorted(
            {q for m in self.measurements for q in m.query_seconds}
        )
        lines = [
            f"TPC-H refresh streams, SF={self.scale_factor}: {self.pairs} RF1/RF2 "
            f"pairs (+{self.rows_inserted} rows, -{self.rows_deleted} rows)",
            f"{'scheme':<8}{'pair':>5}{'RF1 ms':>10}{'RF2 ms':>10}"
            + "".join(f"{q + ' ms':>10}" for q in queries)
            + f"{'delta rows':>12}{'compactions':>13}",
        ]
        for scheme in schemes:
            for m in self.for_scheme(scheme):
                lines.append(
                    f"{scheme:<8}{m.pair:>5}"
                    f"{m.rf1_seconds * 1e3:>10.3f}{m.rf2_seconds * 1e3:>10.3f}"
                    + "".join(
                        f"{m.query_seconds.get(q, 0.0) * 1e3:>10.3f}" for q in queries
                    )
                    + f"{m.delta_rows:>12}{m.compactions:>13}"
                )
        for scheme in schemes:
            ms = self.for_scheme(scheme)
            refresh_total = sum(m.rf1_seconds + m.rf2_seconds for m in ms)
            query_total = sum(sum(m.query_seconds.values()) for m in ms)
            num_queries = sum(len(m.query_seconds) for m in ms)
            lines.append(
                f"{scheme}: {2 * len(ms) / refresh_total:,.1f} refreshes/s vs "
                f"{num_queries / query_total:,.1f} queries/s simulated "
                f"(refresh total {refresh_total * 1e3:.3f} ms, "
                f"query total {query_total * 1e3:.3f} ms)"
            )
        return "\n".join(lines)


def run_refresh_suite(
    physical_dbs: Dict[str, PhysicalDatabase],
    environment: Environment,
    pairs: int = 2,
    seed: int = 7,
    query_names: Sequence[str] = ("Q01", "Q06"),
    policy: Optional[CompactionPolicy] = None,
) -> RefreshResult:
    """Alternate RF1/RF2 pairs with probe queries under every scheme.

    All schemes share one logical database, so a single session per
    refresh keeps them consistent; per-scheme costs come from the
    commit's scheme metrics.
    """
    db = next(iter(physical_dbs.values())).database
    rng = np.random.default_rng(seed)
    sf = db.scale_factor or environment.scale_factor
    batch = refresh_pair_size(sf)
    result = RefreshResult(scale_factor=sf, pairs=pairs)

    for pair in range(pairs):
        measurements = {
            scheme: RefreshMeasurement(scheme=scheme, pair=pair + 1)
            for scheme in physical_dbs
        }
        # ---- RF1: insert orders + lineitems -----------------------------
        session = UpdateSession(
            *physical_dbs.values(), policy=policy,
            disk=environment.disk, costs=environment.cost_model,
        )
        orders_rows, lineitem_rows = generate_rf1(db, rng, batch)
        session.insert_rows("orders", orders_rows)
        session.insert_rows("lineitem", lineitem_rows)
        rf1 = session.commit()
        result.rows_inserted += sum(rf1.inserted.values())
        # ---- RF2: delete orders + their lineitems -----------------------
        doomed = rf2_order_keys(db, rng, batch)
        session.delete_where("lineitem", InList(Col("l_orderkey"), doomed.tolist()))
        session.delete_where("orders", InList(Col("o_orderkey"), doomed.tolist()))
        rf2 = session.commit()
        result.rows_deleted += sum(rf2.deleted.values())

        for scheme, m in measurements.items():
            m.rf1_seconds = rf1.seconds_for(scheme)
            m.rf2_seconds = rf2.seconds_for(scheme)
            m.compactions = sum(
                1 for c in rf1.changes + rf2.changes
                if c.scheme == scheme and c.compacted
            )
            pdb = physical_dbs[scheme]
            m.delta_rows = sum(
                stored.delta.live_delta_rows
                for stored in pdb.stored.values()
                if stored.delta is not None
            )
            m.epoch = pdb.epoch
            # ---- probe queries over the refreshed state -----------------
            for qname in query_names:
                _, metrics = run_query(
                    pdb, QUERIES[qname],
                    disk=environment.disk, costs=environment.cost_model,
                )
                m.query_seconds[qname] = metrics.total_seconds
            result.measurements.append(m)
    return result
