"""Date constants and helpers for TPC-H (int days since 1970-01-01)."""

from __future__ import annotations

import numpy as np

from ..execution.expressions import days

__all__ = [
    "START_DATE", "END_DATE", "CURRENT_DATE", "ORDER_DATE_MIN",
    "ORDER_DATE_MAX", "days", "date_str",
]

#: the TPC-H population interval
START_DATE = days("1992-01-01")
END_DATE = days("1998-12-31")
#: dbgen's CURRENTDATE, used for return flags and line status
CURRENT_DATE = days("1995-06-17")
#: order dates span [STARTDATE, ENDDATE - 151 days]
ORDER_DATE_MIN = START_DATE
ORDER_DATE_MAX = END_DATE - 151


def date_str(day: int) -> str:
    """ISO string for an int-days value (examples, debugging)."""
    return str(np.datetime64(int(day), "D"))
