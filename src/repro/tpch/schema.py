"""TPC-H schema DDL: tables, primary keys, foreign keys and the paper's
``CREATE INDEX`` hints.

Foreign-key identifiers follow the paper's ``FK_X_Y`` convention
(Section IV): ``FK_L_O`` is LINEITEM→ORDERS etc.  The hints reproduce the
paper's setup: three dimension hints (order date, part key, the compound
region/nation key) plus index hints on the foreign-key references used to
derive co-clustering — ``o_custkey``, ``s_nationkey``, ``c_nationkey``,
``l_orderkey``, ``l_suppkey``, ``l_partkey``, ``ps_partkey``,
``ps_suppkey``.  Hint declaration order on LINEITEM is (orderkey,
suppkey, partkey), matching the published dimension-use masks.
"""

from __future__ import annotations

from ..catalog import DATE, DECIMAL, INT32, INT64, Schema, string_type

__all__ = ["build_schema", "add_paper_hints"]


def build_schema() -> Schema:
    """All eight TPC-H tables with keys and the paper's foreign keys."""
    schema = Schema()

    schema.add_table("region", [
        ("r_regionkey", INT32),
        ("r_name", string_type(25, 12)),
        ("r_comment", string_type(116, 66)),
    ], primary_key=["r_regionkey"])

    schema.add_table("nation", [
        ("n_nationkey", INT32),
        ("n_name", string_type(25, 12)),
        ("n_regionkey", INT32),
        ("n_comment", string_type(116, 74)),
    ], primary_key=["n_nationkey"])

    schema.add_table("supplier", [
        ("s_suppkey", INT32),
        ("s_name", string_type(25, 18)),
        ("s_address", string_type(40, 25)),
        ("s_nationkey", INT32),
        ("s_phone", string_type(15, 15)),
        ("s_acctbal", DECIMAL),
        ("s_comment", string_type(101, 63)),
    ], primary_key=["s_suppkey"])

    schema.add_table("customer", [
        ("c_custkey", INT32),
        ("c_name", string_type(25, 18)),
        ("c_address", string_type(40, 25)),
        ("c_nationkey", INT32),
        ("c_phone", string_type(15, 15)),
        ("c_acctbal", DECIMAL),
        ("c_mktsegment", string_type(10, 10)),
        ("c_comment", string_type(117, 73)),
    ], primary_key=["c_custkey"])

    schema.add_table("part", [
        ("p_partkey", INT32),
        ("p_name", string_type(55, 33)),
        ("p_mfgr", string_type(25, 14)),
        ("p_brand", string_type(10, 8)),
        ("p_type", string_type(25, 21)),
        ("p_size", INT32),
        ("p_container", string_type(10, 8)),
        ("p_retailprice", DECIMAL),
        ("p_comment", string_type(23, 14)),
    ], primary_key=["p_partkey"])

    schema.add_table("partsupp", [
        ("ps_partkey", INT32),
        ("ps_suppkey", INT32),
        ("ps_availqty", INT32),
        ("ps_supplycost", DECIMAL),
        ("ps_comment", string_type(199, 124)),
    ], primary_key=["ps_partkey", "ps_suppkey"])

    schema.add_table("orders", [
        ("o_orderkey", INT64),
        ("o_custkey", INT32),
        ("o_orderstatus", string_type(1, 1)),
        ("o_totalprice", DECIMAL),
        ("o_orderdate", DATE),
        ("o_orderpriority", string_type(15, 15)),
        ("o_clerk", string_type(15, 15)),
        ("o_shippriority", INT32),
        ("o_comment", string_type(79, 49)),
    ], primary_key=["o_orderkey"])

    schema.add_table("lineitem", [
        ("l_orderkey", INT64),
        ("l_partkey", INT32),
        ("l_suppkey", INT32),
        ("l_linenumber", INT32),
        ("l_quantity", DECIMAL),
        ("l_extendedprice", DECIMAL),
        ("l_discount", DECIMAL),
        ("l_tax", DECIMAL),
        ("l_returnflag", string_type(1, 1)),
        ("l_linestatus", string_type(1, 1)),
        ("l_shipdate", DATE),
        ("l_commitdate", DATE),
        ("l_receiptdate", DATE),
        ("l_shipinstruct", string_type(25, 12)),
        ("l_shipmode", string_type(10, 4)),
        ("l_comment", string_type(44, 27)),
    ], primary_key=["l_orderkey", "l_linenumber"])

    # foreign keys, paper naming
    schema.add_foreign_key("FK_N_R", "nation", ["n_regionkey"], "region")
    schema.add_foreign_key("FK_S_N", "supplier", ["s_nationkey"], "nation")
    schema.add_foreign_key("FK_C_N", "customer", ["c_nationkey"], "nation")
    schema.add_foreign_key("FK_PS_P", "partsupp", ["ps_partkey"], "part")
    schema.add_foreign_key("FK_PS_S", "partsupp", ["ps_suppkey"], "supplier")
    schema.add_foreign_key("FK_O_C", "orders", ["o_custkey"], "customer")
    schema.add_foreign_key("FK_L_O", "lineitem", ["l_orderkey"], "orders")
    schema.add_foreign_key("FK_L_P", "lineitem", ["l_partkey"], "part")
    schema.add_foreign_key("FK_L_S", "lineitem", ["l_suppkey"], "supplier")
    schema.add_foreign_key(
        "FK_L_PS", "lineitem", ["l_partkey", "l_suppkey"], "partsupp"
    )
    return schema


def add_paper_hints(schema: Schema) -> None:
    """The paper's exact DDL input to Algorithm 2 (Section IV)."""
    # dimension hints (key and date columns only, per the paper)
    schema.add_index_hint("date_idx", "orders", ["o_orderdate"], dimension_name="D_DATE")
    schema.add_index_hint("part_idx", "part", ["p_partkey"], dimension_name="D_PART")
    schema.add_index_hint(
        "nation_idx", "nation", ["n_regionkey", "n_nationkey"], dimension_name="D_NATION"
    )
    # foreign-key hints deriving the co-clustering
    schema.add_index_hint("s_nation_fk_idx", "supplier", ["s_nationkey"])
    schema.add_index_hint("c_nation_fk_idx", "customer", ["c_nationkey"])
    schema.add_index_hint("o_cust_fk_idx", "orders", ["o_custkey"])
    schema.add_index_hint("ps_part_fk_idx", "partsupp", ["ps_partkey"])
    schema.add_index_hint("ps_supp_fk_idx", "partsupp", ["ps_suppkey"])
    # LINEITEM order (orderkey, suppkey, partkey) matches the published masks
    schema.add_index_hint("l_order_fk_idx", "lineitem", ["l_orderkey"])
    schema.add_index_hint("l_supp_fk_idx", "lineitem", ["l_suppkey"])
    schema.add_index_hint("l_part_fk_idx", "lineitem", ["l_partkey"])
