"""Command-line driver: ``python -m repro.tpch [options]``.

Generates TPC-H at a chosen scale, builds the requested physical
schemes, runs queries and prints Figure 2 / Figure 3-style tables or
per-query EXPLAIN output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..planner.executor import ExecutionOptions, Executor
from ..planner.explain import format_parallel_plan, format_physical_plan
from .datagen import generate
from .environment import make_environment
from .harness import build_schemes, run_suite
from .queries import QUERIES
from .runner import QueryRunner

__all__ = ["main"]


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tpch",
        description="Run the BDCC reproduction's TPC-H evaluation.",
    )
    parser.add_argument("--sf", type=float, default=0.01, help="scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--schemes", default="plain,pk,bdcc",
        help="comma-separated subset of plain,pk,bdcc",
    )
    parser.add_argument(
        "--queries", default="all",
        help="comma-separated query ids (Q01..Q22) or 'all'",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print per-query plans and strategy decisions instead of tables",
    )
    parser.add_argument(
        "--design", action="store_true",
        help="print the advisor's schema design report and exit",
    )
    parser.add_argument(
        "--no-sandwich", action="store_true", help="disable sandwich operators"
    )
    parser.add_argument(
        "--no-pushdown", action="store_true", help="disable BDCC group pruning"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "simulated workers for partition-parallel execution; with N > 1 "
            "a speedup table (resource-seconds vs makespan) is printed"
        ),
    )
    parser.add_argument(
        "--backend", choices=("simulated", "process"), default="simulated",
        help=(
            "where parallel fragments execute: 'simulated' (in-process, "
            "deterministic scheduler; the default) or 'process' (a real "
            "multiprocessing pool over shared-memory column exports — "
            "bit-identical results, with measured wall clock reported "
            "next to the simulated charges)"
        ),
    )
    parser.add_argument(
        "--refresh", type=int, default=0, metavar="N",
        help=(
            "run N TPC-H refresh pairs (RF1 inserts / RF2 deletes) through "
            "the update subsystem instead of the query suite, reporting "
            "per-scheme refresh cost next to Q1/Q6 latency over the "
            "refreshed (merge-on-read) state"
        ),
    )
    return parser.parse_args(argv)


def main(argv: List[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    names = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if args.queries == "all":
        selected = dict(QUERIES)
    else:
        wanted = [q.strip().upper() for q in args.queries.split(",")]
        unknown = [q for q in wanted if q not in QUERIES]
        if unknown:
            print(f"unknown queries: {unknown}", file=sys.stderr)
            return 2
        selected = {q: QUERIES[q] for q in wanted}

    options = ExecutionOptions(
        enable_sandwich=not args.no_sandwich,
        enable_pushdown=not args.no_pushdown,
        workers=max(args.workers, 1),
        backend=args.backend,
    )

    print(f"generating TPC-H SF={args.sf} (seed {args.seed}) ...", file=sys.stderr)
    db = generate(scale_factor=args.sf, seed=args.seed)
    env = make_environment(args.sf)
    pdbs = build_schemes(db, env, include=names)

    if args.refresh > 0:
        from .refresh import run_refresh_suite

        result = run_refresh_suite(
            pdbs, env, pairs=args.refresh, seed=args.seed
        )
        print(result.render())
        return 0

    if args.design:
        from ..core.advisor import SchemaAdvisor
        from ..core.report import design_report

        advisor = SchemaAdvisor(db.schema, env.advisor_config())
        design = advisor.design(db)
        built = advisor.build(db, design)
        print(design_report(design, built))
        return 0

    if args.explain:
        for qname, fn in selected.items():
            for scheme_name, pdb in pdbs.items():
                # context-managed: a process-backend executor holds a
                # worker pool and shared-memory blocks to release
                with Executor(
                    pdb, disk=env.disk, costs=env.cost_model, options=options
                ) as executor:
                    print(f"\n=== {qname} / {scheme_name} ===")
                    # run through a runner: it lowers every stage, so the
                    # physical plans are available alongside the actuals
                    runner = QueryRunner(executor)
                    result = fn(runner)
                    for stage, pplan in enumerate(runner.physical_plans):
                        if len(runner.physical_plans) > 1:
                            print(f"-- stage {stage + 1}")
                        stage_metrics = runner.stage_metrics[stage]
                        if options.workers > 1:
                            parallel = executor.parallel_plan(pplan)
                            if parallel.is_parallel:
                                print(
                                    format_parallel_plan(
                                        parallel, metrics=stage_metrics
                                    )
                                )
                                continue
                        print(format_physical_plan(pplan, metrics=stage_metrics))
                    print(
                        "cost: %.3f ms simulated, peak memory %.3f MB, %d rows"
                        % (
                            runner.metrics.total_seconds * 1e3,
                            runner.metrics.peak_memory_bytes / 1e6,
                            result.relation.num_rows,
                        )
                    )
                    # single-stage queries already printed the same
                    # number inside the fragment view above
                    if (
                        runner.metrics.measured_wall_seconds > 0.0
                        and len(runner.stage_metrics) > 1
                    ):
                        print(
                            "measured: %.3f ms wall on the %s backend"
                            % (
                                runner.metrics.measured_wall_seconds * 1e3,
                                runner.metrics.backend,
                            )
                        )
                    for note in runner.metrics.notes:
                        print(f"  - {note}")
        return 0

    suite = run_suite(pdbs, env, queries=selected, options=options)
    print(suite.fig2_table())
    print()
    print(suite.fig3_table())
    if options.workers > 1:
        print()
        print(suite.parallel_table())
    if "plain" in pdbs and "bdcc" in pdbs:
        print(f"\nBDCC speedup over plain: {suite.speedup():.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
