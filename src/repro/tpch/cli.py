"""Command-line driver: ``python -m repro.tpch [options]``.

Generates TPC-H at a chosen scale, builds the requested physical
schemes, runs queries and prints Figure 2 / Figure 3-style tables or
per-query EXPLAIN output.

Observability flags (see docs/observability.md): ``--trace FILE``
writes a Chrome trace-event timeline of every execution (open it in
https://ui.perfetto.dev), ``--query-log FILE`` appends one validated
JSONL record per query, and ``--json`` replaces the text tables with a
machine-readable document built from the same record shape.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..observe import SCHEMA_VERSION, QueryLog, TraceBuilder, build_record
from ..planner.executor import ExecutionOptions, Executor
from ..planner.explain import format_parallel_plan, format_physical_plan
from .datagen import generate
from .environment import make_environment
from .harness import build_schemes, run_suite
from .queries import QUERIES
from .runner import QueryRunner

__all__ = ["main"]


def normalize_query_id(token: str) -> str:
    """Canonical query id of a user-supplied token: ``1``, ``q1``,
    ``Q1`` and ``Q01`` all name ``Q01``; unknown shapes pass through
    upper-cased so the caller reports them verbatim."""
    token = token.strip().upper()
    digits = token[1:] if token.startswith("Q") else token
    if digits.isdigit():
        return f"Q{int(digits):02d}"
    return token


class ObservabilitySink:
    """Fans one finished query out to the enabled sinks: the trace
    builder (``--trace``), the JSONL query log (``--query-log``) and an
    in-memory record list (``--json``)."""

    def __init__(
        self,
        trace_path: Optional[str],
        query_log_path: Optional[str],
        collect: bool,
        options: ExecutionOptions,
    ):
        self.trace_path = trace_path
        self.builder = TraceBuilder() if trace_path else None
        self.query_log = QueryLog(query_log_path) if query_log_path else None
        self.records: Optional[List[dict]] = [] if collect else None
        self.options = options

    @property
    def enabled(self) -> bool:
        return bool(self.builder or self.query_log or self.records is not None)

    def observe(self, qname: str, sname: str, runner, result) -> None:
        label = f"{qname}/{sname}"
        if self.builder is not None:
            stages = runner.stage_metrics
            for position, stage in enumerate(stages):
                stage_label = (
                    label if len(stages) == 1
                    else f"{label} stage {position + 1}"
                )
                self.builder.add_execution(stage_label, stage)
        if self.query_log is not None or self.records is not None:
            record = build_record(
                label,
                runner.metrics,
                pdb=runner.executor.pdb,
                scheme=sname,
                options=self.options,
                plans=runner.physical_plans,
                relation=result.relation,
            )
            if self.query_log is not None:
                self.query_log.write(record)
            if self.records is not None:
                self.records.append(record)

    def finish(self) -> None:
        if self.builder is not None:
            self.builder.write(self.trace_path)
        if self.query_log is not None:
            self.query_log.close()


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tpch",
        description="Run the BDCC reproduction's TPC-H evaluation.",
    )
    parser.add_argument("--sf", type=float, default=0.01, help="scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--schemes", default="plain,pk,bdcc",
        help="comma-separated subset of plain,pk,bdcc",
    )
    parser.add_argument(
        "--queries", default="all",
        help="comma-separated query ids (Q01..Q22) or 'all'",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print per-query plans and strategy decisions instead of tables",
    )
    parser.add_argument(
        "--design", action="store_true",
        help="print the advisor's schema design report and exit",
    )
    parser.add_argument(
        "--no-sandwich", action="store_true", help="disable sandwich operators"
    )
    parser.add_argument(
        "--no-pushdown", action="store_true", help="disable BDCC group pruning"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "simulated workers for partition-parallel execution; with N > 1 "
            "a speedup table (resource-seconds vs makespan) is printed"
        ),
    )
    parser.add_argument(
        "--backend", choices=("simulated", "process"), default="simulated",
        help=(
            "where parallel fragments execute: 'simulated' (in-process, "
            "deterministic scheduler; the default) or 'process' (a real "
            "multiprocessing pool over shared-memory column exports — "
            "bit-identical results, with measured wall clock reported "
            "next to the simulated charges)"
        ),
    )
    parser.add_argument(
        "--refresh", type=int, default=0, metavar="N",
        help=(
            "run N TPC-H refresh pairs (RF1 inserts / RF2 deletes) through "
            "the update subsystem instead of the query suite, reporting "
            "per-scheme refresh cost next to Q1/Q6 latency over the "
            "refreshed (merge-on-read) state; with --streams the pairs "
            "run as a concurrent refresh stream instead"
        ),
    )
    parser.add_argument(
        "--streams", type=int, default=0, metavar="N",
        help=(
            "TPC-H throughput test: serve N concurrent closed-loop query "
            "streams (each a deterministic rotation of the selected "
            "queries) through the multi-query serving layer on the shared "
            "worker pool, reporting per-stream latency percentiles and "
            "aggregate QPS; combine with --refresh for concurrent RF1/RF2 "
            "commits under MVCC snapshot reads"
        ),
    )
    parser.add_argument(
        "--policy", choices=("fifo", "round-robin", "shortest"),
        default="fifo",
        help="admission (fairness) policy for --streams (default fifo)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=None, metavar="M",
        help=(
            "multiprogramming limit for --streams: at most M queries in "
            "flight at once (default: the worker count)"
        ),
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help=(
            "write a Chrome trace-event JSON timeline of every execution "
            "(workers as lanes, fragments as slices, exchanges as flow "
            "arrows; open in https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--query-log", metavar="FILE", default=None,
        help=(
            "append one schema-validated JSONL record per query "
            "(plan fingerprint, options, epochs, actuals, timeline)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help=(
            "print a machine-readable JSON document (query-log record "
            "shape) instead of the text tables"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "run every fragment under cProfile and attach the top "
            "functions to query-log records and trace slices (passive: "
            "simulated charges and results are unchanged)"
        ),
    )
    return parser.parse_args(argv)


def _run_serving(args, pdbs, env, selected, options, sink) -> int:
    """The ``--streams N`` throughput test: N rotated closed-loop query
    streams (plus an optional RF1/RF2 refresh stream) per scheme through
    the serving layer."""
    from ..observe import build_record
    from ..serving import (
        PlanListStream,
        ServingEngine,
        TpchRefreshStream,
        capture_tpch_items,
        serving_trace,
    )

    documents = {}
    trace_builder = None
    for sname, pdb in pdbs.items():
        items = capture_tpch_items(
            pdb, selected, disk=env.disk, costs=env.cost_model
        )
        streams = []
        for i in range(args.streams):
            # the TPC-H throughput test runs a distinct permutation per
            # stream; a rotation is the deterministic, seed-free analogue
            rotation = i % len(items)
            rotated = items[rotation:] + items[:rotation]
            streams.append(
                PlanListStream(
                    f"s{i:02d}",
                    [item.plan for item in rotated],
                    [item.description for item in rotated],
                )
            )
        refresh = []
        if args.refresh > 0:
            refresh.append(
                TpchRefreshStream(
                    "rf", pdb.database, args.seed, pairs=args.refresh
                )
            )

        observer = None
        if sink.query_log is not None or sink.records is not None:
            def observer(record, sname=sname, pdb=pdb):
                log_record = build_record(
                    f"{record.description}/{sname}/{record.stream}",
                    record.metrics,
                    pdb=pdb,
                    scheme=sname,
                    options=options,
                    relation=record.relation,
                )
                if sink.query_log is not None:
                    sink.query_log.write(log_record)
                if sink.records is not None:
                    sink.records.append(log_record)

        with ServingEngine(
            pdb, disk=env.disk, costs=env.cost_model, options=options,
            policy=args.policy, max_concurrent=args.max_concurrent,
            keep_results=False,
        ) as engine:
            report = engine.serve(streams, refresh, observer=observer)
        documents[sname] = report.to_dict()
        if sink.builder is not None:
            trace_builder = serving_trace(report, builder=trace_builder)
        if not args.json:
            print(report.render())
            print()
    if trace_builder is not None:
        trace_builder.write(sink.trace_path)
    if sink.query_log is not None:
        sink.query_log.close()
    if args.json:
        print(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "kind": "tpch_serving",
                    "scale_factor": args.sf,
                    "seed": args.seed,
                    "streams": args.streams,
                    "policy": args.policy,
                    "workers": options.workers,
                    "refresh_pairs": args.refresh,
                    "schemes": documents,
                    "records": sink.records or [],
                },
                sort_keys=True,
                indent=2,
            )
        )
    return 0


def main(argv: List[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    names = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if args.queries == "all":
        selected = dict(QUERIES)
    else:
        wanted = [normalize_query_id(q) for q in args.queries.split(",") if q.strip()]
        unknown = [q for q in wanted if q not in QUERIES]
        if unknown:
            print(f"unknown queries: {unknown}", file=sys.stderr)
            return 2
        selected = {q: QUERIES[q] for q in wanted}

    options = ExecutionOptions(
        enable_sandwich=not args.no_sandwich,
        enable_pushdown=not args.no_pushdown,
        workers=max(args.workers, 1),
        backend=args.backend,
        profile=args.profile,
    )
    sink = ObservabilitySink(
        args.trace, args.query_log, collect=args.json, options=options
    )

    print(f"generating TPC-H SF={args.sf} (seed {args.seed}) ...", file=sys.stderr)
    db = generate(scale_factor=args.sf, seed=args.seed)
    env = make_environment(args.sf)
    pdbs = build_schemes(db, env, include=names)

    if args.streams > 0:
        return _run_serving(args, pdbs, env, selected, options, sink)

    if args.refresh > 0:
        from .refresh import run_refresh_suite

        result = run_refresh_suite(
            pdbs, env, pairs=args.refresh, seed=args.seed
        )
        print(result.render())
        return 0

    if args.design:
        from ..core.advisor import SchemaAdvisor
        from ..core.report import design_report

        advisor = SchemaAdvisor(db.schema, env.advisor_config())
        design = advisor.design(db)
        built = advisor.build(db, design)
        print(design_report(design, built))
        return 0

    if args.explain:
        for qname, fn in selected.items():
            for scheme_name, pdb in pdbs.items():
                # context-managed: a process-backend executor holds a
                # worker pool and shared-memory blocks to release
                with Executor(
                    pdb, disk=env.disk, costs=env.cost_model, options=options
                ) as executor:
                    print(f"\n=== {qname} / {scheme_name} ===")
                    # run through a runner: it lowers every stage, so the
                    # physical plans are available alongside the actuals
                    runner = QueryRunner(executor)
                    result = fn(runner)
                    if sink.enabled:
                        sink.observe(qname, scheme_name, runner, result)
                    for stage, pplan in enumerate(runner.physical_plans):
                        if len(runner.physical_plans) > 1:
                            print(f"-- stage {stage + 1}")
                        stage_metrics = runner.stage_metrics[stage]
                        if options.workers > 1:
                            parallel = executor.parallel_plan(pplan)
                            if parallel.is_parallel:
                                print(
                                    format_parallel_plan(
                                        parallel, metrics=stage_metrics
                                    )
                                )
                                continue
                        print(format_physical_plan(pplan, metrics=stage_metrics))
                    print(
                        "cost: %.3f ms simulated, peak memory %.3f MB, %d rows"
                        % (
                            runner.metrics.total_seconds * 1e3,
                            runner.metrics.peak_memory_bytes / 1e6,
                            result.relation.num_rows,
                        )
                    )
                    # single-stage queries already printed the same
                    # number inside the fragment view above
                    if (
                        runner.metrics.measured_wall_seconds > 0.0
                        and len(runner.stage_metrics) > 1
                    ):
                        print(
                            "measured: %.3f ms wall on the %s backend"
                            % (
                                runner.metrics.measured_wall_seconds * 1e3,
                                runner.metrics.backend,
                            )
                        )
                    for note in runner.metrics.notes:
                        print(f"  - {note}")
        sink.finish()
        return 0

    suite = run_suite(
        pdbs, env, queries=selected, options=options,
        observer=sink.observe if sink.enabled else None,
    )
    sink.finish()
    if args.json:
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": "tpch_suite",
            "scale_factor": args.sf,
            "seed": args.seed,
            "schemes": names,
            "queries": sorted(selected),
            "workers": options.workers,
            "backend": options.backend,
            "records": sink.records or [],
        }
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    print(suite.fig2_table())
    print()
    print(suite.fig3_table())
    if options.workers > 1:
        print()
        print(suite.parallel_table())
    if "plain" in pdbs and "bdcc" in pdbs:
        print(f"\nBDCC speedup over plain: {suite.speedup():.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
