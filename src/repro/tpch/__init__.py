"""TPC-H substrate: schema, generator, all 22 queries, runner."""

from . import queries
from .datagen import generate, table_cardinalities
from .dates import CURRENT_DATE, END_DATE, START_DATE, date_str, days
from .runner import QueryRunner, run_query
from .schema import add_paper_hints, build_schema

__all__ = [
    "queries",
    "generate",
    "table_cardinalities",
    "CURRENT_DATE",
    "END_DATE",
    "START_DATE",
    "date_str",
    "days",
    "QueryRunner",
    "run_query",
    "add_paper_hints",
    "build_schema",
]
