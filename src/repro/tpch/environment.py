"""Simulated evaluation environment scaled to the data volume.

The paper's storage geometry: 32 KB pages, flash ``A_R`` = 32 KB (so
``A_R`` = page), 1 GB/s sequential RAID bandwidth, and tables of 10^4-10^6
pages at SF100.  Running the reproduction at small scale factors with the
*absolute* 32 KB geometry would leave tables only a handful of pages and
groups wide — count-table granularity selection and zone maps would be
artificially coarse.

``make_environment`` therefore scales the page size (and with it ``A_R``
and the access latency, preserving ``A_R(80%) == page``) linearly with
the scale factor, clamped to [256 B, 32 KB].  Tables then span page
counts proportional to the paper's setup, so Algorithm 1 picks
granularities with the same *relative* resolution (e.g. LINEITEM gets
``ceil(log2(pages(l_comment)))`` bits, exactly the paper's rule) and
MinMax pruning has SF100-like resolution.  All three schemes share the
device, so comparisons stay apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.advisor import AdvisorConfig
from ..core.bdcc_table import BDCCBuildConfig
from ..execution.cost import CostModel
from ..storage.io_model import DiskModel
from ..storage.pages import PageModel

__all__ = ["Environment", "make_environment", "PAPER_SF", "PAPER_PAGE_BYTES"]

PAPER_SF = 100.0
PAPER_PAGE_BYTES = 32 * 1024
PAPER_BANDWIDTH = 1e9  # bytes/s, the RAID0 of 4 SSDs


@dataclass(frozen=True)
class Environment:
    """Device + build configuration for one benchmark run."""

    scale_factor: float
    page_model: PageModel
    disk: DiskModel
    build_config: BDCCBuildConfig
    cost_model: CostModel

    def advisor_config(self, **overrides) -> AdvisorConfig:
        config = AdvisorConfig(build=self.build_config)
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


def scaled_page_bytes(scale_factor: float) -> int:
    """Page size scaled so tables span SF100-like page *counts*.

    ``page = 32 KB * SF`` (clamped to [256 B, 32 KB]): at SF >= 1 the
    paper's absolute geometry is used; below that, shrinking the page
    keeps per-table page counts — and hence granularity selection and
    zone-map resolution — in the regime the paper operates in."""
    raw = PAPER_PAGE_BYTES * scale_factor
    return int(min(PAPER_PAGE_BYTES, max(256, raw)))


def make_environment(scale_factor: float, bandwidth: float = PAPER_BANDWIDTH) -> Environment:
    """The simulated device and Algorithm-1 configuration for a run.

    At ``scale_factor >= 100`` this is exactly the paper's geometry.
    """
    page_bytes = scaled_page_bytes(scale_factor)
    # latency such that A_R(80%) == page size, as on the paper's flash
    latency = page_bytes / (4.0 * bandwidth)
    disk = DiskModel(sequential_bandwidth=bandwidth, access_latency=latency)
    build = BDCCBuildConfig(efficient_access_bytes=float(page_bytes))
    # cache capacities scaled like the page size: operator state that
    # would blow the paper machine's 32KB/256KB/4MB caches at SF100 must
    # blow the scaled caches at small SF, or the cache side of sandwich
    # processing would vanish from the simulation
    ratio = page_bytes / PAPER_PAGE_BYTES
    costs = CostModel(
        l1_bytes=32 * 1024 * ratio,
        l2_bytes=256 * 1024 * ratio,
        l3_bytes=4 * 1024 * 1024 * ratio,
    )
    return Environment(
        scale_factor=scale_factor,
        page_model=PageModel(page_bytes=page_bytes),
        disk=disk,
        build_config=build,
        cost_model=costs,
    )
