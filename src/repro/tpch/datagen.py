"""dbgen-style TPC-H data generator (scaled, vectorised, deterministic).

Cardinalities and value distributions follow the TPC-H specification:

=========  =======================  ==========================
table      rows                     notes
=========  =======================  ==========================
region     5                        fixed
nation     25                       fixed, official region map
supplier   SF * 10,000              ~0.05% "Customer Complaints"
customer   SF * 150,000             1/3 of keys place no orders
part       SF * 200,000             names = 5 colour words
partsupp   4 per part               official suppkey formula
orders     SF * 1,500,000           dates in [1992-01-01, 1998-08-02]
lineitem   1..7 per order (avg 4)   ship/commit/receipt offsets
=========  =======================  ==========================

Simplifications (documented in DESIGN.md): order keys are contiguous
(dbgen leaves gaps — immaterial to every query), text columns are drawn
from dbgen's vocabularies with a compact grammar, and the "special
requests" / "Customer Complaints" comment patterns are injected at
dbgen-like rates so Q13/Q16 remain selective.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..storage.database import Database
from . import text
from .dates import CURRENT_DATE, ORDER_DATE_MAX, ORDER_DATE_MIN
from .schema import add_paper_hints, build_schema

__all__ = ["generate", "table_cardinalities"]


def table_cardinalities(scale_factor: float) -> Dict[str, int]:
    """Row counts at a given scale factor (orders/lineitem are exact for
    orders and expected for lineitem)."""
    return {
        "region": 5,
        "nation": 25,
        "supplier": max(10, int(10_000 * scale_factor)),
        "customer": max(30, int(150_000 * scale_factor)),
        "part": max(40, int(200_000 * scale_factor)),
        "partsupp": 4 * max(40, int(200_000 * scale_factor)),
        "orders": max(300, int(1_500_000 * scale_factor)),
    }


def _zfill(values: np.ndarray, width: int) -> np.ndarray:
    return np.char.zfill(values.astype(f"<U{width}"), width)


def _tagged_names(prefix: str, keys: np.ndarray) -> np.ndarray:
    return np.char.add(f"{prefix}#", _zfill(keys, 9))


def _phones(rng: np.random.Generator, nationkeys: np.ndarray) -> np.ndarray:
    n = len(nationkeys)
    country = _zfill(nationkeys + 10, 2)
    part1 = _zfill(rng.integers(100, 1000, n), 3)
    part2 = _zfill(rng.integers(100, 1000, n), 3)
    part3 = _zfill(rng.integers(1000, 10_000, n), 4)
    out = np.char.add(country, "-")
    out = np.char.add(out, part1)
    out = np.char.add(out, "-")
    out = np.char.add(out, part2)
    out = np.char.add(out, "-")
    return np.char.add(out, part3)


def _addresses(rng: np.random.Generator, n: int) -> np.ndarray:
    streets = rng.choice(np.array(text.COMMENT_WORDS[:30]), n)
    numbers = rng.integers(1, 9999, n).astype("<U4")
    return np.char.add(np.char.add(numbers, " "), streets)


def _comments(
    rng: np.random.Generator,
    n: int,
    num_words: int,
    width: int,
    inject: Optional[tuple] = None,
    inject_rate: float = 0.0,
) -> np.ndarray:
    """Random word-chain comments; optionally splice a two-word marker
    (e.g. ("special", "requests")) into a fraction of rows."""
    vocab = np.array(text.COMMENT_WORDS)
    out = rng.choice(vocab, n)
    for _ in range(num_words - 1):
        out = np.char.add(np.char.add(out, " "), rng.choice(vocab, n))
    if inject is not None and inject_rate > 0 and n > 0:
        hit = rng.random(n) < inject_rate
        if hit.any():
            k = int(hit.sum())
            filler = rng.choice(vocab, k)
            marker = np.char.add(
                np.char.add(np.char.add(np.array(inject[0]), " "), filler),
                np.char.add(" ", np.array(inject[1])),
            )
            out = out.astype(f"<U{width}")
            out[hit] = np.char.add(np.char.add(marker, " "), rng.choice(vocab, k))
    return out.astype(f"<U{width}")


def _money(rng: np.random.Generator, low: float, high: float, n: int) -> np.ndarray:
    return np.round(rng.uniform(low, high, n), 2)


def generate(
    scale_factor: float = 0.01,
    seed: int = 42,
    with_hints: bool = True,
) -> Database:
    """Generate a complete TPC-H database at the given scale factor."""
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    rng = np.random.default_rng(seed)
    schema = build_schema()
    if with_hints:
        add_paper_hints(schema)
    db = Database(schema, scale_factor=scale_factor)
    card = table_cardinalities(scale_factor)

    # ------------------------------------------------------------- region
    db.add_table_data("region", {
        "r_regionkey": np.arange(5, dtype=np.int32),
        "r_name": np.array(text.REGIONS),
        "r_comment": _comments(rng, 5, 8, 116),
    })

    # ------------------------------------------------------------- nation
    nation_names = np.array([n for n, _ in text.NATIONS])
    nation_regions = np.array([r for _, r in text.NATIONS], dtype=np.int32)
    db.add_table_data("nation", {
        "n_nationkey": np.arange(25, dtype=np.int32),
        "n_name": nation_names,
        "n_regionkey": nation_regions,
        "n_comment": _comments(rng, 25, 9, 116),
    })

    # ----------------------------------------------------------- supplier
    n_supp = card["supplier"]
    s_key = np.arange(1, n_supp + 1, dtype=np.int32)
    s_nation = rng.integers(0, 25, n_supp).astype(np.int32)
    db.add_table_data("supplier", {
        "s_suppkey": s_key,
        "s_name": _tagged_names("Supplier", s_key),
        "s_address": _addresses(rng, n_supp),
        "s_nationkey": s_nation,
        "s_phone": _phones(rng, s_nation),
        "s_acctbal": _money(rng, -999.99, 9999.99, n_supp),
        "s_comment": _comments(
            rng, n_supp, 8, 101, inject=("Customer", "Complaints"), inject_rate=0.0005
        ),
    })

    # ----------------------------------------------------------- customer
    n_cust = card["customer"]
    c_key = np.arange(1, n_cust + 1, dtype=np.int32)
    c_nation = rng.integers(0, 25, n_cust).astype(np.int32)
    db.add_table_data("customer", {
        "c_custkey": c_key,
        "c_name": _tagged_names("Customer", c_key),
        "c_address": _addresses(rng, n_cust),
        "c_nationkey": c_nation,
        "c_phone": _phones(rng, c_nation),
        "c_acctbal": _money(rng, -999.99, 9999.99, n_cust),
        "c_mktsegment": rng.choice(np.array(text.SEGMENTS), n_cust),
        "c_comment": _comments(rng, n_cust, 9, 117),
    })

    # --------------------------------------------------------------- part
    n_part = card["part"]
    p_key = np.arange(1, n_part + 1, dtype=np.int32)
    colors = np.array(text.COLORS)
    p_name = rng.choice(colors, n_part)
    for _ in range(4):
        p_name = np.char.add(np.char.add(p_name, " "), rng.choice(colors, n_part))
    mfgr_num = rng.integers(1, 6, n_part)
    brand_num = mfgr_num * 10 + rng.integers(1, 6, n_part)
    p_retail = np.round(
        (90000.0 + (p_key % 200001) / 10.0 + 100.0 * (p_key % 1000)) / 100.0, 2
    )
    db.add_table_data("part", {
        "p_partkey": p_key,
        "p_name": p_name.astype("<U55"),
        "p_mfgr": np.char.add("Manufacturer#", mfgr_num.astype("<U1")),
        "p_brand": np.char.add("Brand#", brand_num.astype("<U2")),
        "p_type": rng.choice(np.array(text.TYPES), n_part),
        "p_size": rng.integers(1, 51, n_part).astype(np.int32),
        "p_container": rng.choice(np.array(text.CONTAINERS), n_part),
        "p_retailprice": p_retail,
        "p_comment": _comments(rng, n_part, 2, 23),
    })

    # ----------------------------------------------------------- partsupp
    ps_part = np.repeat(p_key, 4)
    line = np.tile(np.arange(4), n_part)
    # official dbgen supplier spread formula
    ps_supp = (
        (ps_part + line * (n_supp // 4 + (ps_part - 1) // n_supp)) % n_supp + 1
    ).astype(np.int32)
    n_ps = len(ps_part)
    db.add_table_data("partsupp", {
        "ps_partkey": ps_part.astype(np.int32),
        "ps_suppkey": ps_supp,
        "ps_availqty": rng.integers(1, 10_000, n_ps).astype(np.int32),
        "ps_supplycost": _money(rng, 1.0, 1000.0, n_ps),
        "ps_comment": _comments(rng, n_ps, 17, 199),
    })

    # ------------------------------------------------------------- orders
    n_ord = card["orders"]
    o_key = np.arange(1, n_ord + 1, dtype=np.int64)
    # a third of customers place no orders (custkey % 3 == 0 is skipped)
    eligible = c_key[c_key % 3 != 0]
    o_cust = rng.choice(eligible, n_ord).astype(np.int32)
    o_date = rng.integers(ORDER_DATE_MIN, ORDER_DATE_MAX + 1, n_ord).astype(np.int32)

    # ----------------------------------------------------------- lineitem
    lines_per_order = rng.integers(1, 8, n_ord)
    n_line = int(lines_per_order.sum())
    l_orderkey = np.repeat(o_key, lines_per_order)
    order_row = np.repeat(np.arange(n_ord), lines_per_order)
    l_linenumber = (
        np.arange(n_line) - np.repeat(np.cumsum(lines_per_order) - lines_per_order, lines_per_order) + 1
    ).astype(np.int32)
    l_part = rng.integers(1, n_part + 1, n_line).astype(np.int32)
    supp_slot = rng.integers(0, 4, n_line)
    l_supp = (
        (l_part + supp_slot * (n_supp // 4 + (l_part - 1) // n_supp)) % n_supp + 1
    ).astype(np.int32)
    l_qty = rng.integers(1, 51, n_line).astype(np.float64)
    l_extprice = np.round(l_qty * p_retail[l_part - 1], 2)
    l_discount = np.round(rng.integers(0, 11, n_line) / 100.0, 2)
    l_tax = np.round(rng.integers(0, 9, n_line) / 100.0, 2)
    o_date_per_line = o_date[order_row]
    l_ship = (o_date_per_line + rng.integers(1, 122, n_line)).astype(np.int32)
    l_commit = (o_date_per_line + rng.integers(30, 91, n_line)).astype(np.int32)
    l_receipt = (l_ship + rng.integers(1, 31, n_line)).astype(np.int32)
    received = l_receipt <= CURRENT_DATE
    flag_rand = rng.random(n_line) < 0.5
    l_returnflag = np.where(received, np.where(flag_rand, "R", "A"), "N").astype("<U1")
    l_linestatus = np.where(l_ship > CURRENT_DATE, "O", "F").astype("<U1")

    db.add_table_data("lineitem", {
        "l_orderkey": l_orderkey,
        "l_partkey": l_part,
        "l_suppkey": l_supp,
        "l_linenumber": l_linenumber,
        "l_quantity": l_qty,
        "l_extendedprice": l_extprice,
        "l_discount": l_discount,
        "l_tax": l_tax,
        "l_returnflag": l_returnflag,
        "l_linestatus": l_linestatus,
        "l_shipdate": l_ship,
        "l_commitdate": l_commit,
        "l_receiptdate": l_receipt,
        "l_shipinstruct": rng.choice(np.array(text.INSTRUCTIONS), n_line),
        "l_shipmode": rng.choice(np.array(text.MODES), n_line),
        "l_comment": _comments(rng, n_line, 4, 44),
    })

    # order aggregates derived from their lineitems (per the spec)
    charge = l_extprice * (1.0 + l_tax) * (1.0 - l_discount)
    o_total = np.round(np.bincount(order_row, weights=charge, minlength=n_ord), 2)
    open_lines = np.bincount(order_row, weights=(l_linestatus == "O"), minlength=n_ord)
    o_status = np.where(
        open_lines == lines_per_order, "O", np.where(open_lines == 0, "F", "P")
    ).astype("<U1")
    clerk_count = max(1, int(1000 * scale_factor))
    db.add_table_data("orders", {
        "o_orderkey": o_key,
        "o_custkey": o_cust,
        "o_orderstatus": o_status,
        "o_totalprice": o_total,
        "o_orderdate": o_date,
        "o_orderpriority": rng.choice(np.array(text.PRIORITIES), n_ord),
        "o_clerk": np.char.add("Clerk#", _zfill(rng.integers(1, clerk_count + 1, n_ord), 9)),
        "o_shippriority": np.zeros(n_ord, dtype=np.int32),
        "o_comment": _comments(
            rng, n_ord, 6, 79, inject=("special", "requests"), inject_rate=0.01
        ),
    })
    return db
