"""Q16 — Parts/Supplier Relationship.

NOT IN complaining suppliers -> anti join; COUNT(DISTINCT ps_suppkey)
grouped by brand/type/size.  The paper notes BDCC *loses* slightly here:
the sandwiched distinct-count shrinks its hash table ~25x but pays the
extra ``_bdcc_`` processing and replaces the PK scheme's PART-PARTSUPP
merge join.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q16(runner):
    plan = (
        scan("partsupp")
        .join(
            scan(
                "part",
                predicate=(
                    col("p_brand").ne("Brand#45")
                    & col("p_type").not_like("MEDIUM POLISHED%")
                    & col("p_size").isin([49, 14, 23, 45, 19, 3, 36, 9])
                ),
            ),
            on=[("ps_partkey", "p_partkey")],
        )
        .join(
            scan(
                "supplier",
                predicate=col("s_comment").like("%Customer%Complaints%"),
            ),
            on=[("ps_suppkey", "s_suppkey")],
            how="anti",
        )
        .groupby(
            ["p_brand", "p_type", "p_size"],
            [AggSpec("supplier_cnt", "count_distinct", col("ps_suppkey"))],
        )
        .sort(
            [
                ("supplier_cnt", False),
                ("p_brand", True),
                ("p_type", True),
                ("p_size", True),
            ]
        )
    )
    return runner.execute(plan)
