"""Q17 — Small-Quantity-Order Revenue (Brand#23 / MED BOX).

The correlated AVG subquery decorrelates into a per-part average over a
second LINEITEM instance, joined back on the part key.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q17(runner):
    per_part_avg = (
        scan("lineitem", alias="l2")
        .groupby(["l2.l_partkey"], [AggSpec("avg_qty", "avg", col("l2.l_quantity"))])
    )
    plan = (
        scan(
            "part",
            predicate=col("p_brand").eq("Brand#23")
            & col("p_container").eq("MED BOX"),
        )
        .join(scan("lineitem"), on=[("p_partkey", "l_partkey")])
        .join(per_part_avg, on=[("l_partkey", "l2.l_partkey")])
        .filter(col("l_quantity").lt(0.2 * col("avg_qty")))
        .groupby([], [AggSpec("total_price", "sum", col("l_extendedprice"))])
        .project(avg_yearly=col("total_price") / 7.0)
    )
    return runner.execute(plan)
