"""Q15 — Top Supplier (Q1/1996 revenue view).

Stage 1 materialises the revenue view; the max and the final single-row
(or few-row) assembly with SUPPLIER run as a second stage with an IN-list
on the winning supplier keys — the standard view + scalar rewrite.
"""

from __future__ import annotations

import numpy as np

from ...execution.aggregate import AggSpec
from ...execution.relation import Relation
from ...planner.executor import QueryResult
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q15(runner):
    lo, hi = days("1996-01-01"), days("1996-04-01")
    revenue_view = runner.execute(
        scan(
            "lineitem",
            predicate=col("l_shipdate").ge(lo) & col("l_shipdate").lt(hi),
        ).groupby(["l_suppkey"], [AggSpec("total_revenue", "sum", REVENUE)])
    )
    totals = revenue_view.relation.column("total_revenue")
    if len(totals) == 0:
        return revenue_view
    max_revenue = totals.max()
    winners = revenue_view.relation.column("l_suppkey")[totals == max_revenue]

    suppliers = runner.execute(
        scan("supplier", predicate=col("s_suppkey").isin(winners.tolist()))
        .project(
            s_suppkey=col("s_suppkey"),
            s_name=col("s_name"),
            s_address=col("s_address"),
            s_phone=col("s_phone"),
        )
        .sort([("s_suppkey", True)])
    )
    rel = suppliers.relation
    out = Relation(
        columns={
            **{name: rel.column(name) for name in rel.column_names},
            "total_revenue": np.full(rel.num_rows, max_revenue),
        }
    )
    return QueryResult(out, suppliers.metrics)
