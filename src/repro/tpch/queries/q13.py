"""Q13 — Customer Distribution.

Customer LEFT JOIN orders, counting per-customer orders (nulls count 0),
then a distribution over the counts.  The paper highlights this query:
the CUSTOMER-ORDERS join sandwiches on the shared D_NATION dimension even
though NATION itself never appears — the join key implies the nation.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q13(runner):
    plan = (
        scan("customer")
        .join(
            scan(
                "orders",
                predicate=col("o_comment").not_like("%special%requests%"),
            ),
            on=[("c_custkey", "o_custkey")],
            how="left",
        )
        .groupby(
            ["c_custkey"],
            [AggSpec("c_count", "count", col("o_orderkey"))],
        )
        .groupby(["c_count"], [AggSpec("custdist", "count")])
        .sort([("custdist", False), ("c_count", False)])
    )
    return runner.execute(plan)
