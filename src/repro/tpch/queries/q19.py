"""Q19 — Discounted Revenue (three brand/container/quantity branches).

The disjunction over brand, container, quantity and size stays as a
post-join filter; the conjuncts common to all branches (shipmode,
shipinstruct) are pushed onto the LINEITEM scan.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import REVENUE, col


def _branch(brand, containers, qty_lo, qty_hi, size_hi):
    return (
        col("p_brand").eq(brand)
        & col("p_container").isin(containers)
        & col("l_quantity").ge(qty_lo)
        & col("l_quantity").le(qty_hi)
        & col("p_size").between(1, size_hi)
    )


def q19(runner):
    disjunction = (
        _branch("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1, 11, 5)
        | _branch("Brand#23", ["MED BAG", "MED BOX", "MED PKG", "MED PACK"], 10, 20, 10)
        | _branch("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], 20, 30, 15)
    )
    plan = (
        scan(
            "lineitem",
            predicate=col("l_shipmode").isin(["AIR", "AIR REG"])
            & col("l_shipinstruct").eq("DELIVER IN PERSON"),
        )
        .join(scan("part"), on=[("l_partkey", "p_partkey")])
        .filter(disjunction)
        .groupby([], [AggSpec("revenue", "sum", REVENUE)])
    )
    return runner.execute(plan)
