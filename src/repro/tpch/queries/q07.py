"""Q7 — Volume Shipping (FRANCE <-> GERMANY).

The nation-pair disjunction stays as a post-join filter; the implied
IN-lists are additionally pushed onto the two NATION scans (a standard
implied-predicate rewrite) so BDCC propagation can prune nation groups.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import year
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q07(runner):
    pair = ["FRANCE", "GERMANY"]
    plan = (
        scan("supplier")
        .join(
            scan(
                "lineitem",
                predicate=col("l_shipdate").between(
                    days("1995-01-01"), days("1996-12-31")
                ),
            ),
            on=[("s_suppkey", "l_suppkey")],
        )
        .join(scan("orders"), on=[("l_orderkey", "o_orderkey")])
        .join(scan("customer"), on=[("o_custkey", "c_custkey")])
        .join(
            scan("nation", alias="n1", predicate=col("n1.n_name").isin(pair)),
            on=[("s_nationkey", "n1.n_nationkey")],
        )
        .join(
            scan("nation", alias="n2", predicate=col("n2.n_name").isin(pair)),
            on=[("c_nationkey", "n2.n_nationkey")],
        )
        .filter(
            (col("n1.n_name").eq("FRANCE") & col("n2.n_name").eq("GERMANY"))
            | (col("n1.n_name").eq("GERMANY") & col("n2.n_name").eq("FRANCE"))
        )
        .project(
            supp_nation=col("n1.n_name"),
            cust_nation=col("n2.n_name"),
            l_year=year("l_shipdate"),
            volume=REVENUE,
        )
        .groupby(
            ["supp_nation", "cust_nation", "l_year"],
            [AggSpec("revenue", "sum", col("volume"))],
        )
        .sort([("supp_nation", True), ("cust_nation", True), ("l_year", True)])
    )
    return runner.execute(plan)
