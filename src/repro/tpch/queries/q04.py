"""Q4 — Order Priority Checking (EXISTS rewritten as a semi join)."""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import col


def q04(runner):
    lo, hi = days("1993-07-01"), days("1993-10-01")
    plan = (
        scan(
            "orders",
            predicate=col("o_orderdate").ge(lo) & col("o_orderdate").lt(hi),
        )
        .join(
            scan(
                "lineitem",
                predicate=col("l_commitdate").lt(col("l_receiptdate")),
            ),
            on=[("o_orderkey", "l_orderkey")],
            how="semi",
        )
        .groupby(["o_orderpriority"], [AggSpec("order_count", "count")])
        .sort([("o_orderpriority", True)])
    )
    return runner.execute(plan)
