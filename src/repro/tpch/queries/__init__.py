"""All 22 TPC-H queries as logical-plan functions.

Each query is a function ``qNN(runner) -> QueryResult`` using the
validation parameter values; :data:`QUERIES` maps ``"Q01"``..".."Q22"`` to
them in benchmark order.
"""

from .q01 import q01
from .q02 import q02
from .q03 import q03
from .q04 import q04
from .q05 import q05
from .q06 import q06
from .q07 import q07
from .q08 import q08
from .q09 import q09
from .q10 import q10
from .q11 import q11
from .q12 import q12
from .q13 import q13
from .q14 import q14
from .q15 import q15
from .q16 import q16
from .q17 import q17
from .q18 import q18
from .q19 import q19
from .q20 import q20
from .q21 import q21
from .q22 import q22

QUERIES = {
    "Q01": q01, "Q02": q02, "Q03": q03, "Q04": q04, "Q05": q05,
    "Q06": q06, "Q07": q07, "Q08": q08, "Q09": q09, "Q10": q10,
    "Q11": q11, "Q12": q12, "Q13": q13, "Q14": q14, "Q15": q15,
    "Q16": q16, "Q17": q17, "Q18": q18, "Q19": q19, "Q20": q20,
    "Q21": q21, "Q22": q22,
}

__all__ = ["QUERIES"] + [name.lower() for name in sorted(QUERIES)]
