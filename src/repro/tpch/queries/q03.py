"""Q3 — Shipping Priority (BUILDING segment, around 1995-03-15)."""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q03(runner):
    cutoff = days("1995-03-15")
    plan = (
        scan("customer", predicate=col("c_mktsegment").eq("BUILDING"))
        .join(
            scan("orders", predicate=col("o_orderdate").lt(cutoff)),
            on=[("c_custkey", "o_custkey")],
        )
        .join(
            scan("lineitem", predicate=col("l_shipdate").gt(cutoff)),
            on=[("o_orderkey", "l_orderkey")],
        )
        .groupby(
            ["l_orderkey", "o_orderdate", "o_shippriority"],
            [AggSpec("revenue", "sum", REVENUE)],
        )
        .sort([("revenue", False), ("o_orderdate", True)])
        .limit(10)
    )
    return runner.execute(plan)
