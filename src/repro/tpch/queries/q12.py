"""Q12 — Shipping Modes and Order Priority (MAIL/SHIP, 1994).

Another correlated-MinMax case in the paper: the receiptdate range prunes
LINEITEM pages because receipt dates follow order dates.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import Case
from ...planner.logical import scan
from ..dates import days
from .common import col


def q12(runner):
    lo, hi = days("1994-01-01"), days("1995-01-01")
    high_priority = col("o_orderpriority").isin(["1-URGENT", "2-HIGH"])
    plan = (
        scan("orders")
        .join(
            scan(
                "lineitem",
                predicate=(
                    col("l_shipmode").isin(["MAIL", "SHIP"])
                    & col("l_commitdate").lt(col("l_receiptdate"))
                    & col("l_shipdate").lt(col("l_commitdate"))
                    & col("l_receiptdate").ge(lo)
                    & col("l_receiptdate").lt(hi)
                ),
            ),
            on=[("o_orderkey", "l_orderkey")],
        )
        .groupby(
            ["l_shipmode"],
            [
                AggSpec("high_line_count", "sum", Case([(high_priority, 1)], 0)),
                AggSpec("low_line_count", "sum", Case([(high_priority, 0)], 1)),
            ],
        )
        .sort([("l_shipmode", True)])
    )
    return runner.execute(plan)
