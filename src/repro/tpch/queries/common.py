"""Shared expression helpers for the TPC-H query definitions.

Every query uses the TPC-H validation parameters (the substitution values
of the specification's qualification database), so results are
deterministic and comparable across the three physical schemes.
"""

from __future__ import annotations

from ...execution.expressions import Expr, col, days

__all__ = ["REVENUE", "CHARGE", "col", "days"]

#: l_extendedprice * (1 - l_discount)
REVENUE: Expr = col("l_extendedprice") * (1 - col("l_discount"))

#: l_extendedprice * (1 - l_discount) * (1 + l_tax)
CHARGE: Expr = REVENUE * (1 + col("l_tax"))
