"""Q5 — Local Supplier Volume (ASIA, 1994).

The customer-nation = supplier-nation condition is a residual on the
LINEITEM-SUPPLIER join; the region selection propagates to every
co-clustered table under BDCC (the paper's flagship propagation case).
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q05(runner):
    lo, hi = days("1994-01-01"), days("1995-01-01")
    plan = (
        scan("customer")
        .join(
            scan("orders", predicate=col("o_orderdate").ge(lo) & col("o_orderdate").lt(hi)),
            on=[("c_custkey", "o_custkey")],
        )
        .join(scan("lineitem"), on=[("o_orderkey", "l_orderkey")])
        .join(
            scan("supplier"),
            on=[("l_suppkey", "s_suppkey")],
            residual=col("c_nationkey").eq(col("s_nationkey")),
        )
        .join(scan("nation"), on=[("s_nationkey", "n_nationkey")])
        .join(
            scan("region", predicate=col("r_name").eq("ASIA")),
            on=[("n_regionkey", "r_regionkey")],
        )
        .groupby(["n_name"], [AggSpec("revenue", "sum", REVENUE)])
        .sort([("revenue", False)])
    )
    return runner.execute(plan)
