"""Q10 — Returned Item Reporting (Q4/1993 returns)."""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q10(runner):
    lo, hi = days("1993-10-01"), days("1994-01-01")
    plan = (
        scan("customer")
        .join(
            scan("orders", predicate=col("o_orderdate").ge(lo) & col("o_orderdate").lt(hi)),
            on=[("c_custkey", "o_custkey")],
        )
        .join(
            scan("lineitem", predicate=col("l_returnflag").eq("R")),
            on=[("o_orderkey", "l_orderkey")],
        )
        .join(scan("nation"), on=[("c_nationkey", "n_nationkey")])
        .groupby(
            [
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
                "c_comment",
            ],
            [AggSpec("revenue", "sum", REVENUE)],
        )
        .sort([("revenue", False), ("c_custkey", True)])
        .limit(20)
    )
    return runner.execute(plan)
