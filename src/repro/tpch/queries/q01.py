"""Q1 — Pricing Summary Report.

A ~96% scan of LINEITEM with heavy aggregation; the paper's example of a
query no indexing scheme can accelerate (Figure 2 discussion).
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import CHARGE, REVENUE, col


def q01(runner):
    plan = (
        scan("lineitem", predicate=col("l_shipdate").le(days("1998-09-02")))
        .groupby(
            ["l_returnflag", "l_linestatus"],
            [
                AggSpec("sum_qty", "sum", col("l_quantity")),
                AggSpec("sum_base_price", "sum", col("l_extendedprice")),
                AggSpec("sum_disc_price", "sum", REVENUE),
                AggSpec("sum_charge", "sum", CHARGE),
                AggSpec("avg_qty", "avg", col("l_quantity")),
                AggSpec("avg_price", "avg", col("l_extendedprice")),
                AggSpec("avg_disc", "avg", col("l_discount")),
                AggSpec("count_order", "count"),
            ],
        )
        .sort([("l_returnflag", True), ("l_linestatus", True)])
    )
    return runner.execute(plan)
