"""Q2 — Minimum Cost Supplier.

The correlated MIN subquery is decorrelated into a grouped minimum over
the EUROPE supply chain, joined back to the main chain (the standard
rewrite).  Two PARTSUPP instances appear, so the subquery side uses
explicit aliases.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q02(runner):
    min_cost = (
        scan("partsupp", alias="ps2")
        .join(scan("supplier", alias="s2"), on=[("ps2.ps_suppkey", "s2.s_suppkey")])
        .join(scan("nation", alias="n2"), on=[("s2.s_nationkey", "n2.n_nationkey")])
        .join(
            scan("region", alias="r2", predicate=col("r2.r_name").eq("EUROPE")),
            on=[("n2.n_regionkey", "r2.r_regionkey")],
        )
        .groupby(
            ["ps2.ps_partkey"],
            [AggSpec("min_cost", "min", col("ps2.ps_supplycost"))],
        )
    )
    plan = (
        scan(
            "part",
            predicate=col("p_size").eq(15) & col("p_type").like("%BRASS"),
        )
        .join(scan("partsupp"), on=[("p_partkey", "ps_partkey")])
        .join(scan("supplier"), on=[("ps_suppkey", "s_suppkey")])
        .join(scan("nation"), on=[("s_nationkey", "n_nationkey")])
        .join(
            scan("region", predicate=col("r_name").eq("EUROPE")),
            on=[("n_regionkey", "r_regionkey")],
        )
        .join(min_cost, on=[("ps_partkey", "ps2.ps_partkey")])
        .filter(col("ps_supplycost").eq(col("min_cost")))
        .project(
            s_acctbal=col("s_acctbal"),
            s_name=col("s_name"),
            n_name=col("n_name"),
            p_partkey=col("p_partkey"),
            p_mfgr=col("p_mfgr"),
            s_address=col("s_address"),
            s_phone=col("s_phone"),
            s_comment=col("s_comment"),
        )
        .sort(
            [("s_acctbal", False), ("n_name", True), ("s_name", True), ("p_partkey", True)]
        )
        .limit(100)
    )
    return runner.execute(plan)
