"""Q6 — Forecasting Revenue Change.

Pure selection + scalar aggregate on LINEITEM; under BDCC the shipdate
range prunes through MinMax indices thanks to orderdate clustering
(the correlated-pushdown effect of the paper's detailed analysis).
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import col


def q06(runner):
    lo, hi = days("1994-01-01"), days("1995-01-01")
    plan = scan(
        "lineitem",
        predicate=(
            col("l_shipdate").ge(lo)
            & col("l_shipdate").lt(hi)
            & col("l_discount").between(0.05, 0.07)
            & col("l_quantity").lt(24)
        ),
    ).groupby(
        [], [AggSpec("revenue", "sum", col("l_extendedprice") * col("l_discount"))]
    )
    return runner.execute(plan)
