"""Q20 — Potential Part Promotion (forest% parts, CANADA, 1994).

Nested EXISTS/IN chain decorrelated: per-(part, supplier) 1994 shipped
quantity is aggregated from LINEITEM, joined to the forest% PARTSUPP
rows, and the qualifying suppliers semi-join SUPPLIER x CANADA.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from ..dates import days
from .common import col


def q20(runner):
    lo, hi = days("1994-01-01"), days("1995-01-01")
    shipped = (
        scan(
            "lineitem",
            predicate=col("l_shipdate").ge(lo) & col("l_shipdate").lt(hi),
        )
        .groupby(
            ["l_partkey", "l_suppkey"],
            [AggSpec("sum_qty", "sum", col("l_quantity"))],
        )
    )
    qualifying = (
        scan("partsupp")
        .join(
            scan("part", predicate=col("p_name").like("forest%")),
            on=[("ps_partkey", "p_partkey")],
            how="semi",
        )
        .join(shipped, on=[("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")])
        .filter(col("ps_availqty").gt(0.5 * col("sum_qty")))
    )
    plan = (
        scan("supplier")
        .join(
            scan("nation", predicate=col("n_name").eq("CANADA")),
            on=[("s_nationkey", "n_nationkey")],
        )
        .join(qualifying, on=[("s_suppkey", "ps_suppkey")], how="semi")
        .project(s_name=col("s_name"), s_address=col("s_address"))
        .sort([("s_name", True)])
    )
    return runner.execute(plan)
