"""Q14 — Promotion Effect (September 1995)."""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import Case
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q14(runner):
    lo, hi = days("1995-09-01"), days("1995-10-01")
    plan = (
        scan(
            "lineitem",
            predicate=col("l_shipdate").ge(lo) & col("l_shipdate").lt(hi),
        )
        .join(scan("part"), on=[("l_partkey", "p_partkey")])
        .project(
            promo=Case([(col("p_type").like("PROMO%"), REVENUE)], 0.0),
            total=REVENUE,
        )
        .groupby(
            [],
            [
                AggSpec("promo_sum", "sum", col("promo")),
                AggSpec("total_sum", "sum", col("total")),
            ],
        )
        .project(promo_revenue=100.0 * col("promo_sum") / col("total_sum"))
    )
    return runner.execute(plan)
