"""Q8 — National Market Share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)."""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import Case, year
from ...planner.logical import scan
from ..dates import days
from .common import REVENUE, col


def q08(runner):
    plan = (
        scan("part", predicate=col("p_type").eq("ECONOMY ANODIZED STEEL"))
        .join(scan("lineitem"), on=[("p_partkey", "l_partkey")])
        .join(scan("supplier"), on=[("l_suppkey", "s_suppkey")])
        .join(
            scan(
                "orders",
                predicate=col("o_orderdate").between(
                    days("1995-01-01"), days("1996-12-31")
                ),
            ),
            on=[("l_orderkey", "o_orderkey")],
        )
        .join(scan("customer"), on=[("o_custkey", "c_custkey")])
        .join(scan("nation", alias="n1"), on=[("c_nationkey", "n1.n_nationkey")])
        .join(
            scan("region", predicate=col("r_name").eq("AMERICA")),
            on=[("n1.n_regionkey", "r_regionkey")],
        )
        .join(scan("nation", alias="n2"), on=[("s_nationkey", "n2.n_nationkey")])
        .project(
            o_year=year("o_orderdate"),
            volume=REVENUE,
            nation=col("n2.n_name"),
        )
        .groupby(
            ["o_year"],
            [
                AggSpec(
                    "brazil_volume",
                    "sum",
                    Case([(col("nation").eq("BRAZIL"), col("volume"))], 0.0),
                ),
                AggSpec("total_volume", "sum", col("volume")),
            ],
        )
        .project(
            o_year=col("o_year"),
            mkt_share=col("brazil_volume") / col("total_volume"),
        )
        .sort([("o_year", True)])
    )
    return runner.execute(plan)
