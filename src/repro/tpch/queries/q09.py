"""Q9 — Product Type Profit Measure ('%green%' parts).

Exercises the composite LINEITEM->PARTSUPP foreign key (both part and
supplier keys) plus four more joins; the paper attributes its BDCC win
purely to sandwiched execution.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import year
from ...planner.logical import scan
from .common import REVENUE, col


def q09(runner):
    amount = REVENUE - col("ps_supplycost") * col("l_quantity")
    plan = (
        scan("part", predicate=col("p_name").like("%green%"))
        .join(scan("lineitem"), on=[("p_partkey", "l_partkey")])
        .join(scan("supplier"), on=[("l_suppkey", "s_suppkey")])
        .join(
            scan("partsupp"),
            on=[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
        )
        .join(scan("orders"), on=[("l_orderkey", "o_orderkey")])
        .join(scan("nation"), on=[("s_nationkey", "n_nationkey")])
        .project(
            nation=col("n_name"),
            o_year=year("o_orderdate"),
            amount=amount,
        )
        .groupby(["nation", "o_year"], [AggSpec("sum_profit", "sum", col("amount"))])
        .sort([("nation", True), ("o_year", False)])
    )
    return runner.execute(plan)
