"""Q18 — Large Volume Customer (orders over 300 units).

The IN subquery becomes a semi join against a grouped HAVING subplan.
The paper's analysis: the full LINEITEM aggregation on ``l_orderkey``
sandwiches under BDCC (helping vs. plain) but cannot beat the PK scheme's
streaming aggregate over key-ordered LINEITEM.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q18(runner):
    big_orders = (
        scan("lineitem", alias="l3")
        .groupby(["l3.l_orderkey"], [AggSpec("sum_qty", "sum", col("l3.l_quantity"))])
        .filter(col("sum_qty").gt(300))
    )
    plan = (
        scan("customer")
        .join(scan("orders"), on=[("c_custkey", "o_custkey")])
        .join(big_orders, on=[("o_orderkey", "l3.l_orderkey")], how="semi")
        .join(scan("lineitem"), on=[("o_orderkey", "l_orderkey")])
        .groupby(
            ["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
            [AggSpec("sum_quantity", "sum", col("l_quantity"))],
        )
        .sort([("o_totalprice", False), ("o_orderdate", True)])
        .limit(100)
    )
    return runner.execute(plan)
