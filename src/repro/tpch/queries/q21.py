"""Q21 — Suppliers Who Kept Orders Waiting (SAUDI ARABIA).

Three LINEITEM instances: the late line l1, an EXISTS semi join against
another supplier's line l2, and a NOT EXISTS anti join against another
supplier's *late* line l3 — both with non-equi residuals on the supplier
key.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col


def q21(runner):
    plan = (
        scan("supplier")
        .join(
            scan(
                "lineitem",
                alias="l1",
                predicate=col("l1.l_receiptdate").gt(col("l1.l_commitdate")),
            ),
            on=[("s_suppkey", "l1.l_suppkey")],
        )
        .join(
            scan("orders", predicate=col("o_orderstatus").eq("F")),
            on=[("l1.l_orderkey", "o_orderkey")],
        )
        .join(
            scan("nation", predicate=col("n_name").eq("SAUDI ARABIA")),
            on=[("s_nationkey", "n_nationkey")],
        )
        .join(
            scan("lineitem", alias="l2"),
            on=[("l1.l_orderkey", "l2.l_orderkey")],
            how="semi",
            residual=col("l2.l_suppkey").ne(col("l1.l_suppkey")),
        )
        .join(
            scan(
                "lineitem",
                alias="l3",
                predicate=col("l3.l_receiptdate").gt(col("l3.l_commitdate")),
            ),
            on=[("l1.l_orderkey", "l3.l_orderkey")],
            how="anti",
            residual=col("l3.l_suppkey").ne(col("l1.l_suppkey")),
        )
        .groupby(["s_name"], [AggSpec("numwait", "count")])
        .sort([("numwait", False), ("s_name", True)])
        .limit(100)
    )
    return runner.execute(plan)
