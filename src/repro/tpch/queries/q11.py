"""Q11 — Important Stock Identification (GERMANY).

Two stages: the scalar threshold (FRACTION of the total German stock
value, with FRACTION = 0.0001 / SF per the specification) and the main
grouped HAVING query.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...planner.logical import scan
from .common import col

_VALUE = col("ps_supplycost") * col("ps_availqty")


def _german_partsupp():
    return (
        scan("partsupp")
        .join(scan("supplier"), on=[("ps_suppkey", "s_suppkey")])
        .join(
            scan("nation", predicate=col("n_name").eq("GERMANY")),
            on=[("s_nationkey", "n_nationkey")],
        )
    )


def q11(runner):
    total = runner.execute(
        _german_partsupp().groupby([], [AggSpec("total", "sum", _VALUE)])
    )
    total_value = float(total.relation.column("total")[0]) if total.relation.num_rows else 0.0
    fraction = 0.0001 / runner.scale_factor
    threshold = total_value * fraction

    plan = (
        _german_partsupp()
        .groupby(["ps_partkey"], [AggSpec("value", "sum", _VALUE)])
        .filter(col("value").gt(threshold))
        .sort([("value", False), ("ps_partkey", True)])
    )
    return runner.execute(plan)
