"""Q22 — Global Sales Opportunity.

Stage 1 computes the average positive balance of the seven country
codes; stage 2 anti-joins customers above that balance against ORDERS and
groups by the phone-prefix country code.
"""

from __future__ import annotations

from ...execution.aggregate import AggSpec
from ...execution.expressions import Substring
from ...planner.logical import scan
from .common import col

_CODES = ["13", "31", "23", "29", "30", "18", "17"]
_CNTRY = Substring(col("c_phone"), 1, 2)


def q22(runner):
    averages = runner.execute(
        scan(
            "customer",
            predicate=_CNTRY.isin(_CODES) & col("c_acctbal").gt(0.0),
        ).groupby([], [AggSpec("avg_bal", "avg", col("c_acctbal"))])
    )
    avg_bal = float(averages.relation.column("avg_bal")[0]) if averages.relation.num_rows else 0.0

    plan = (
        scan(
            "customer",
            predicate=_CNTRY.isin(_CODES) & col("c_acctbal").gt(avg_bal),
        )
        .join(scan("orders"), on=[("c_custkey", "o_custkey")], how="anti")
        .project(cntrycode=_CNTRY, c_acctbal=col("c_acctbal"))
        .groupby(
            ["cntrycode"],
            [
                AggSpec("numcust", "count"),
                AggSpec("totacctbal", "sum", col("c_acctbal")),
            ],
        )
        .sort([("cntrycode", True)])
    )
    return runner.execute(plan)
