"""Entry point for ``python -m repro.tpch``."""

from .cli import main

raise SystemExit(main())
