"""Query runner: multi-stage execution with merged metrics.

Several TPC-H queries decorrelate into a scalar pre-query plus a main
plan (Q11's threshold, Q15's max revenue, Q22's average balance).  The
runner executes each stage through one :class:`Executor` and merges the
stage metrics: times and IO add up, peak memory is the maximum across
stages (stages run one after another).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..execution.metrics import ExecutionMetrics
from ..planner.executor import ExecutionOptions, Executor, QueryResult
from ..planner.lowering import PhysicalPlan
from ..schemes.base import PhysicalDatabase
from ..storage.database import Database
from ..storage.io_model import DiskModel

__all__ = ["QueryRunner", "run_query"]


class QueryRunner:
    """Executes plan stages and accumulates one query's total cost.

    Stages go through the two-phase entry points — ``executor.lower``
    then ``executor.run`` — and the lowered physical plans are kept in
    ``physical_plans``, so callers (EXPLAIN, tests, the CLI) can inspect
    what was planned per stage without re-running the query."""

    def __init__(self, executor: Executor):
        self.executor = executor
        self.metrics = ExecutionMetrics()
        self.physical_plans: List[PhysicalPlan] = []
        #: per-stage metrics, parallel to ``physical_plans`` (the merged
        #: ``metrics`` mixes stages; fragment timelines are per stage)
        self.stage_metrics: List[ExecutionMetrics] = []

    @property
    def database(self) -> Database:
        return self.executor.pdb.database

    @property
    def scale_factor(self) -> float:
        sf = self.database.scale_factor
        return 1.0 if sf is None else sf

    def execute(self, plan) -> QueryResult:
        pplan = plan if isinstance(plan, PhysicalPlan) else self.executor.lower(plan)
        self.physical_plans.append(pplan)
        result = self.executor.run(pplan)
        self.stage_metrics.append(result.metrics)
        self._merge(result.metrics)
        return result

    def _merge(self, stage: ExecutionMetrics) -> None:
        merged = self.metrics
        merged.io_bytes += stage.io_bytes
        merged.io_accesses += stage.io_accesses
        merged.io_seconds += stage.io_seconds
        merged.cpu_seconds += stage.cpu_seconds
        merged.rows_scanned += stage.rows_scanned
        merged.delta_rows_scanned += stage.delta_rows_scanned
        merged.compaction_seconds += stage.compaction_seconds
        merged.rows_produced = stage.rows_produced
        if stage.peak_memory_bytes > merged.memory.peak_bytes:
            merged.memory.peak_bytes = stage.peak_memory_bytes
        # stages run sequentially, so a tag's query peak is its maximum
        # over the stages (never a sum)
        for tag, peak in stage.memory.tag_peaks.items():
            if peak > merged.memory.tag_peaks.get(tag, 0.0):
                merged.memory.tag_peaks[tag] = peak
        for key, value in stage.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        merged.notes.extend(stage.notes)
        # stages hold distinct operator trees; keep every stage's actuals
        merged.operators.update(stage.operators)
        # stages run one after another: wall clocks add up, and the
        # per-stage fragment timelines are kept for inspection
        merged.makespan_seconds += stage.makespan_seconds
        merged.workers = max(merged.workers, stage.workers)
        merged.fragments.extend(stage.fragments)
        merged.measured_wall_seconds += stage.measured_wall_seconds
        if stage.backend != "simulated":
            merged.backend = stage.backend


def run_query(
    physical_db: PhysicalDatabase,
    query: Callable[[QueryRunner], QueryResult],
    disk: Optional[DiskModel] = None,
    options: Optional[ExecutionOptions] = None,
    costs=None,
    tracer=None,
    observer: Optional[Callable[[QueryRunner, QueryResult], None]] = None,
) -> tuple:
    """Run one query function; returns (QueryResult, merged metrics).

    ``tracer`` (a :class:`repro.observe.SpanTracer`) is handed to the
    executor; ``observer`` is called with ``(runner, result)`` after the
    query finishes but before the executor is closed, so observability
    sinks (trace builders, query logs) can read the runner's stage
    metrics and lowered plans while they are still live.
    """
    executor = Executor(
        physical_db, disk=disk, costs=costs, options=options, tracer=tracer
    )
    try:
        runner = QueryRunner(executor)
        result = query(runner)
        if observer is not None:
            observer(runner, result)
        return result, runner.metrics
    finally:
        executor.close()  # releases process-backend pools/shared memory
