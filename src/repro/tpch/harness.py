"""Benchmark harness: run the 22-query suite under the three schemes and
render the paper's Figure 2 / Figure 3 tables.

Reported times and memory are the *simulated* quantities of the cost
model (see DESIGN.md §4); the harness also prints an SF100-equivalent
column (linear extrapolation) next to the paper's reported numbers so
EXPERIMENTS.md can record paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.advisor import AdvisorConfig
from ..planner.executor import ExecutionOptions
from ..schemes.base import PhysicalDatabase
from ..schemes.bdcc import BDCCScheme
from ..schemes.plain import PlainScheme
from ..schemes.primary_key import PrimaryKeyScheme
from ..storage.database import Database
from .environment import Environment, make_environment
from .queries import QUERIES
from .runner import run_query

__all__ = ["QueryMeasurement", "SchemeResults", "SuiteResult", "build_schemes", "run_suite"]


@dataclass
class QueryMeasurement:
    query: str
    seconds: float
    io_seconds: float
    cpu_seconds: float
    peak_memory_bytes: float
    rows: int
    notes: List[str] = field(default_factory=list)
    #: simulated wall clock (scheduler makespan; == seconds when serial)
    makespan_seconds: float = 0.0
    workers: int = 1

    @property
    def speedup(self) -> float:
        """Resource-seconds over wall clock (1.0 for a serial run)."""
        return self.seconds / self.makespan_seconds if self.makespan_seconds else 1.0


@dataclass
class SchemeResults:
    scheme: str
    measurements: Dict[str, QueryMeasurement] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(m.seconds for m in self.measurements.values())

    @property
    def total_peak_memory(self) -> float:
        return sum(m.peak_memory_bytes for m in self.measurements.values())

    @property
    def max_peak_memory(self) -> float:
        return max((m.peak_memory_bytes for m in self.measurements.values()), default=0.0)

    @property
    def avg_peak_memory(self) -> float:
        if not self.measurements:
            return 0.0
        return self.total_peak_memory / len(self.measurements)


@dataclass
class SuiteResult:
    environment: Environment
    schemes: Dict[str, SchemeResults]

    def speedup(self, slow: str = "plain", fast: str = "bdcc") -> float:
        denominator = self.schemes[fast].total_seconds
        return self.schemes[slow].total_seconds / denominator if denominator else float("inf")

    # ------------------------------------------------------------- tables
    def fig2_table(self) -> str:
        """Execution times per query (the paper's Figure 2)."""
        return self._table("seconds", "simulated time", 1e3, "ms")

    def fig3_table(self) -> str:
        """Peak query memory per query (the paper's Figure 3)."""
        return self._table("peak_memory_bytes", "peak memory", 1e-6, "MB")

    def parallel_table(self) -> str:
        """Per-query makespan and speedup columns of a ``--workers N``
        run: resource-seconds (the work done), wall clock (the
        scheduler's makespan) and their ratio per scheme."""
        names = list(self.schemes)
        workers = max(
            m.workers for r in self.schemes.values() for m in r.measurements.values()
        )
        header = f"{'query':<6}"
        for name in names:
            header += f"{name + ' work':>12}{name + ' wall':>12}{name + ' x':>9}"
        lines = [
            f"parallel execution, workers={workers} "
            f"(work = resource ms, wall = makespan ms)",
            header,
        ]
        queries = sorted(next(iter(self.schemes.values())).measurements)
        for query in queries:
            row = f"{query:<6}"
            for name in names:
                m = self.schemes[name].measurements[query]
                row += (
                    f"{m.seconds * 1e3:12.3f}"
                    f"{(m.makespan_seconds or m.seconds) * 1e3:12.3f}"
                    f"{m.speedup:9.2f}"
                )
            lines.append(row)
        totals = "total "
        for name in names:
            work = sum(m.seconds for m in self.schemes[name].measurements.values())
            wall = sum(
                (m.makespan_seconds or m.seconds)
                for m in self.schemes[name].measurements.values()
            )
            totals += f"{work * 1e3:12.3f}{wall * 1e3:12.3f}{work / wall if wall else 1.0:9.2f}"
        lines.append(totals)
        return "\n".join(lines)

    def _table(self, attr: str, title: str, scale: float, unit: str) -> str:
        names = list(self.schemes)
        lines = [
            f"{title} per TPC-H query, SF={self.environment.scale_factor} "
            f"(page={self.environment.page_model.page_bytes}B)",
            "query  " + "".join(f"{n:>12}" for n in names),
        ]
        queries = sorted(next(iter(self.schemes.values())).measurements)
        for query in queries:
            row = f"{query:<6}"
            for name in names:
                value = getattr(self.schemes[name].measurements[query], attr) * scale
                row += f"{value:12.3f}"
            lines.append(row)
        totals = "total "
        for name in names:
            total = sum(
                getattr(m, attr) for m in self.schemes[name].measurements.values()
            )
            totals += f"{total * scale:12.3f}"
        lines.append(totals + f"  [{unit}]")
        return "\n".join(lines)


def build_schemes(
    db: Database,
    environment: Optional[Environment] = None,
    include: Sequence[str] = ("plain", "pk", "bdcc"),
    advisor_config: Optional[AdvisorConfig] = None,
) -> Dict[str, PhysicalDatabase]:
    """Materialise the requested physical schemes on the shared device."""
    env = environment or make_environment(db.scale_factor or 0.01)
    result: Dict[str, PhysicalDatabase] = {}
    for name in include:
        if name == "plain":
            scheme = PlainScheme(page_model=env.page_model)
        elif name == "pk":
            scheme = PrimaryKeyScheme(page_model=env.page_model)
        elif name == "bdcc":
            scheme = BDCCScheme(
                advisor_config=advisor_config or env.advisor_config(),
                page_model=env.page_model,
            )
        else:
            raise ValueError(f"unknown scheme {name!r}")
        result[name] = scheme.build(db)
    return result


def run_suite(
    physical_dbs: Dict[str, PhysicalDatabase],
    environment: Environment,
    queries: Optional[Dict[str, Callable]] = None,
    options: Optional[ExecutionOptions] = None,
    check_results_match: bool = False,
    tracer=None,
    observer: Optional[Callable] = None,
) -> SuiteResult:
    """Run the query set cold under every scheme.

    ``tracer``/``observer`` thread through to :func:`run_query`; the
    observer here is called as ``observer(qname, sname, runner, result)``
    so sinks can label records by query and scheme.
    """
    queries = queries or QUERIES
    schemes = {name: SchemeResults(name) for name in physical_dbs}
    reference_rows: Dict[str, list] = {}
    for qname, fn in queries.items():
        for sname, pdb in physical_dbs.items():
            hook = None
            if observer is not None:
                hook = (
                    lambda runner, result, q=qname, s=sname:
                    observer(q, s, runner, result)
                )
            result, metrics = run_query(
                pdb, fn,
                disk=environment.disk,
                options=options,
                costs=environment.cost_model,
                tracer=tracer,
                observer=hook,
            )
            schemes[sname].measurements[qname] = QueryMeasurement(
                query=qname,
                seconds=metrics.total_seconds,
                io_seconds=metrics.io_seconds,
                cpu_seconds=metrics.cpu_seconds,
                peak_memory_bytes=metrics.peak_memory_bytes,
                rows=result.relation.num_rows,
                notes=list(metrics.notes),
                makespan_seconds=metrics.makespan_seconds,
                workers=metrics.workers,
            )
            if check_results_match:
                rows = sorted(
                    tuple(round(v, 4) if isinstance(v, float) else v for v in row)
                    for row in result.rows
                )
                if qname not in reference_rows:
                    reference_rows[qname] = rows
                elif reference_rows[qname] != rows:
                    raise AssertionError(
                        f"{qname}: scheme {sname} returned different results"
                    )
    return SuiteResult(environment=environment, schemes=schemes)
