"""TPC-H value domains (dbgen vocabularies, TPC-H specification v2).

Only the domains queried by the 22 benchmark queries need full fidelity
(types, brands, containers, segments, modes, priorities, nation/region
names, the color words of P_NAME, and comment vocabulary containing the
words Q9/Q13/Q16/Q20 grep for).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "REGIONS", "NATIONS", "SEGMENTS", "PRIORITIES", "INSTRUCTIONS",
    "MODES", "CONTAINERS", "TYPES", "COLORS", "COMMENT_WORDS",
]

REGIONS: List[str] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (name, regionkey) in nationkey order 0..24 — the official dbgen list.
NATIONS: List[Tuple[str, int]] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

_CONTAINER_SIZES = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_KINDS = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
CONTAINERS = [f"{s} {k}" for s in _CONTAINER_SIZES for k in _CONTAINER_KINDS]

_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
TYPES = [f"{a} {b} {c}" for a in _TYPE_SYLL1 for b in _TYPE_SYLL2 for c in _TYPE_SYLL3]

#: dbgen's 92 color words (P_NAME concatenates five of these).
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
    "yellow",
]

#: vocabulary for generated comments; includes the words the benchmark
#: queries pattern-match on ("special ... requests" for Q13, "Customer
#: ... Complaints" for Q16) at dbgen-like frequencies via datagen logic.
COMMENT_WORDS = [
    "furiously", "carefully", "quickly", "blithely", "slyly", "ironic",
    "final", "bold", "regular", "express", "even", "silent", "pending",
    "unusual", "idle", "deposits", "accounts", "packages", "theodolites",
    "instructions", "dependencies", "foxes", "ideas", "pinto", "beans",
    "platelets", "requests", "special", "excuses", "asymptotes", "courts",
    "dolphins", "multipliers", "sauternes", "warhorses", "frets", "dinos",
    "attainments", "somas", "Tiresias", "nag", "sleep", "wake", "haggle",
    "cajole", "integrate", "use", "boost", "breach", "dazzle", "grow",
    "above", "according", "across", "against", "along", "beneath", "beside",
    "between", "toward", "under", "upon",
]
