"""Execution metrics: simulated IO/CPU time and peak memory accounting.

The reproduction targets of Figures 2 and 3 are *simulated* quantities:

* cold execution time = disk-model IO time + CPU-model operator time;
* memory usage = peak of concurrently live operator allocations (hash
  build sides, aggregation state, sort buffers) — what the paper's
  "query memory" measures, and what sandwich operators shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "MemoryTracker",
    "MemoryReservation",
    "OperatorActuals",
    "FragmentActuals",
    "ExecutionMetrics",
    "merge_operator_actuals",
]


class MemoryReservation:
    """A live allocation; context-manager style release."""

    def __init__(self, tracker: "MemoryTracker", tag: str, num_bytes: float):
        self._tracker = tracker
        self.tag = tag
        self.num_bytes = float(num_bytes)
        self._released = False

    def grow(self, extra_bytes: float) -> None:
        if self._released:
            raise RuntimeError("reservation already released")
        self._tracker._grow(extra_bytes, self.tag)
        self.num_bytes += extra_bytes

    def release(self) -> None:
        if not self._released:
            self._tracker._release(self.num_bytes, self.tag)
            self._released = True

    def __enter__(self) -> "MemoryReservation":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class MemoryTracker:
    """Tracks current and peak live bytes, overall and per tag.

    The overall peak (``peak_bytes``) is the Figure 3 quantity; the
    per-tag current/peak pairs attribute it — which kind of blocking
    state (hash build, aggregation table, sort buffer, exchange buffer)
    was live when memory crested.  Tag peaks are each tag's own maximum
    of concurrently live bytes, so they need not sum to ``peak_bytes``
    (different tags can peak at different times).  Surfaced by
    ``explain(analyze=True)`` and the query-log records."""

    def __init__(self) -> None:
        self.current_bytes = 0.0
        self.peak_bytes = 0.0
        #: tag -> currently live bytes under that tag.
        self.tag_current: Dict[str, float] = {}
        #: tag -> that tag's own peak of concurrently live bytes.
        self.tag_peaks: Dict[str, float] = {}

    def allocate(self, tag: str, num_bytes: float) -> MemoryReservation:
        reservation = MemoryReservation(self, tag, 0.0)
        reservation.grow(float(num_bytes))
        return reservation

    def _grow(self, num_bytes: float, tag: str) -> None:
        self.current_bytes += num_bytes
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        current = self.tag_current.get(tag, 0.0) + num_bytes
        self.tag_current[tag] = current
        if current > self.tag_peaks.get(tag, 0.0):
            self.tag_peaks[tag] = current

    def _release(self, num_bytes: float, tag: str) -> None:
        self.current_bytes -= num_bytes
        self.tag_current[tag] = self.tag_current.get(tag, 0.0) - num_bytes


@dataclass
class OperatorActuals:
    """Measured per-operator quantities of one plan execution.

    All charges are *exclusive*: what this operator itself consumed, with
    its children's consumption subtracted out — so the values across a
    plan sum to the query totals.  ``reserved_bytes`` is the blocking
    state (hash builds, aggregation tables, sort buffers) this operator
    held; the query-wide peak of concurrently live reservations remains
    the Figure 3 quantity on :class:`ExecutionMetrics`.

    ``executions`` counts how many times the operator ran within the
    recorded window.  An operator object can execute more than once per
    query — fragmenting clones only the spine of a plan, so a leaf or
    broadcast subtree may be shared by several fragments — and merged
    parallel metrics *accumulate* those runs (see
    :func:`merge_operator_actuals`) instead of keeping only the last
    one, preserving the sum-to-totals invariant.
    """

    kind: str
    description: str
    rows_in: int = 0
    rows_out: int = 0
    io_bytes: float = 0.0
    io_accesses: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    reserved_bytes: float = 0.0
    executions: int = 1

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds

    def absorb(self, other: "OperatorActuals") -> None:
        """Accumulate another execution of the same operator object."""
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out
        self.io_bytes += other.io_bytes
        self.io_accesses += other.io_accesses
        self.io_seconds += other.io_seconds
        self.cpu_seconds += other.cpu_seconds
        self.reserved_bytes += other.reserved_bytes
        self.executions += other.executions

    def summary(self) -> str:
        """One-line ``(actual ...)`` annotation for EXPLAIN ANALYZE."""
        parts = [f"rows={self.rows_in}->{self.rows_out}"]
        parts.append(f"io={self.io_seconds * 1e3:.3f}ms")
        parts.append(f"cpu={self.cpu_seconds * 1e3:.3f}ms")
        parts.append(f"mem={self.reserved_bytes / 1e6:.3f}MB")
        if self.executions > 1:
            parts.append(f"execs={self.executions}")
        return "(actual " + " ".join(parts) + ")"


def merge_operator_actuals(
    merged: Dict[int, "OperatorActuals"],
    operators: Dict[int, "OperatorActuals"],
) -> None:
    """Fold one execution's per-operator actuals into ``merged``.

    Keys are operator identities (``id(op)``); a key already present
    means the same operator object ran again in another fragment (shared
    leaf/broadcast subtrees), so its charges are *accumulated* — never
    overwritten, which silently dropped work and broke the
    sum-to-totals invariant.  First occurrences are copied so the
    merged entry never aliases (and later mutates) a per-fragment one."""
    from dataclasses import replace

    for key, actuals in operators.items():
        existing = merged.get(key)
        if existing is None:
            merged[key] = replace(actuals)
        else:
            existing.absorb(actuals)


@dataclass
class FragmentActuals:
    """Measured quantities of one plan fragment in a parallel execution.

    ``io_seconds``/``cpu_seconds`` are the *charged* (uncontended)
    resource seconds — across fragments they sum to the query totals.
    The timeline fields come from the deterministic scheduler: wall-clock
    positions on the assigned worker, with IO stretched when more
    concurrent streams than the disk supports were active."""

    index: int
    #: "partition" | "broadcast" | "source" | "copartition" | "final"
    #: | "serial" (see repro.parallel.fragments.Fragment)
    role: str
    description: str
    worker: int = -1
    depends_on: Tuple[int, ...] = ()
    ready_seconds: float = 0.0    # all dependencies finished
    start_seconds: float = 0.0    # dispatched to the worker
    io_end_seconds: float = 0.0   # IO phase done (includes contention)
    end_seconds: float = 0.0      # fragment finished
    io_seconds: float = 0.0       # charged IO (no contention stretch)
    cpu_seconds: float = 0.0
    rows_out: int = 0
    output_bytes: float = 0.0     # exchanged result buffer size
    peak_memory_bytes: float = 0.0
    #: real wall-clock seconds this fragment took on a measuring backend
    #: (the process backend); 0.0 on purely simulated runs.
    measured_seconds: float = 0.0
    #: measured wall-clock *positions* relative to the run's start (the
    #: process backend's timeline — what the trace exporter renders as
    #: the measured lane set); both 0.0 on purely simulated runs.
    measured_start_seconds: float = 0.0
    measured_end_seconds: float = 0.0
    #: top-N cProfile function stats of this fragment's run (wall clock,
    #: opt-in via ``ExecutionOptions.profile``); empty when profiling is
    #: off.  Entries: ``{"function", "calls", "total_seconds",
    #: "cumulative_seconds"}``, sorted by exclusive time descending.
    profile: List[dict] = field(default_factory=list)

    @property
    def queue_wait_seconds(self) -> float:
        """Time spent ready but waiting for a free worker."""
        return max(self.start_seconds - self.ready_seconds, 0.0)

    @property
    def makespan_contribution_seconds(self) -> float:
        """Wall-clock this fragment occupied its worker (IO stretch
        under disk contention included)."""
        return max(self.end_seconds - self.start_seconds, 0.0)

    def summary(self) -> str:
        """One-line annotation for EXPLAIN ANALYZE fragment headers."""
        line = (
            f"(worker {self.worker} "
            f"start={self.start_seconds * 1e3:.3f}ms "
            f"busy={self.makespan_contribution_seconds * 1e3:.3f}ms "
            f"wait={self.queue_wait_seconds * 1e3:.3f}ms"
        )
        if self.measured_seconds > 0.0:
            line += f" measured={self.measured_seconds * 1e3:.3f}ms"
        return line + ")"


@dataclass
class ExecutionMetrics:
    """Accumulated cost of one query execution."""

    io_bytes: float = 0.0
    io_accesses: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    rows_scanned: int = 0
    rows_produced: int = 0
    #: rows read from delta (uncompacted insert) runs by merge-on-read
    #: scans; a subset of ``rows_scanned``.
    delta_rows_scanned: int = 0
    #: amortized update cost: simulated seconds spent folding delta
    #: stores back into base layouts (charged by commits, reported next
    #: to query time by the refresh harness; not part of
    #: ``total_seconds``).
    compaction_seconds: float = 0.0
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    #: free-form counters, e.g. per-operator attribution for explain.
    counters: Dict[str, float] = field(default_factory=dict)
    #: human-readable notes from the planner (strategy decisions).
    notes: List[str] = field(default_factory=list)
    #: per-operator actuals, keyed by physical-operator identity
    #: (``id(op)``); populated by the execution context as it runs.
    operators: Dict[int, OperatorActuals] = field(default_factory=dict)
    #: simulated workers this execution ran on (1 = serial).
    workers: int = 1
    #: simulated wall clock: the makespan over worker timelines.  For a
    #: serial run this equals ``total_seconds``; a parallel run overlaps
    #: fragments, so makespan < total (the resource-seconds sum).
    makespan_seconds: float = 0.0
    #: per-fragment actuals of a parallel execution (empty when serial).
    fragments: List[FragmentActuals] = field(default_factory=list)
    #: execution backend that produced these metrics ("simulated" — the
    #: deterministic in-process scheduler — or "process").
    backend: str = "simulated"
    #: real wall-clock seconds of the whole execution on a measuring
    #: backend (dispatch, IPC and the serial tail included); 0.0 on
    #: purely simulated runs.  Lives *next to* the simulated charges —
    #: it never feeds ``total_seconds``/``wall_seconds``, which stay
    #: deterministic model outputs.
    measured_wall_seconds: float = 0.0
    #: top-N cProfile function stats of this execution (opt-in via
    #: ``ExecutionOptions.profile``; see ``repro.observe.profiling``).
    #: For parallel runs the per-fragment stats live on
    #: ``fragments[i].profile`` instead and this stays empty.
    profile: List[dict] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds

    @property
    def wall_seconds(self) -> float:
        """Simulated wall clock: makespan when scheduled, else the
        serial total."""
        return self.makespan_seconds if self.makespan_seconds > 0.0 else self.total_seconds

    @property
    def parallel_speedup(self) -> float:
        """Resource-seconds over wall-seconds: how much the schedule
        overlapped (1.0 for a serial run)."""
        wall = self.wall_seconds
        return self.total_seconds / wall if wall > 0.0 else 1.0

    @property
    def peak_memory_bytes(self) -> float:
        return self.memory.peak_bytes

    def charge_io(self, num_bytes: float, num_accesses: int, seconds: float) -> None:
        self.io_bytes += num_bytes
        self.io_accesses += num_accesses
        self.io_seconds += seconds

    def charge_cpu(self, seconds: float, counter: str | None = None) -> None:
        self.cpu_seconds += seconds
        if counter:
            self.counters[counter] = self.counters.get(counter, 0.0) + seconds

    def note(self, message: str) -> None:
        self.notes.append(message)

    def bump(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def actuals_for(self, op) -> Optional[OperatorActuals]:
        """The recorded actuals of one physical operator, if it ran."""
        return self.operators.get(id(op))
