"""Vectorised execution engine: relations, expressions, kernels, metrics."""

from .aggregate import AggSpec, apply_aggregate, distinct_per_partition, group_rows
from .cost import DEFAULT_COSTS, CostModel
from .expressions import (
    And,
    Arith,
    Between,
    Case,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    Like,
    Not,
    Or,
    Substring,
    Year,
    col,
    days,
    lit,
    year,
)
from .join_utils import encode_join_keys, inner_join_pairs, left_join_pairs, semi_join_mask
from .metrics import ExecutionMetrics, MemoryReservation, MemoryTracker
from .relation import Relation, StreamUse, row_bytes_of

__all__ = [
    "AggSpec",
    "apply_aggregate",
    "distinct_per_partition",
    "group_rows",
    "DEFAULT_COSTS",
    "CostModel",
    "And",
    "Arith",
    "Between",
    "Case",
    "Cmp",
    "Col",
    "Const",
    "Expr",
    "InList",
    "Like",
    "Not",
    "Or",
    "Substring",
    "Year",
    "col",
    "days",
    "lit",
    "year",
    "encode_join_keys",
    "inner_join_pairs",
    "left_join_pairs",
    "semi_join_mask",
    "ExecutionMetrics",
    "MemoryReservation",
    "MemoryTracker",
    "Relation",
    "StreamUse",
    "row_bytes_of",
]
