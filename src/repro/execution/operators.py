"""Physical operators: the executable form of a lowered query plan.

Each operator is one node of a *physical plan* as emitted by
:mod:`repro.planner.lowering`: the strategy decisions (merge vs sandwich
vs hash join, streaming vs sandwich vs hash aggregation, scan pruning)
are already resolved and recorded on the nodes — running a plan never
re-plans.  Operators are composable batch transformers over
:class:`~repro.execution.relation.Relation`; ``run`` recurses through
``children`` and charges simulated IO/CPU/memory to the
:class:`ExecutionContext`.

The split matters for two reasons:

* EXPLAIN can render a physical plan — with its per-operator strategy
  rationale — without executing anything;
* the same lowered plan can be run repeatedly (plan caching) and each
  operator is a natural unit for per-operator metrics and, later,
  parallel execution.

Results are identical under every scheme and every strategy: the
operators share the logical kernels in :mod:`repro.execution.join_utils`
and :mod:`repro.execution.aggregate`; strategies differ in cost and
memory accounting, exactly as in the paper's evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.bits import gather_use_bits
from ..storage.io_model import DiskModel
from ..storage.stored_table import StoredTable
from .aggregate import (
    AggSpec,
    MergeSpec,
    apply_aggregate,
    distinct_per_partition,
    group_rows,
    merge_partial_aggregates,
)
from .cost import CostModel
from .expressions import Col, Expr
from .join_utils import (
    encode_join_keys,
    inner_join_pairs,
    left_join_pairs,
    semi_join_mask,
)
from .metrics import ExecutionMetrics, OperatorActuals
from .relation import Relation, StreamUse

__all__ = [
    "ExecutionContext",
    "PhysicalOp",
    "PhysicalScan",
    "DeltaMergeScan",
    "PhysicalFilter",
    "PhysicalProject",
    "MergeJoin",
    "HashJoin",
    "SandwichJoin",
    "HashAgg",
    "StreamAgg",
    "SandwichAgg",
    "PartialAgg",
    "MergeAgg",
    "Sort",
    "Limit",
    "walk_physical",
]

_HASH_ENTRY_OVERHEAD = 16.0   # bytes per hash-table entry
_AGG_STATE_BYTES = 8.0        # bytes per aggregate per group
_GROUP_HEADER_BYTES = 32.0    # per-group bookkeeping of sandwiched operators


class _OpFrame:
    """Open attribution window of one operator invocation: snapshots of
    the shared metrics at entry, plus the inclusive consumption of the
    operator's children (subtracted out on exit, so per-operator actuals
    are exclusive and sum to the query totals)."""

    __slots__ = (
        "op", "io_bytes", "io_accesses", "io_seconds", "cpu_seconds",
        "rows_scanned", "held_bytes",
        "child_rows", "child_io_bytes", "child_io_accesses",
        "child_io_seconds", "child_cpu_seconds",
    )

    def __init__(self, op: "PhysicalOp", metrics: ExecutionMetrics):
        self.op = op
        self.io_bytes = metrics.io_bytes
        self.io_accesses = metrics.io_accesses
        self.io_seconds = metrics.io_seconds
        self.cpu_seconds = metrics.cpu_seconds
        self.rows_scanned = metrics.rows_scanned
        self.held_bytes = 0.0
        self.child_rows = 0
        self.child_io_bytes = 0.0
        self.child_io_accesses = 0
        self.child_io_seconds = 0.0
        self.child_cpu_seconds = 0.0


class ExecutionContext:
    """Shared runtime state of one plan execution: the simulated device,
    the CPU cost model and the metrics being accumulated.

    Memory reservations for blocking state (hash builds, aggregation
    tables, sort buffers) are held until the end of the query,
    approximating the concurrent footprint of a pipelined engine; the
    peak is the paper's Figure 3 quantity.

    The context also maintains the operator frame stack through which
    every charge is attributed to the operator that incurred it — the
    per-operator actuals surfaced by ``EXPLAIN ANALYZE`` and the
    workload differential report."""

    def __init__(
        self,
        disk: DiskModel,
        costs: CostModel,
        metrics: ExecutionMetrics,
        fragment_results: Optional[Dict[int, Relation]] = None,
    ):
        self.disk = disk
        self.costs = costs
        self.metrics = metrics
        #: producer-fragment outputs visible to Exchange/Repartition
        #: leaves when this context runs one fragment of a parallel plan.
        self.fragment_results = fragment_results
        self._live_reservations: List = []
        self._frames: List[_OpFrame] = []

    def fragment_result(self, index: int) -> Relation:
        """The output of a producer fragment (parallel execution only)."""
        if self.fragment_results is None or index not in self.fragment_results:
            raise RuntimeError(
                f"fragment {index} result not available: exchange operators "
                "only run under the parallel scheduler"
            )
        return self.fragment_results[index]

    def hold(self, tag: str, num_bytes: float) -> None:
        if num_bytes > 0:
            self._live_reservations.append(self.metrics.memory.allocate(tag, num_bytes))
            if self._frames:
                self._frames[-1].held_bytes += float(num_bytes)

    def release_all(self) -> None:
        for reservation in self._live_reservations:
            reservation.release()
        self._live_reservations = []

    # ----------------------------------------------- operator attribution
    def enter_operator(self, op: "PhysicalOp") -> _OpFrame:
        frame = _OpFrame(op, self.metrics)
        self._frames.append(frame)
        return frame

    def exit_operator(self, frame: _OpFrame, output: Relation) -> None:
        metrics = self.metrics
        popped = self._frames.pop()
        assert popped is frame, "operator frames must nest"
        inclusive_io_bytes = metrics.io_bytes - frame.io_bytes
        inclusive_io_accesses = metrics.io_accesses - frame.io_accesses
        inclusive_io_seconds = metrics.io_seconds - frame.io_seconds
        inclusive_cpu_seconds = metrics.cpu_seconds - frame.cpu_seconds
        rows_out = output.num_rows
        if frame.op.children():
            rows_in = frame.child_rows
        else:  # leaves read the store: rows in = rows scanned
            rows_in = metrics.rows_scanned - frame.rows_scanned
        metrics.operators[id(frame.op)] = OperatorActuals(
            kind=frame.op.kind,
            description=frame.op.describe(),
            rows_in=rows_in,
            rows_out=rows_out,
            io_bytes=inclusive_io_bytes - frame.child_io_bytes,
            io_accesses=inclusive_io_accesses - frame.child_io_accesses,
            io_seconds=inclusive_io_seconds - frame.child_io_seconds,
            cpu_seconds=inclusive_cpu_seconds - frame.child_cpu_seconds,
            reserved_bytes=frame.held_bytes,
        )
        if self._frames:
            parent = self._frames[-1]
            parent.child_rows += rows_out
            parent.child_io_bytes += inclusive_io_bytes
            parent.child_io_accesses += inclusive_io_accesses
            parent.child_io_seconds += inclusive_io_seconds
            parent.child_cpu_seconds += inclusive_cpu_seconds


@dataclass(eq=False)
class PhysicalOp:
    """Base class for physical plan nodes.

    Besides execution, every class declares its *result contract* toward
    row order (consumed by :func:`repro.planner.propagation.compute_order_contracts`
    and the fragmenting pass):

    * ``ordered_inputs`` names the child attributes whose input must
      arrive in the exact serial order for this operator to be correct
      or deterministic (a :class:`MergeJoin`'s two sides, a
      :class:`StreamAgg`'s input, a :class:`Limit`'s prefix).  A
      reordering gather may never be introduced below such a child.
    * ``restores_order`` marks operators that re-establish a
      deterministic row order of their own (:class:`Sort`): a reordering
      below them cannot escape past them, except through tie-breaks,
      which resolve deterministically by the gather's canonical order.
    """

    kind = "Op"
    #: child attribute names that require serially-ordered input
    #: (plain class attribute, not a dataclass field).
    ordered_inputs = ()
    #: True when the operator re-sorts, containing reorderings below it.
    restores_order = False

    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def run(self, ctx: ExecutionContext) -> Relation:
        """Execute this operator (recursing through ``children``) and
        record its per-operator actuals on the context's metrics."""
        frame = ctx.enter_operator(self)
        rel = self.execute(ctx)
        ctx.exit_operator(frame, rel)
        return rel

    def execute(self, ctx: ExecutionContext) -> Relation:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line structural description (no rationale)."""
        return self.kind


def walk_physical(op: PhysicalOp):
    """Yield every operator of a physical plan, pre-order."""
    yield op
    for child in op.children():
        yield from walk_physical(child)


# ------------------------------------------------------------------ scan
@dataclass(eq=False)
class PhysicalScan(PhysicalOp):
    """A table scan with all access-path decisions resolved at lowering:
    the physical copy to read (replica selection), the demanded columns,
    the count-table restrictions (pushdown + propagation), the zone-map
    ranges that prune — with the resulting row selection already
    materialised — and the BDCC uses to carry as hidden group columns
    for downstream sandwich operators."""

    table: str
    alias: str
    prefix: str
    stored: StoredTable
    demanded: Tuple[str, ...]
    predicate: Optional[Expr] = None
    #: (use_index, allowed_bins, bin_bits) count-table restrictions.
    restrictions: Tuple[Tuple[int, np.ndarray, int], ...] = ()
    #: (base_column, low, high) ranges whose zone maps prune blocks.
    minmax_ranges: Tuple[Tuple[str, float, float], ...] = ()
    #: rows selected by restrictions+minmax (None = full scan), resolved
    #: once at lowering from metadata and reused on every run.
    selected_rows: Optional[np.ndarray] = None
    selection_notes: Tuple[str, ...] = ()
    #: (use_index, effective_bits, hidden_column) BDCC uses to surface.
    sandwich_uses: Tuple[Tuple[int, int, str], ...] = ()
    sorted_on: Tuple[str, ...] = ()
    est_rows: float = 0.0
    rationale: str = ""
    replica_note: str = ""

    kind = "Scan"

    def describe(self) -> str:
        alias = "" if self.alias == self.table else f" as {self.alias}"
        pred = " WHERE ..." if self.predicate is not None else ""
        return f"{self.kind} {self.table}{alias}{pred}"

    # ------------------------------------------------------- base reading
    def _read_base(self, ctx: ExecutionContext, want_keys: bool = False):
        """Charge and materialise the base storage's selected rows.

        Returns ``(columns, keys, num_selected)`` where ``columns`` maps
        prefixed demanded names to gathered arrays and ``keys`` holds the
        selected rows' ``_bdcc_`` keys — gathered only when the sandwich
        uses need them or the caller asks (``want_keys``; the
        delta-merging subclass merges on them), None otherwise.  Shared
        between the plain scan and the delta-merging subclass.
        """
        stored = self.stored
        demanded = list(self.demanded)
        n = stored.stored_rows
        bdcc = stored.bdcc
        rows = self.selected_rows

        # --- IO ----------------------------------------------------------
        if rows is None:
            runs = stored.full_scan_runs()
            num_selected = n
        else:
            runs = _rows_to_runs(rows)
            num_selected = len(rows)
        run_bytes = stored.io_run_bytes(runs, demanded)
        if bdcc is not None:
            # the stored _bdcc_ column (needed for group ids) compresses
            # to ~1 byte/tuple: the table is sorted on it, so RLE applies;
            # plus the count table itself
            for _, length in runs:
                run_bytes.append(length * 1.0)
            run_bytes.append(bdcc.count_table.num_entries * 8.0)
        io_seconds = ctx.disk.time_for_runs(run_bytes)
        ctx.metrics.charge_io(float(sum(run_bytes)), len(run_bytes), io_seconds)
        ctx.metrics.rows_scanned += num_selected

        # --- materialise -------------------------------------------------
        prefix = self.prefix
        if rows is None:
            columns = {prefix + c: stored.columns[c] for c in demanded}
        else:
            columns = {prefix + c: stored.columns[c][rows] for c in demanded}
        ctx.metrics.charge_cpu(
            num_selected * len(demanded) * ctx.costs.scan_value, "scan"
        )
        keys = None
        if bdcc is not None and (want_keys or self.sandwich_uses):
            keys = bdcc.keys if rows is None else bdcc.keys[rows]
        return columns, keys, num_selected

    def _finish(self, ctx: ExecutionContext, columns, keys, num_selected, note_bits):
        """Surface hidden group columns, assemble the relation, apply the
        residual predicate."""
        bdcc = self.stored.bdcc
        owners = {name: self.alias for name in columns}
        uses: List[StreamUse] = []
        if self.sandwich_uses:
            for use_index, eff_bits, column_name in self.sandwich_uses:
                use = bdcc.uses[use_index]
                # top eff_bits positions of the full mask == the use's
                # bits that survive at count-table granularity
                columns[column_name] = gather_use_bits(keys, use.mask, eff_bits)
                uses.append(
                    StreamUse(self.alias, use.dimension, use.path, eff_bits, column_name)
                )
            ctx.metrics.charge_cpu(
                num_selected * ctx.costs.sandwich_row_overhead * max(len(uses), 1),
                "scan",
            )
        rel = Relation(
            columns=columns,
            sorted_on=self.sorted_on,
            uses=uses,
            owners=owners,
        )
        if note_bits:
            ctx.metrics.note(f"scan {self.alias}: " + ", ".join(note_bits))

        # --- residual predicate ------------------------------------------
        if self.predicate is not None:
            mask = np.asarray(self.predicate.eval(rel), dtype=bool)
            ctx.metrics.charge_cpu(
                rel.num_rows * max(len(self.predicate.columns()), 1) * ctx.costs.expr_value,
                "filter",
            )
            rel = rel.filter(mask)
        return rel

    def execute(self, ctx: ExecutionContext) -> Relation:
        if self.replica_note:
            ctx.metrics.note(self.replica_note)
        columns, keys, num_selected = self._read_base(ctx)
        return self._finish(
            ctx, columns, keys, num_selected, list(self.selection_notes)
        )


@dataclass(eq=False)
class DeltaMergeScan(PhysicalScan):
    """Merge-on-read scan: the base scan unioned with the table's live
    delta runs through an order-preserving merge.

    The lowering resolves, per delta run, which rows survive the same
    count-table restrictions and zone-map ranges the base selection went
    through (superset semantics — the residual predicate still runs), so
    pushdown keeps pruning deltas zone-wise.  The merged stream restores
    the scheme's storage order — ``_bdcc_``-key order (stable: base rows
    before delta rows, runs in commit order) on BDCC, primary-key order
    on PK, arrival order on Plain — so every stream property the planner
    guaranteed (``sorted_on``, carried dimension uses) holds with deltas
    present and merge/sandwich strategies keep firing.
    """

    #: (run_index, selected positions within the run), resolved at
    #: lowering from the delta store's keys/zone maps.
    delta_selected: Tuple[Tuple[int, np.ndarray], ...] = ()

    kind = "DeltaMergeScan"

    def _delta_rows_selected(self) -> int:
        return int(sum(len(sel) for _, sel in self.delta_selected))

    def execute(self, ctx: ExecutionContext) -> Relation:
        if self.replica_note:
            ctx.metrics.note(self.replica_note)
        stored = self.stored
        bdcc = stored.bdcc
        demanded = list(self.demanded)
        prefix = self.prefix
        columns, keys, base_n = self._read_base(ctx, want_keys=True)

        # merge keys may need columns beyond the demanded set (a PK scan
        # does not have to materialise its sort columns to be ordered,
        # but merging deltas into that order does need the values read)
        merge_cols = [
            c for c in stored.sort_columns if bdcc is None and prefix + c not in columns
        ]
        base_rows = self.selected_rows
        merge_values: Dict[str, List[np.ndarray]] = {
            c: [stored.columns[c] if base_rows is None else stored.columns[c][base_rows]]
            for c in merge_cols
        }
        if merge_cols:
            extra_bytes = [
                base_n * stored.stored_bytes_per_value(c) for c in merge_cols
            ]
            ctx.metrics.charge_io(
                float(sum(extra_bytes)), len(extra_bytes),
                ctx.disk.time_for_runs(extra_bytes),
            )
            ctx.metrics.charge_cpu(
                base_n * len(merge_cols) * ctx.costs.scan_value, "scan"
            )

        # --- read the delta runs ----------------------------------------
        pieces: Dict[str, List[np.ndarray]] = {name: [arr] for name, arr in columns.items()}
        key_pieces = [keys] if keys is not None else None
        delta_n = 0
        delta = stored.delta
        for run_index, sel in self.delta_selected:
            run = delta.runs[run_index]
            if len(sel) == 0:
                continue
            delta_n += len(sel)
            run_bytes = [
                len(sel) * stored.stored_bytes_per_value(c)
                for c in demanded + merge_cols
            ]
            if bdcc is not None:
                run_bytes.append(float(len(sel)))  # the run's key column
            ctx.metrics.charge_io(
                float(sum(run_bytes)), len(run_bytes),
                ctx.disk.time_for_runs(run_bytes),
            )
            ctx.metrics.charge_cpu(
                len(sel) * (len(demanded) + len(merge_cols)) * ctx.costs.scan_value,
                "scan",
            )
            for c in demanded:
                pieces[prefix + c].append(run.columns[c][sel])
            for c in merge_cols:
                merge_values[c].append(run.columns[c][sel])
            if key_pieces is not None:
                key_pieces.append(run.keys[sel])
        ctx.metrics.rows_scanned += delta_n
        ctx.metrics.delta_rows_scanned += delta_n
        total = base_n + delta_n

        # --- order-preserving merge --------------------------------------
        if delta_n == 0:
            merged = columns
            merged_keys = keys
        else:
            if bdcc is not None:
                all_keys = np.concatenate(key_pieces)
                order = np.argsort(all_keys, kind="stable")
                merged_keys = all_keys[order]
            elif stored.sort_columns:
                sort_arrays = []
                for c in stored.sort_columns:
                    name = prefix + c
                    if name in pieces:
                        sort_arrays.append(np.concatenate(pieces[name]))
                    else:
                        sort_arrays.append(np.concatenate(merge_values[c]))
                # lexsort is stable: equal keys keep base-then-commit order
                order = np.lexsort(tuple(reversed(sort_arrays)))
                merged_keys = None
            else:
                order = None  # arrival order: base first, runs in commit order
                merged_keys = None
            if order is None:
                merged = {name: np.concatenate(arrs) for name, arrs in pieces.items()}
            else:
                merged = {
                    name: np.concatenate(arrs)[order] for name, arrs in pieces.items()
                }
            ctx.metrics.charge_cpu(total * ctx.costs.merge_row, "scan")

        note_bits = list(self.selection_notes)
        note_bits.append(
            f"delta merge {delta_n} rows from "
            f"{sum(1 for _, s in self.delta_selected if len(s))} runs"
        )
        return self._finish(ctx, merged, merged_keys, total, note_bits)


# ---------------------------------------------------------------- filter
@dataclass(eq=False)
class PhysicalFilter(PhysicalOp):
    input: PhysicalOp
    predicate: Expr
    rationale: str = ""

    kind = "Filter"

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        mask = np.asarray(self.predicate.eval(rel), dtype=bool)
        ctx.metrics.charge_cpu(
            rel.num_rows * max(len(self.predicate.columns()), 1) * ctx.costs.expr_value,
            "filter",
        )
        return rel.filter(mask)


# --------------------------------------------------------------- project
@dataclass(eq=False)
class PhysicalProject(PhysicalOp):
    input: PhysicalOp
    exprs: Tuple[Tuple[str, Expr], ...]
    rationale: str = ""

    kind = "Project"

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def describe(self) -> str:
        return f"Project [{', '.join(name for name, _ in self.exprs)}]"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        columns: Dict[str, np.ndarray] = {}
        owners: Dict[str, str] = {}
        valid: Dict[str, np.ndarray] = {}
        expr_cost = 0.0
        for name, expr in self.exprs:
            columns[name] = np.asarray(expr.eval(rel))
            if not isinstance(expr, Col):
                expr_cost += rel.num_rows * ctx.costs.expr_value
            if isinstance(expr, Col):
                if expr.name in rel.owners:
                    owners[name] = rel.owners[expr.name]
                if expr.name in rel.valid:
                    valid[name] = rel.valid[expr.name]
        ctx.metrics.charge_cpu(expr_cost, "project")
        live_uses = [u for u in rel.uses if u.column in rel.columns]
        for use in live_uses:
            columns[use.column] = rel.columns[use.column]
        sorted_on = rel.sorted_on if all(c in columns for c in rel.sorted_on) else ()
        return Relation(
            columns=columns, valid=valid, sorted_on=sorted_on, uses=live_uses, owners=owners
        )


# ----------------------------------------------------------------- joins
@dataclass(eq=False)
class _JoinOp(PhysicalOp):
    left: PhysicalOp
    right: PhysicalOp
    left_cols: Tuple[str, ...]
    right_cols: Tuple[str, ...]
    how: str = "inner"
    residual: Optional[Expr] = None
    rationale: str = ""

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        on = ", ".join(f"{l}={r}" for l, r in zip(self.left_cols, self.right_cols))
        extra = " + residual" if self.residual is not None else ""
        return f"{self.kind} {self.how} ON {on}{extra}"

    def _join_keys(self, left: Relation, right: Relation):
        return encode_join_keys(
            [left.column(c) for c in self.left_cols],
            [right.column(c) for c in self.right_cols],
        )


@dataclass(eq=False)
class MergeJoin(_JoinOp):
    """Both inputs arrive ordered on the join keys (the PK scheme's
    LINEITEM/ORDERS and PART/PARTSUPP cases); state-free."""

    kind = "MergeJoin"
    ordered_inputs = ("left", "right")

    def execute(self, ctx: ExecutionContext) -> Relation:
        left = self.left.run(ctx)
        right = self.right.run(ctx)
        lkeys, rkeys = self._join_keys(left, right)
        ctx.metrics.note(
            f"merge join on {self.left_cols} ({self.how}, "
            f"{left.num_rows}x{right.num_rows})"
        )
        ctx.metrics.charge_cpu(
            (left.num_rows + right.num_rows) * ctx.costs.merge_row, "join"
        )
        if self.how in ("semi", "anti"):
            matched = semi_join_mask(lkeys, rkeys)
            keep = matched if self.how == "semi" else ~matched
            ctx.metrics.charge_cpu(int(keep.sum()) * ctx.costs.join_output_row, "join")
            return left.filter(keep)
        lidx, ridx = inner_join_pairs(lkeys, rkeys)
        ctx.metrics.charge_cpu(len(lidx) * ctx.costs.join_output_row, "join")
        return _assemble_inner(left, right, lidx, ridx, order_from="left")


@dataclass(eq=False)
class HashJoin(_JoinOp):
    """Plain hash join; the build side was fixed at lowering (a pipelined
    engine builds on the smaller input and streams the larger one, which
    is also what preserves the probe side's physical order)."""

    build_side: str = "right"  # "left" | "right"

    kind = "HashJoin"

    # -- accounting hooks overridden by SandwichJoin ----------------------
    def _state(self, ctx, left, right, build_rel, build_bytes) -> Tuple[float, int]:
        ctx.metrics.note(
            f"hash join on {self.left_cols} ({self.how}), build "
            f"{build_rel.num_rows} rows / {build_bytes/1e6:.2f} MB"
        )
        return build_bytes, 1

    def _extra_charges(self, ctx, left, right, num_groups) -> float:
        return 0.0

    def execute(self, ctx: ExecutionContext) -> Relation:
        left = self.left.run(ctx)
        right = self.right.run(ctx)
        lkeys, rkeys = self._join_keys(left, right)
        costs = ctx.costs
        how = self.how
        build_is_left = self.build_side == "left"
        build_rel = left if build_is_left else right
        probe_rel = right if build_is_left else left
        if how in ("semi", "anti"):
            build_bytes = build_rel.row_bytes(list(self.right_cols)) * build_rel.num_rows
        else:
            build_bytes = build_rel.data_bytes()
        build_bytes += _HASH_ENTRY_OVERHEAD * build_rel.num_rows

        state_bytes, num_groups = self._state(ctx, left, right, build_rel, build_bytes)
        ctx.hold(f"join:{self.left_cols}", state_bytes + num_groups * _GROUP_HEADER_BYTES)
        factor = costs.cache_factor(state_bytes)
        cpu = (
            build_rel.num_rows * costs.hash_build_row * factor
            + probe_rel.num_rows * costs.hash_probe_row * factor
        )
        cpu += self._extra_charges(ctx, left, right, num_groups)
        ctx.metrics.charge_cpu(cpu, "join")

        # ---- execute ----------------------------------------------------
        if how == "inner":
            # output follows the probe side's order, as a pipelined hash
            # join does — this is what lets a later merge join see the
            # PK scheme's key order through an earlier N:1 join
            if build_is_left:
                ridx, lidx = inner_join_pairs(rkeys, lkeys)
                order_from = "right"
            else:
                lidx, ridx = inner_join_pairs(lkeys, rkeys)
                order_from = "left"
            if self.residual is not None:
                joined = _assemble_inner(left, right, lidx, ridx, order_from)
                mask = np.asarray(self.residual.eval(joined), dtype=bool)
                ctx.metrics.charge_cpu(len(lidx) * costs.expr_value, "join")
                joined = joined.filter(mask)
                ctx.metrics.charge_cpu(joined.num_rows * costs.join_output_row, "join")
                return joined
            ctx.metrics.charge_cpu(len(lidx) * costs.join_output_row, "join")
            return _assemble_inner(left, right, lidx, ridx, order_from)
        if how == "left":
            lidx, ridx = left_join_pairs(lkeys, rkeys)
            ctx.metrics.charge_cpu(len(lidx) * costs.join_output_row, "join")
            return _assemble_left(left, right, lidx, ridx)
        if how in ("semi", "anti"):
            if self.residual is not None:
                lidx, ridx = inner_join_pairs(lkeys, rkeys)
                joined_cols = dict(left.take(lidx).columns)
                for name, arr in right.take(ridx).columns.items():
                    joined_cols.setdefault(name, arr)
                mask_pairs = np.asarray(self.residual.eval(joined_cols), dtype=bool)
                ctx.metrics.charge_cpu(len(lidx) * costs.expr_value, "join")
                matched = np.zeros(left.num_rows, dtype=bool)
                matched[lidx[mask_pairs]] = True
            else:
                matched = semi_join_mask(lkeys, rkeys)
            keep = matched if how == "semi" else ~matched
            ctx.metrics.charge_cpu(int(keep.sum()) * costs.join_output_row, "join")
            return left.filter(keep)
        raise AssertionError(how)


@dataclass(eq=False)
class SandwichJoin(HashJoin):
    """Hash join over co-clustered inputs: per-group hash tables sized by
    the largest group rather than the full build side [3].  ``pairs``
    holds the matched dimension uses with the group bits granted to each
    at lowering (capped by ``max_sandwich_bits``)."""

    #: (left_use, right_use, granted_bits) per co-clustered dimension.
    pairs: Tuple[Tuple[StreamUse, StreamUse, int], ...] = ()

    kind = "SandwichJoin"

    def _state(self, ctx, left, right, build_rel, build_bytes) -> Tuple[float, int]:
        """Per-group peak state and group count of the sandwiched build."""
        build_is_left = self.build_side == "left"
        build_gid = np.zeros(build_rel.num_rows, dtype=np.uint64)
        total_bits = 0
        for left_use, right_use, g in self.pairs:
            if g <= 0:
                continue
            total_bits += g
            use = left_use if build_is_left else right_use
            rel = left if build_is_left else right
            vals = rel.columns[use.column] >> np.uint64(use.bits - g)
            build_gid = (build_gid << np.uint64(g)) | vals
        if total_bits == 0 or len(build_gid) == 0:
            return build_bytes, 1
        _, counts = np.unique(build_gid, return_counts=True)
        build_rows = max(len(build_gid), 1)
        per_row = build_bytes / build_rows
        state_bytes = float(counts.max()) * per_row
        num_groups = len(counts)
        ctx.metrics.note(
            f"sandwich join on {self.left_cols} via "
            + "+".join(p[0].dimension.name for p in self.pairs)
            + f" @{total_bits} bits: {num_groups} groups, "
            f"max group {state_bytes/1e6:.3f} MB (full build {build_bytes/1e6:.2f} MB)"
        )
        ctx.metrics.bump("sandwich_joins")
        return state_bytes, num_groups

    def _extra_charges(self, ctx, left, right, num_groups) -> float:
        # scatter-order delivery of both inputs: one random access per
        # group run instead of a straight sequential pass
        ctx.metrics.charge_io(0.0, 2 * num_groups, 2 * num_groups * ctx.disk.access_latency)
        return (
            num_groups * ctx.costs.sandwich_group_overhead
            + (left.num_rows + right.num_rows) * ctx.costs.sandwich_row_overhead
        )


# ----------------------------------------------------- join assembly
def _assemble_inner(left, right, lidx, ridx, order_from: str) -> Relation:
    lpart = left.take(lidx, keep_sorted=order_from == "left")
    rpart = right.take(ridx, keep_sorted=order_from == "right")
    columns = dict(lpart.columns)
    valid = dict(lpart.valid)
    for name, arr in rpart.columns.items():
        if name not in columns:
            columns[name] = arr
    for name, mask in rpart.valid.items():
        if name not in valid:
            valid[name] = mask
    owners = dict(left.owners)
    owners.update(right.owners)
    uses = list(lpart.uses) + [u for u in rpart.uses if u.column in columns]
    return Relation(
        columns=columns,
        valid=valid,
        sorted_on=lpart.sorted_on if order_from == "left" else rpart.sorted_on,
        uses=uses,
        owners=owners,
    )


def _assemble_left(left, right, lidx, ridx) -> Relation:
    matched = ridx >= 0
    safe_ridx = np.where(matched, ridx, 0)
    lpart = left.take(lidx, keep_sorted=True)
    if right.num_rows == 0:
        # nothing to gather: null-extend with typed placeholders
        rpart = Relation(
            columns={
                name: np.zeros(len(lidx), dtype=arr.dtype)
                for name, arr in right.columns.items()
            },
            owners=dict(right.owners),
        )
    else:
        rpart = right.take(safe_ridx)
    columns = dict(lpart.columns)
    valid = dict(lpart.valid)
    for name, arr in rpart.columns.items():
        if name not in columns:
            columns[name] = arr
            prior = rpart.valid.get(name)
            valid[name] = matched if prior is None else (matched & prior)
    owners = dict(left.owners)
    owners.update(right.owners)
    # right-side uses are not valid on unmatched rows; drop them
    uses = list(lpart.uses)
    return Relation(
        columns=columns, valid=valid, sorted_on=lpart.sorted_on, uses=uses, owners=owners
    )


# ----------------------------------------------------------- aggregation
@dataclass(eq=False)
class _AggOp(PhysicalOp):
    input: PhysicalOp
    keys: Tuple[str, ...] = ()
    aggs: Tuple[AggSpec, ...] = ()
    rationale: str = ""
    #: lowering's cardinality estimates, recorded for the fragmenter's
    #: partial-aggregation cost rule (group count vs input rows); 0.0
    #: when the operator was built outside the lowering pass.
    est_groups: float = 0.0
    est_input_rows: float = 0.0

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def describe(self) -> str:
        aggs = ", ".join(f"{s.name}={s.fn}" for s in self.aggs)
        keys = ", ".join(self.keys) if self.keys else "<scalar>"
        return f"{self.kind} [{keys}] -> {aggs}"

    # ---------------------------------------------------- shared plumbing
    def _group(self, rel: Relation):
        n = rel.num_rows
        if self.keys:
            key_arrays = [rel.column(k) for k in self.keys]
            if n:
                return group_rows(key_arrays)
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
        group_index = np.zeros(n, dtype=np.int64)
        first_rows = np.zeros(1 if n else 0, dtype=np.int64)
        return group_index, first_rows, 1 if n else 0

    def _state_row(self, rel: Relation) -> float:
        return (
            (rel.row_bytes(list(self.keys)) if self.keys else 0.0)
            + len(self.aggs) * _AGG_STATE_BYTES
            + _HASH_ENTRY_OVERHEAD
        )

    def _account(self, ctx, rel, group_index, num_groups, state_row) -> List[StreamUse]:
        """Strategy-specific cost/memory accounting; returns the stream
        uses the output carries."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        n = rel.num_rows
        group_index, first_rows, num_groups = self._group(rel)
        state_row = self._state_row(rel)
        out_uses = self._account(ctx, rel, group_index, num_groups, state_row)

        # ---- execute (strategy-independent kernels) ---------------------
        columns: Dict[str, np.ndarray] = {}
        owners: Dict[str, str] = {}
        for key in self.keys:
            columns[key] = rel.column(key)[first_rows]
            if key in rel.owners:
                owners[key] = rel.owners[key]
        for spec in self.aggs:
            values = None
            valid = None
            if spec.expr is not None:
                values = np.asarray(spec.expr.eval(rel))
                if isinstance(spec.expr, Col):
                    valid = rel.valid.get(spec.expr.name)
                ctx.metrics.charge_cpu(n * ctx.costs.expr_value, "aggregate")
            elif spec.fn == "count":
                pass
            if num_groups == 0:
                columns[spec.name] = np.zeros(0)
                continue
            columns[spec.name] = apply_aggregate(spec, group_index, num_groups, values, valid)

        for use in out_uses:
            columns[use.column] = rel.columns[use.column][first_rows]
        return Relation(
            columns=columns,
            sorted_on=tuple(self.keys),
            uses=list(out_uses),
            owners=owners,
        )


@dataclass(eq=False)
class HashAgg(_AggOp):
    kind = "HashAgg"

    def _account(self, ctx, rel, group_index, num_groups, state_row) -> List[StreamUse]:
        total_state = num_groups * state_row
        ctx.hold("agg:hash", total_state)
        factor = ctx.costs.cache_factor(total_state)
        ctx.metrics.charge_cpu(rel.num_rows * ctx.costs.agg_update_row * factor, "aggregate")
        if self.keys:
            ctx.metrics.note(
                f"hash aggregation on {self.keys}: {num_groups} groups, "
                f"{total_state/1e6:.2f} MB"
            )
        return []


@dataclass(eq=False)
class StreamAgg(_AggOp):
    """The input arrives ordered on (a functional determinant of) the
    grouping keys: one live group at a time."""

    kind = "StreamAgg"
    ordered_inputs = ("input",)

    def _account(self, ctx, rel, group_index, num_groups, state_row) -> List[StreamUse]:
        ctx.metrics.note(f"streaming aggregation on {self.keys}")
        ctx.metrics.charge_cpu(rel.num_rows * ctx.costs.stream_agg_row, "aggregate")
        ctx.hold("agg:stream", state_row)  # one live group
        return []


@dataclass(eq=False)
class SandwichAgg(_AggOp):
    """The grouping keys functionally determine carried dimension uses
    (the paper's Q13/Q18 effect): the aggregation pre-partitions along
    those groups and holds only the largest partition's table."""

    #: (use, granted_bits) per carried dimension, capped at lowering.
    partition_uses: Tuple[Tuple[StreamUse, int], ...] = ()

    kind = "SandwichAgg"

    def _account(self, ctx, rel, group_index, num_groups, state_row) -> List[StreamUse]:
        n = rel.num_rows
        pid = np.zeros(n, dtype=np.uint64)
        total_bits = 0
        for use, g in self.partition_uses:
            if g <= 0:
                continue
            pid = (pid << np.uint64(g)) | (rel.columns[use.column] >> np.uint64(use.bits - g))
            total_bits += g
        per_part = distinct_per_partition(pid, group_index)
        max_state = float(per_part.max()) * state_row if len(per_part) else 0.0
        num_partitions = len(per_part)
        ctx.hold("agg:sandwich", max_state + num_partitions * _GROUP_HEADER_BYTES)
        factor = ctx.costs.cache_factor(max_state)
        ctx.metrics.charge_cpu(
            n * ctx.costs.agg_update_row * factor
            + num_partitions * ctx.costs.sandwich_group_overhead
            + n * ctx.costs.sandwich_row_overhead,
            "aggregate",
        )
        ctx.metrics.charge_io(0.0, num_partitions, num_partitions * ctx.disk.access_latency)
        ctx.metrics.note(
            f"sandwich aggregation on {self.keys} via "
            + "+".join(u.dimension.name for u, _ in self.partition_uses)
            + f": {num_partitions} partitions, max state "
            f"{max_state/1e6:.3f} MB (full {num_groups * state_row/1e6:.2f} MB)"
        )
        ctx.metrics.bump("sandwich_aggs")
        return [use for use, _ in self.partition_uses]


@dataclass(eq=False)
class PartialAgg(_AggOp):
    """Per-fragment pre-aggregation below the gather (phase one of the
    two-phase aggregation): runs decomposed partial specs (see
    :func:`repro.execution.aggregate.decompose_aggs`) over one
    partition's rows, holding only that partition's group table, and
    emits one row per locally seen group.  The shrunken partial stream
    is what the exchange ships; :class:`MergeAgg` above the gather
    recombines it."""

    kind = "PartialAgg"

    def _account(self, ctx, rel, group_index, num_groups, state_row) -> List[StreamUse]:
        total_state = num_groups * state_row
        ctx.hold("agg:partial", total_state)
        factor = ctx.costs.cache_factor(total_state)
        ctx.metrics.charge_cpu(rel.num_rows * ctx.costs.agg_update_row * factor, "aggregate")
        ctx.metrics.bump("partial_agg_rows", num_groups)
        return []


@dataclass(eq=False)
class MergeAgg(PhysicalOp):
    """Phase two of the two-phase aggregation: the serial tail above the
    gather that recombines the partial-state rows of every fragment's
    :class:`PartialAgg` into the final aggregates.  Input rows arrive
    partition-major (each partition's partials key-sorted, the gathered
    stream not globally sorted); output is key-sorted like every
    aggregation, so the operator reproduces the serial aggregate's row
    order — only float summation order differs (order-insensitive
    result contract)."""

    input: PhysicalOp
    keys: Tuple[str, ...] = ()
    merges: Tuple[MergeSpec, ...] = ()
    rationale: str = ""

    kind = "MergeAgg"

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def describe(self) -> str:
        merges = ", ".join(f"{m.name}={m.fn}" for m in self.merges)
        keys = ", ".join(self.keys) if self.keys else "<scalar>"
        return f"MergeAgg [{keys}] -> {merges}"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        n = rel.num_rows
        if self.keys:
            if n:
                group_index, first_rows, num_groups = group_rows(
                    [rel.column(k) for k in self.keys]
                )
            else:
                group_index = np.zeros(0, dtype=np.int64)
                first_rows = np.zeros(0, dtype=np.int64)
                num_groups = 0
        else:
            group_index = np.zeros(n, dtype=np.int64)
            first_rows = np.zeros(1 if n else 0, dtype=np.int64)
            num_groups = 1 if n else 0
        state_row = (
            (rel.row_bytes(list(self.keys)) if self.keys else 0.0)
            + len(self.merges) * _AGG_STATE_BYTES
            + _HASH_ENTRY_OVERHEAD
        )
        total_state = num_groups * state_row
        ctx.hold("agg:merge", total_state)
        factor = ctx.costs.cache_factor(total_state)
        ctx.metrics.charge_cpu(n * ctx.costs.agg_update_row * factor, "aggregate")
        if self.keys:
            ctx.metrics.note(
                f"merge aggregation on {self.keys}: {num_groups} groups "
                f"from {n} partial rows"
            )
        columns: Dict[str, np.ndarray] = {}
        owners: Dict[str, str] = {}
        for key in self.keys:
            columns[key] = rel.column(key)[first_rows]
            if key in rel.owners:
                owners[key] = rel.owners[key]
        columns.update(
            merge_partial_aggregates(self.merges, group_index, num_groups, rel.columns)
        )
        return Relation(columns=columns, sorted_on=tuple(self.keys), owners=owners)


# ------------------------------------------------------------ sort/limit
@dataclass(eq=False)
class Sort(PhysicalOp):
    input: PhysicalOp
    keys: Tuple[Tuple[str, bool], ...] = ()
    rationale: str = ""

    kind = "Sort"
    restores_order = True

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def describe(self) -> str:
        keys = ", ".join(f"{c}{'' if asc else ' desc'}" for c, asc in self.keys)
        return f"Sort [{keys}]"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        n = rel.num_rows
        if n:
            sort_keys = []
            for column, ascending in reversed(self.keys):
                values = rel.column(column)
                if not ascending:
                    if values.dtype.kind in "iuf":
                        values = -values.astype(np.float64)
                    else:
                        _, codes = np.unique(values, return_inverse=True)
                        values = -codes
                sort_keys.append(values)
            order = np.lexsort(tuple(sort_keys))
            rel = rel.take(order)
        ctx.hold("sort", rel.data_bytes())
        ctx.metrics.charge_cpu(
            n * max(math.log2(max(n, 2)), 1.0) * ctx.costs.sort_row, "sort"
        )
        if all(asc for _, asc in self.keys):
            rel.sorted_on = tuple(c for c, _ in self.keys)
        return rel


@dataclass(eq=False)
class Limit(PhysicalOp):
    input: PhysicalOp
    count: int = 0
    rationale: str = ""

    kind = "Limit"
    ordered_inputs = ("input",)

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.input,)

    def describe(self) -> str:
        return f"Limit {self.count}"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = self.input.run(ctx)
        if rel.num_rows > self.count:
            rel = rel.take(np.arange(self.count), keep_sorted=True)
        return rel


def _rows_to_runs(rows: np.ndarray) -> List[Tuple[int, int]]:
    """Sorted row indices -> (start, length) runs."""
    if len(rows) == 0:
        return []
    breaks = np.flatnonzero(np.diff(rows) != 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [len(rows) - 1]])
    return [(int(rows[s]), int(rows[e] - rows[s] + 1)) for s, e in zip(starts, ends)]
