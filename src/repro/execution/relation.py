"""The executor's dataflow unit: a batch of named column vectors.

A :class:`Relation` carries, besides its columns:

* optional per-column validity masks (nulls appear only through outer
  joins, e.g. TPC-H Q13);
* *physical properties* the planner exploits — the sort order inherited
  from a PK-ordered scan (enables merge joins / streaming aggregation)
  and the BDCC :class:`StreamUse` list (enables sandwich operators);
* a column→alias ownership map, used to tie join columns back to the
  scans (and hence foreign keys / dimension paths) they came from.

Hidden columns (named ``__grp_*``) carry per-row BDCC group numbers; they
flow through joins and filters like data but never into query results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dimension import Dimension

__all__ = ["StreamUse", "Relation", "row_bytes_of"]

HIDDEN_PREFIX = "__"


@dataclass(frozen=True)
class StreamUse:
    """A BDCC dimension use visible on a stream.

    ``path`` is relative to the base table of ``alias``; ``column`` names
    the hidden group-id column (values use ``bits`` bits, dimension-major).
    """

    alias: str
    dimension: Dimension
    path: Tuple[str, ...]
    bits: int
    column: str

    def instance_key(self) -> Tuple[str, str, Tuple[str, ...]]:
        """Identity for deduplication: same alias + dimension + path."""
        return (self.alias, self.dimension.name, self.path)


def _value_bytes(array: np.ndarray) -> float:
    """Approximate engine-side bytes per value (unicode arrays store
    4 bytes/char in numpy; a real engine stores ~1)."""
    if array.dtype.kind == "U":
        return array.dtype.itemsize / 4.0
    return float(array.dtype.itemsize)


def row_bytes_of(columns: Dict[str, np.ndarray]) -> float:
    """Bytes per row across the given columns."""
    return float(sum(_value_bytes(a) for a in columns.values()))


@dataclass
class Relation:
    columns: Dict[str, np.ndarray]
    valid: Dict[str, np.ndarray] = field(default_factory=dict)
    sorted_on: Tuple[str, ...] = ()
    uses: List[StreamUse] = field(default_factory=list)
    owners: Dict[str, str] = field(default_factory=dict)

    # ----------------------------------------------------------- geometry
    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return [c for c in self.columns if not c.startswith(HIDDEN_PREFIX)]

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {sorted(self.columns)}"
            ) from None

    def validity(self, name: str) -> Optional[np.ndarray]:
        return self.valid.get(name)

    # -------------------------------------------------------------- bytes
    def row_bytes(self, columns: Optional[Sequence[str]] = None) -> float:
        names = list(columns) if columns is not None else list(self.columns)
        return row_bytes_of({n: self.columns[n] for n in names})

    def data_bytes(self, columns: Optional[Sequence[str]] = None) -> float:
        return self.row_bytes(columns) * self.num_rows

    # ---------------------------------------------------------- transforms
    def take(self, indices: np.ndarray, keep_sorted: bool = False) -> "Relation":
        """Gather rows; physical properties survive (sort order only when
        the caller vouches the indices are monotone)."""
        new_cols = {n: a[indices] for n, a in self.columns.items()}
        new_valid = {n: m[indices] for n, m in self.valid.items()}
        return Relation(
            columns=new_cols,
            valid=new_valid,
            sorted_on=self.sorted_on if keep_sorted else (),
            uses=list(self.uses),
            owners=dict(self.owners),
        )

    def filter(self, mask: np.ndarray) -> "Relation":
        """Row selection; preserves sort order and stream uses."""
        new_cols = {n: a[mask] for n, a in self.columns.items()}
        new_valid = {n: m[mask] for n, m in self.valid.items()}
        return Relation(
            columns=new_cols,
            valid=new_valid,
            sorted_on=self.sorted_on,
            uses=list(self.uses),
            owners=dict(self.owners),
        )

    def with_column(self, name: str, values: np.ndarray, owner: Optional[str] = None) -> "Relation":
        new_cols = dict(self.columns)
        new_cols[name] = values
        rel = Relation(
            columns=new_cols,
            valid=dict(self.valid),
            sorted_on=self.sorted_on,
            uses=list(self.uses),
            owners=dict(self.owners),
        )
        if owner is not None:
            rel.owners[name] = owner
        return rel

    def project(self, names: Sequence[str]) -> "Relation":
        """Keep only the named columns (plus any stream-use hidden columns
        still referenced)."""
        keep = list(names)
        live_uses = [u for u in self.uses if u.column in self.columns]
        for use in live_uses:
            if use.column not in keep:
                keep.append(use.column)
        new_cols = {n: self.columns[n] for n in keep}
        new_valid = {n: m for n, m in self.valid.items() if n in new_cols}
        sorted_on = self.sorted_on
        if any(c not in new_cols for c in sorted_on):
            sorted_on = ()
        return Relation(
            columns=new_cols,
            valid=new_valid,
            sorted_on=sorted_on,
            uses=live_uses,
            owners={c: a for c, a in self.owners.items() if c in new_cols},
        )

    def uses_for_alias(self, alias: str) -> List[StreamUse]:
        return [u for u in self.uses if u.alias == alias and u.column in self.columns]

    def to_rows(self) -> List[tuple]:
        """Materialise visible columns as python tuples (tests, examples)."""
        names = self.column_names
        arrays = [self.columns[n] for n in names]
        return [tuple(a[i].item() if hasattr(a[i], "item") else a[i] for a in arrays) for i in range(self.num_rows)]
