"""Vectorised expression language for predicates and projections.

Expressions evaluate against a :class:`~repro.execution.relation.Relation`
(or any mapping of column name to numpy array) and return numpy arrays.
The repertoire covers everything the 22 TPC-H queries need: arithmetic,
comparisons, BETWEEN, IN, SQL LIKE (``%`` wildcards), CASE, SUBSTRING,
EXTRACT(YEAR), and boolean connectives.

Date values are ``int32`` days since 1970-01-01; :func:`days` converts a
literal ``"YYYY-MM-DD"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "Expr", "Col", "Const", "Arith", "Cmp", "Between", "InList", "Like",
    "And", "Or", "Not", "Case", "Substring", "Year", "days",
    "col", "lit", "year",
]


def days(date_literal: str) -> int:
    """Days since 1970-01-01 for a ``YYYY-MM-DD`` literal."""
    return int(np.datetime64(date_literal, "D").astype(np.int64))


def _columns_of(rel) -> Dict[str, np.ndarray]:
    if hasattr(rel, "columns"):
        return rel.columns
    return rel


class Expr:
    """Base expression node."""

    def eval(self, rel) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> Set[str]:
        """All column names this expression reads."""
        raise NotImplementedError

    # ------------------------------------------------------ sugar builders
    def __add__(self, other): return Arith("+", self, _wrap(other))
    def __radd__(self, other): return Arith("+", _wrap(other), self)
    def __sub__(self, other): return Arith("-", self, _wrap(other))
    def __rsub__(self, other): return Arith("-", _wrap(other), self)
    def __mul__(self, other): return Arith("*", self, _wrap(other))
    def __rmul__(self, other): return Arith("*", _wrap(other), self)
    def __truediv__(self, other): return Arith("/", self, _wrap(other))

    def eq(self, other): return Cmp("==", self, _wrap(other))
    def ne(self, other): return Cmp("!=", self, _wrap(other))
    def lt(self, other): return Cmp("<", self, _wrap(other))
    def le(self, other): return Cmp("<=", self, _wrap(other))
    def gt(self, other): return Cmp(">", self, _wrap(other))
    def ge(self, other): return Cmp(">=", self, _wrap(other))
    def between(self, low, high): return Between(self, _wrap(low), _wrap(high))
    def isin(self, values): return InList(self, list(values))
    def like(self, pattern): return Like(self, pattern)
    def not_like(self, pattern): return Not(Like(self, pattern))

    def __and__(self, other): return And(self, other)
    def __or__(self, other): return Or(self, other)
    def __invert__(self): return Not(self)


def _wrap(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Col(Expr):
    name: str

    def eval(self, rel) -> np.ndarray:
        return _columns_of(rel)[self.name]

    def columns(self) -> Set[str]:
        return {self.name}


@dataclass(frozen=True)
class Const(Expr):
    value: object

    def eval(self, rel) -> np.ndarray:
        cols = _columns_of(rel)
        n = len(next(iter(cols.values()))) if cols else 0
        return np.full(n, self.value)

    def columns(self) -> Set[str]:
        return set()


_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


@dataclass(frozen=True)
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, rel) -> np.ndarray:
        return _ARITH[self.op](self.left.eval(rel), self.right.eval(rel))

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()


_CMP = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


@dataclass(frozen=True)
class Cmp(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, rel) -> np.ndarray:
        return _CMP[self.op](self.left.eval(rel), self.right.eval(rel))

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr

    def eval(self, rel) -> np.ndarray:
        values = self.operand.eval(rel)
        return (values >= self.low.eval(rel)) & (values <= self.high.eval(rel))

    def columns(self) -> Set[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()


class InList(Expr):
    def __init__(self, operand: Expr, values: Sequence[object]):
        self.operand = operand
        self.values = list(values)

    def eval(self, rel) -> np.ndarray:
        return np.isin(self.operand.eval(rel), self.values)

    def columns(self) -> Set[str]:
        return self.operand.columns()


class Like(Expr):
    """SQL LIKE with ``%`` wildcards (no ``_``), vectorised.

    The pattern is split on ``%``; segments must occur in order, with the
    first/last anchored when the pattern does not start/end with ``%``.
    """

    def __init__(self, operand: Expr, pattern: str):
        if "_" in pattern:
            raise NotImplementedError("LIKE '_' wildcard not supported")
        self.operand = operand
        self.pattern = pattern
        self.segments = [s for s in pattern.split("%") if s]
        self.anchored_start = not pattern.startswith("%")
        self.anchored_end = not pattern.endswith("%")

    def eval(self, rel) -> np.ndarray:
        values = self.operand.eval(rel)
        n = len(values)
        if not self.segments:
            return np.ones(n, dtype=bool)
        result = np.ones(n, dtype=bool)
        position = np.zeros(n, dtype=np.int64)
        for i, segment in enumerate(self.segments):
            if i == 0 and self.anchored_start:
                found = np.char.startswith(values, segment)
                result &= found
                position = np.where(found, len(segment), position)
            else:
                # find segment at or after `position`
                idx = _find_from(values, segment, position)
                found = idx >= 0
                result &= found
                position = np.where(found, idx + len(segment), position)
        if self.anchored_end:
            lengths = np.char.str_len(values)
            last = self.segments[-1]
            if len(self.segments) == 1 and self.anchored_start:
                result &= lengths == len(last)
            else:
                ends = np.char.endswith(values, last)
                result &= ends & (position <= lengths)
                # the trailing segment must not overlap an earlier match
                result &= lengths - len(last) >= position - len(last)
        return result

    def columns(self) -> Set[str]:
        return self.operand.columns()


def _find_from(values: np.ndarray, segment: str, start: np.ndarray) -> np.ndarray:
    """Per-element ``str.find(segment, start)``."""
    if values.dtype.kind == "U":
        # np.char.find supports a scalar start only; emulate per-row start
        # by masking matches before `start`.
        idx = np.char.find(values, segment)
        ok = idx >= start
        out = np.where(ok, idx, -1)
        # rows where the first occurrence is too early may still contain a
        # later occurrence; handle those few rows directly
        retry = (idx >= 0) & ~ok
        for i in np.flatnonzero(retry):
            out[i] = values[i].find(segment, int(start[i]))
        return out
    out = np.empty(len(values), dtype=np.int64)
    for i, v in enumerate(values):
        out[i] = v.find(segment, int(start[i]))
    return out


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def eval(self, rel) -> np.ndarray:
        return self.left.eval(rel) & self.right.eval(rel)

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def eval(self, rel) -> np.ndarray:
        return self.left.eval(rel) | self.right.eval(rel)

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def eval(self, rel) -> np.ndarray:
        return ~self.operand.eval(rel)

    def columns(self) -> Set[str]:
        return self.operand.columns()


class Case(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(self, whens: Sequence[Tuple[Expr, Expr]], default: Union[Expr, object] = 0):
        self.whens = [(c, _wrap(v)) for c, v in whens]
        self.default = _wrap(default)

    def eval(self, rel) -> np.ndarray:
        conditions = [c.eval(rel) for c, _ in self.whens]
        choices = [v.eval(rel) for _, v in self.whens]
        return np.select(conditions, choices, default=self.default.eval(rel))

    def columns(self) -> Set[str]:
        out: Set[str] = set(self.default.columns())
        for c, v in self.whens:
            out |= c.columns() | v.columns()
        return out


@dataclass(frozen=True)
class Substring(Expr):
    """1-based SQL SUBSTRING of fixed length."""

    operand: Expr
    start: int
    length: int

    def eval(self, rel) -> np.ndarray:
        values = self.operand.eval(rel)
        lo = self.start - 1
        hi = lo + self.length
        return np.array([v[lo:hi] for v in values], dtype=f"<U{self.length}")

    def columns(self) -> Set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class Year(Expr):
    """EXTRACT(YEAR FROM date-column) for int-days date columns."""

    operand: Expr

    def eval(self, rel) -> np.ndarray:
        values = self.operand.eval(rel).astype("datetime64[D]")
        return values.astype("datetime64[Y]").astype(np.int64) + 1970

    def columns(self) -> Set[str]:
        return self.operand.columns()


# ----------------------------------------------------------------- sugar
def col(name: str) -> Col:
    return Col(name)


def lit(value) -> Const:
    return Const(value)


def year(expr: Union[str, Expr]) -> Year:
    return Year(col(expr) if isinstance(expr, str) else expr)
