"""CPU cost model: per-tuple operator costs on the paper's machine.

Constants approximate a single core of the paper's Xeon E5505 running a
vectorised engine (order 100M-1000M simple values per second).  Absolute
accuracy is not the goal — Figures 2 and 3 are reproduced as *relative*
shapes — but the constants are chosen so that IO and CPU contribute in
realistic proportion (e.g. TPC-H Q1, a pure scan-aggregate query, is
CPU-heavy and gains nothing from any indexing scheme, as in the paper).

Cache sensitivity: probe/update cost rises with the resident state's
size, stepping at the machine's cache capacities (32 KB L1 / 256 KB L2 /
4 MB L3).  This is the CPU side of sandwich processing: per-group hash
tables stay cache-resident, full-table hash tables do not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    # per value touched by a scan (decompress + vector materialise)
    scan_value: float = 1.5e-9
    # per row per predicate/expression evaluation
    expr_value: float = 1.0e-9
    # per build row of a hash join (hashing + insert)
    hash_build_row: float = 35e-9
    # per probe row of a hash join, before the cache factor
    hash_probe_row: float = 18e-9
    # per output row materialised by any join
    join_output_row: float = 8e-9
    # per row of a merge join (both inputs already ordered)
    merge_row: float = 6e-9
    # per row entering a hash aggregation, before the cache factor
    agg_update_row: float = 14e-9
    # per row of a streaming (ordered) aggregation
    stream_agg_row: float = 5e-9
    # per row per sort pass (multiplied by log2 n)
    sort_row: float = 8e-9
    # per group set-up overhead of sandwiched execution (the "extra time
    # spent processing the extra _bdcc_ column", visible in Q16)
    sandwich_group_overhead: float = 2.0e-6
    # per row overhead of carrying/group-extracting the _bdcc_ column
    sandwich_row_overhead: float = 0.5e-9
    # per row moved through an exchange (gather/broadcast between plan
    # fragments of a parallel execution)
    exchange_row: float = 0.5e-9
    # per received row of a rebinning Repartition (extract the shared
    # dimension bits from the hidden group columns and route the row)
    rebin_row: float = 1.0e-9

    # cache capacities of the evaluation machine
    l1_bytes: float = 32 * 1024
    l2_bytes: float = 256 * 1024
    l3_bytes: float = 4 * 1024 * 1024

    def cache_factor(self, state_bytes: float) -> float:
        """Cost multiplier for random access into ``state_bytes`` of
        operator state (hash table, aggregate table)."""
        if state_bytes <= self.l1_bytes:
            return 0.6
        if state_bytes <= self.l2_bytes:
            return 0.8
        if state_bytes <= self.l3_bytes:
            return 1.0
        if state_bytes <= 64 * self.l3_bytes:
            return 1.8
        return 2.6


DEFAULT_COSTS = CostModel()
