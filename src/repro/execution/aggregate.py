"""Vectorised grouping and aggregation kernels.

Like the join kernels these are strategy-agnostic: hash, streaming and
sandwiched aggregation all produce identical results through these
functions; the planner's choice changes only cost and memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AggSpec",
    "MergeSpec",
    "group_rows",
    "apply_aggregate",
    "decompose_aggs",
    "merge_partial_aggregates",
    "distinct_per_partition",
]

SUPPORTED_AGGS = ("sum", "count", "avg", "min", "max", "count_distinct")

#: aggregates with an exact partial/merge decomposition (two-phase
#: parallel aggregation); ``count_distinct`` is *not* decomposable —
#: per-partition distinct counts do not merge — and blocks the rewrite.
DECOMPOSABLE_AGGS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggSpec:
    """One output aggregate: ``name = fn(expr)``.

    ``expr`` may be None for ``count(*)``.  ``valid`` masks (outer-join
    nulls) are honoured: null inputs do not contribute.
    """

    name: str
    fn: str
    expr: object = None  # Expr | None

    def __post_init__(self) -> None:
        if self.fn not in SUPPORTED_AGGS:
            raise ValueError(f"unsupported aggregate {self.fn!r}")


def group_rows(key_columns: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Factorise rows by key tuple.

    Returns ``(group_index_per_row, representative_row_per_group,
    num_groups)``; group numbering follows key sort order.
    """
    if not key_columns:
        raise ValueError("group_rows requires at least one key column")
    codes = np.zeros(len(key_columns[0]), dtype=np.int64)
    for column in key_columns:
        uniques, inverse = np.unique(column, return_inverse=True)
        codes = codes * np.int64(len(uniques)) + inverse.astype(np.int64)
    uniques, first_rows, inverse = np.unique(codes, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first_rows.astype(np.int64), len(uniques)


def apply_aggregate(
    spec: AggSpec,
    group_index: np.ndarray,
    num_groups: int,
    values: Optional[np.ndarray],
    valid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate one aggregate over pre-factorised groups."""
    if spec.fn == "count":
        if values is None and valid is None:
            return np.bincount(group_index, minlength=num_groups).astype(np.int64)
        mask = valid if valid is not None else np.ones(len(group_index), dtype=bool)
        return np.bincount(group_index[mask], minlength=num_groups).astype(np.int64)

    if values is None:
        raise ValueError(f"aggregate {spec.fn} requires an expression")
    mask = valid
    if mask is not None:
        group_index = group_index[mask]
        values = values[mask]

    if spec.fn == "sum":
        return np.bincount(group_index, weights=values.astype(np.float64), minlength=num_groups)
    if spec.fn == "avg":
        sums = np.bincount(group_index, weights=values.astype(np.float64), minlength=num_groups)
        counts = np.bincount(group_index, minlength=num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if spec.fn in ("min", "max"):
        if values.dtype.kind == "U":
            # string extrema via per-group sort (rare; small inputs)
            order = np.lexsort((values, group_index))
            gsorted = group_index[order]
            boundaries = np.flatnonzero(np.diff(np.append(-1, gsorted)))
            out = np.empty(num_groups, dtype=values.dtype)
            if spec.fn == "min":
                out[gsorted[boundaries]] = values[order][boundaries]
            else:
                last = np.append(boundaries[1:], len(gsorted)) - 1
                out[gsorted[boundaries]] = values[order][last]
            return out
        init = np.inf if spec.fn == "min" else -np.inf
        out = np.full(num_groups, init, dtype=np.float64)
        ufunc = np.minimum if spec.fn == "min" else np.maximum
        ufunc.at(out, group_index, values.astype(np.float64))
        if values.dtype.kind in "iu":
            finite = np.isfinite(out)
            result = np.zeros(num_groups, dtype=np.int64)
            result[finite] = out[finite].astype(np.int64)
            return np.where(finite, result, 0) if not finite.all() else result
        return out
    if spec.fn == "count_distinct":
        uniques, inverse = np.unique(values, return_inverse=True)
        pair = group_index.astype(np.int64) * np.int64(len(uniques)) + inverse
        distinct_pairs = np.unique(pair)
        groups_of_pairs = (distinct_pairs // np.int64(len(uniques))).astype(np.int64)
        return np.bincount(groups_of_pairs, minlength=num_groups).astype(np.int64)
    raise AssertionError(spec.fn)


@dataclass(frozen=True)
class MergeSpec:
    """How one final aggregate is recovered from partial-state columns.

    ``value`` names the partial column carrying the primary state (the
    per-partition sums, counts or extrema); ``count`` names the
    companion validity-count column two cases need:

    * ``avg`` merges as ``sum(partial sums) / sum(partial counts)``;
    * ``min``/``max`` must ignore partials of partitions where every
      input row of the group was null — the kernels emit a type-specific
      "empty" sentinel there (0 for ints, ±inf for floats, uninitialised
      for strings) that would otherwise poison the merge.
    """

    name: str
    fn: str
    value: str
    count: Optional[str] = None


def decompose_aggs(
    aggs: Sequence[AggSpec],
) -> Optional[Tuple[Tuple[AggSpec, ...], Tuple[MergeSpec, ...]]]:
    """Split aggregates into per-partition partial specs plus the merge
    plan recombining them — the two-phase (partial/merge) decomposition:

    ======  =======================  ============================
    fn      partial state            merge
    ======  =======================  ============================
    sum     sum(expr)                sum(partial sums)
    count   count(expr)              sum(partial counts)
    avg     sum(expr), count(expr)   sum(sums) / sum(counts)
    min     min(expr), count(expr)   min over valid partials
    max     max(expr), count(expr)   max over valid partials
    ======  =======================  ============================

    Partial columns keep the final output names (the companion counts
    are ``__pcnt__``-prefixed and internal); returns None when any
    aggregate is not decomposable (``count_distinct``), which keeps the
    serial gather-then-aggregate plan.
    """
    partials: List[AggSpec] = []
    merges: List[MergeSpec] = []
    for spec in aggs:
        if spec.fn not in DECOMPOSABLE_AGGS:
            return None
        if spec.fn in ("sum", "count"):
            partials.append(spec)
            merges.append(MergeSpec(spec.name, spec.fn, spec.name))
        else:
            count_name = f"__pcnt__{spec.name}"
            partial_fn = "sum" if spec.fn == "avg" else spec.fn
            partials.append(AggSpec(spec.name, partial_fn, spec.expr))
            partials.append(AggSpec(count_name, "count", spec.expr))
            merges.append(MergeSpec(spec.name, spec.fn, spec.name, count_name))
    return tuple(partials), tuple(merges)


def merge_partial_aggregates(
    merges: Sequence[MergeSpec],
    group_index: np.ndarray,
    num_groups: int,
    columns: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Recombine gathered partial-state columns into the final
    aggregates, group numbering pre-factorised like :func:`group_rows`.

    Matches the serial kernels' output dtypes and null semantics
    exactly: counts come back int64, an all-null group's min/max
    reproduces the serial sentinel (0 for ints, ±inf for floats), and
    an empty group set yields empty float columns."""
    out: Dict[str, np.ndarray] = {}
    for m in merges:
        if num_groups == 0:
            out[m.name] = np.zeros(0)
            continue
        values = np.asarray(columns[m.value])
        if m.fn == "sum":
            out[m.name] = np.bincount(
                group_index, weights=values.astype(np.float64), minlength=num_groups
            )
        elif m.fn == "count":
            out[m.name] = np.bincount(
                group_index, weights=values.astype(np.float64), minlength=num_groups
            ).astype(np.int64)
        elif m.fn == "avg":
            sums = np.bincount(
                group_index, weights=values.astype(np.float64), minlength=num_groups
            )
            counts = np.bincount(
                group_index,
                weights=np.asarray(columns[m.count], dtype=np.float64),
                minlength=num_groups,
            ).astype(np.int64)
            with np.errstate(invalid="ignore", divide="ignore"):
                out[m.name] = sums / counts
        else:  # min / max: only partials whose partition saw a valid row
            valid = np.asarray(columns[m.count]) > 0
            out[m.name] = apply_aggregate(
                AggSpec(m.name, m.fn), group_index, num_groups, values, valid
            )
    return out


def distinct_per_partition(partition_ids: np.ndarray, group_index: np.ndarray) -> np.ndarray:
    """Number of distinct aggregation groups inside each partition —
    the per-partition hash-table population a sandwiched aggregation
    holds (its memory high-water mark is the max of these)."""
    if len(partition_ids) == 0:
        return np.zeros(0, dtype=np.int64)
    num_groups = int(group_index.max()) + 1 if len(group_index) else 0
    pair = partition_ids.astype(np.int64) * np.int64(max(num_groups, 1)) + group_index
    distinct_pairs = np.unique(pair)
    partitions_of_pairs = distinct_pairs // np.int64(max(num_groups, 1))
    _, counts = np.unique(partitions_of_pairs, return_counts=True)
    return counts.astype(np.int64)
