"""Vectorised grouping and aggregation kernels.

Like the join kernels these are strategy-agnostic: hash, streaming and
sandwiched aggregation all produce identical results through these
functions; the planner's choice changes only cost and memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AggSpec", "group_rows", "apply_aggregate", "distinct_per_partition"]

SUPPORTED_AGGS = ("sum", "count", "avg", "min", "max", "count_distinct")


@dataclass(frozen=True)
class AggSpec:
    """One output aggregate: ``name = fn(expr)``.

    ``expr`` may be None for ``count(*)``.  ``valid`` masks (outer-join
    nulls) are honoured: null inputs do not contribute.
    """

    name: str
    fn: str
    expr: object = None  # Expr | None

    def __post_init__(self) -> None:
        if self.fn not in SUPPORTED_AGGS:
            raise ValueError(f"unsupported aggregate {self.fn!r}")


def group_rows(key_columns: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Factorise rows by key tuple.

    Returns ``(group_index_per_row, representative_row_per_group,
    num_groups)``; group numbering follows key sort order.
    """
    if not key_columns:
        raise ValueError("group_rows requires at least one key column")
    codes = np.zeros(len(key_columns[0]), dtype=np.int64)
    for column in key_columns:
        uniques, inverse = np.unique(column, return_inverse=True)
        codes = codes * np.int64(len(uniques)) + inverse.astype(np.int64)
    uniques, first_rows, inverse = np.unique(codes, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first_rows.astype(np.int64), len(uniques)


def apply_aggregate(
    spec: AggSpec,
    group_index: np.ndarray,
    num_groups: int,
    values: Optional[np.ndarray],
    valid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate one aggregate over pre-factorised groups."""
    if spec.fn == "count":
        if values is None and valid is None:
            return np.bincount(group_index, minlength=num_groups).astype(np.int64)
        mask = valid if valid is not None else np.ones(len(group_index), dtype=bool)
        return np.bincount(group_index[mask], minlength=num_groups).astype(np.int64)

    if values is None:
        raise ValueError(f"aggregate {spec.fn} requires an expression")
    mask = valid
    if mask is not None:
        group_index = group_index[mask]
        values = values[mask]

    if spec.fn == "sum":
        return np.bincount(group_index, weights=values.astype(np.float64), minlength=num_groups)
    if spec.fn == "avg":
        sums = np.bincount(group_index, weights=values.astype(np.float64), minlength=num_groups)
        counts = np.bincount(group_index, minlength=num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if spec.fn in ("min", "max"):
        if values.dtype.kind == "U":
            # string extrema via per-group sort (rare; small inputs)
            order = np.lexsort((values, group_index))
            gsorted = group_index[order]
            boundaries = np.flatnonzero(np.diff(np.append(-1, gsorted)))
            out = np.empty(num_groups, dtype=values.dtype)
            if spec.fn == "min":
                out[gsorted[boundaries]] = values[order][boundaries]
            else:
                last = np.append(boundaries[1:], len(gsorted)) - 1
                out[gsorted[boundaries]] = values[order][last]
            return out
        init = np.inf if spec.fn == "min" else -np.inf
        out = np.full(num_groups, init, dtype=np.float64)
        ufunc = np.minimum if spec.fn == "min" else np.maximum
        ufunc.at(out, group_index, values.astype(np.float64))
        if values.dtype.kind in "iu":
            finite = np.isfinite(out)
            result = np.zeros(num_groups, dtype=np.int64)
            result[finite] = out[finite].astype(np.int64)
            return np.where(finite, result, 0) if not finite.all() else result
        return out
    if spec.fn == "count_distinct":
        uniques, inverse = np.unique(values, return_inverse=True)
        pair = group_index.astype(np.int64) * np.int64(len(uniques)) + inverse
        distinct_pairs = np.unique(pair)
        groups_of_pairs = (distinct_pairs // np.int64(len(uniques))).astype(np.int64)
        return np.bincount(groups_of_pairs, minlength=num_groups).astype(np.int64)
    raise AssertionError(spec.fn)


def distinct_per_partition(partition_ids: np.ndarray, group_index: np.ndarray) -> np.ndarray:
    """Number of distinct aggregation groups inside each partition —
    the per-partition hash-table population a sandwiched aggregation
    holds (its memory high-water mark is the max of these)."""
    if len(partition_ids) == 0:
        return np.zeros(0, dtype=np.int64)
    num_groups = int(group_index.max()) + 1 if len(group_index) else 0
    pair = partition_ids.astype(np.int64) * np.int64(max(num_groups, 1)) + group_index
    distinct_pairs = np.unique(pair)
    partitions_of_pairs = distinct_pairs // np.int64(max(num_groups, 1))
    _, counts = np.unique(partitions_of_pairs, return_counts=True)
    return counts.astype(np.int64)
