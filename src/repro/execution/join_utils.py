"""Vectorised multi-key join kernels (N:M, semi, anti, left outer).

These kernels are *logical* workhorses shared by every join strategy the
planner picks (hash, merge, sandwich): the strategies differ in cost and
memory accounting, not in results.  All kernels preserve the probe
(left) side's row order in their output, so sort-order properties survive
probe-side joins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "encode_join_keys",
    "inner_join_pairs",
    "left_join_pairs",
    "semi_join_mask",
]


def _factorize_pair(left: np.ndarray, right: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Codes for two arrays over their union domain; equal values share a
    code.  Returns (left_codes, right_codes, cardinality)."""
    combined = np.concatenate([left, right])
    uniques, inverse = np.unique(combined, return_inverse=True)
    inverse = inverse.astype(np.int64)
    return inverse[: len(left)], inverse[len(left):], len(uniques)


def encode_join_keys(
    left_cols: Sequence[np.ndarray], right_cols: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Single int64 key per row for multi-column equi-joins."""
    if len(left_cols) != len(right_cols) or not left_cols:
        raise ValueError("need equally many (>=1) key columns on both sides")
    if len(left_cols) == 1:
        left, right = left_cols[0], right_cols[0]
        if left.dtype.kind in "iu" and right.dtype.kind in "iu":
            return left.astype(np.int64), right.astype(np.int64)
        lcode, rcode, _ = _factorize_pair(left, right)
        return lcode, rcode
    lcodes = np.zeros(len(left_cols[0]), dtype=np.int64)
    rcodes = np.zeros(len(right_cols[0]), dtype=np.int64)
    for lcol, rcol in zip(left_cols, right_cols):
        lc, rc, card = _factorize_pair(lcol, rcol)
        lcodes = lcodes * card + lc
        rcodes = rcodes * card + rc
    return lcodes, rcodes


def inner_join_pairs(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (left_idx, right_idx) pairs, left-major order."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.zeros(0, dtype=np.int64)
    starts = np.repeat(lo, counts)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    right_idx = order[starts + within]
    return left_idx, right_idx


def left_join_pairs(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Left-outer pairs: every left row appears; unmatched rows carry
    right index -1."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), out_counts)
    starts = np.repeat(lo, out_counts)
    ends = np.cumsum(out_counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - out_counts, out_counts)
    matched = np.repeat(counts > 0, out_counts)
    right_idx = np.full(total, -1, dtype=np.int64)
    take = starts[matched] + within[matched]
    right_idx[matched] = order[take]
    return left_idx, right_idx


def semi_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask over left rows with at least one match (semi join);
    invert for anti join."""
    return np.isin(left_keys, right_keys)
