"""Reference group-at-a-time (sandwiched) operator implementations.

The executor runs joins and aggregations through vectorised kernels and
*accounts* for sandwiched execution (per-group memory, cache-resident
state, per-group overheads).  This module provides the literal
PartitionSplit / operator / PartitionRestart pipeline of the Sandwich
Operators paper [3]: inputs clustered by a shared group id are processed
one group at a time, each group through its own small hash join or
aggregation table.

It exists to *prove equivalence*: property tests assert that the
group-at-a-time results equal the vectorised kernels' results on the same
inputs, which is what justifies simulating sandwich execution by
accounting alone.  It also returns the observed per-group state sizes, so
tests can check the memory model against ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["grouped_join_reference", "grouped_aggregate_reference"]


def _group_slices(group_ids: np.ndarray) -> Dict[int, np.ndarray]:
    """Row indices per group id (inputs need not be clustered; the
    scatter scan would deliver them clustered, which is equivalent)."""
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    boundaries = np.flatnonzero(np.diff(np.append(-1, sorted_ids.astype(np.int64))))
    slices: Dict[int, np.ndarray] = {}
    starts = list(boundaries) + [len(sorted_ids)]
    for i in range(len(boundaries)):
        start, end = starts[i], starts[i + 1]
        slices[int(sorted_ids[start])] = order[start:end]
    return slices


def grouped_join_reference(
    left_keys: np.ndarray,
    left_groups: np.ndarray,
    right_keys: np.ndarray,
    right_groups: np.ndarray,
) -> Tuple[List[Tuple[int, int]], int]:
    """Inner join executed one group at a time with per-group hash tables.

    Precondition (guaranteed by BDCC co-clustering): rows with equal join
    keys carry equal group ids on both sides — the test suite asserts
    this holds for real BDCC streams before relying on the result.

    Returns (sorted list of matching (left_row, right_row) pairs,
    max per-group build-table entries).
    """
    left_slices = _group_slices(left_groups)
    right_slices = _group_slices(right_groups)
    pairs: List[Tuple[int, int]] = []
    max_build = 0
    for group, right_rows in right_slices.items():
        left_rows = left_slices.get(group)
        if left_rows is None:
            continue
        table: Dict[object, List[int]] = {}
        for r in right_rows:
            table.setdefault(right_keys[r].item(), []).append(int(r))
        max_build = max(max_build, len(right_rows))
        for l in left_rows:
            for r in table.get(left_keys[l].item(), ()):
                pairs.append((int(l), r))
    return sorted(pairs), max_build


def grouped_aggregate_reference(
    keys: Sequence[np.ndarray],
    values: np.ndarray,
    groups: np.ndarray,
) -> Tuple[Dict[tuple, float], int]:
    """Grouped SUM executed partition-at-a-time.

    Returns (key tuple -> sum, max per-partition distinct keys) — the
    latter is the sandwiched aggregation's hash-table high-water mark.
    """
    slices = _group_slices(groups)
    totals: Dict[tuple, float] = {}
    max_states = 0
    for _, rows in slices.items():
        local: Dict[tuple, float] = {}
        for row in rows:
            key = tuple(k[row].item() for k in keys)
            local[key] = local.get(key, 0.0) + float(values[row])
        max_states = max(max_states, len(local))
        for key, total in local.items():
            if key in totals:
                raise AssertionError(
                    f"aggregation key {key} spans partitions — the "
                    "partitioning property is violated"
                )
            totals[key] = total
    return totals, max_states
