"""Fragment planning: split a physical plan along partition boundaries.

The lowering pass emits one serial operator tree; this second (also
pure) pass cuts it into *fragments* — subplans that simulated workers
can execute independently — along the boundaries the storage layer
already maintains:

* **BDCC tables** split at *zone* boundaries (count-table group starts):
  the same ranges sandwich operators exploit are independently scannable
  chunks of the key-sorted storage;
* **Plain/PK tables** split at *page-range* boundaries of the widest
  demanded column, so partition IO stays page-granular.

A split propagates up through *partition-transparent* operators — per-row
Filter/Project, and joins along their order-carrying (probe) side, whose
other side becomes a **broadcast fragment** executed once and shipped to
every partition via :class:`~repro.parallel.exchange.Repartition`.
Pipeline breakers (aggregation, sort, limit) stop the split: partitions
are gathered below them by an order-preserving
:class:`~repro.parallel.exchange.UnionAll` over
:class:`~repro.parallel.exchange.Exchange` leaves, and the remainder of
the plan runs as the **final** serial fragment.  Subtrees with no
splittable scan (or too few rows to be worth a fragment) simply stay
serial — fragmenting never fails, it degrades to the serial plan.

Because partitions are contiguous ascending storage ranges and every
operator in a partition fragment is per-row (or probe-side
order-preserving), the gathered stream is *bit-identical* to the serial
stream — the basis for the workload oracle checking parallel plans
bit-for-bit against serial execution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..execution.operators import (
    DeltaMergeScan,
    HashJoin,
    MergeJoin,
    PhysicalFilter,
    PhysicalOp,
    PhysicalProject,
    PhysicalScan,
    walk_physical,
)
from .exchange import Exchange, Repartition, UnionAll

__all__ = ["Fragment", "ParallelPlan", "plan_fragments", "DEFAULT_MIN_PARTITION_ROWS"]

#: below this many selected rows a scan is not worth its own fragment.
DEFAULT_MIN_PARTITION_ROWS = 2048


@dataclass
class Fragment:
    """One independently executable subplan of a parallel plan."""

    index: int
    root: PhysicalOp
    role: str            # "partition" | "broadcast" | "final" | "serial"
    note: str = ""       # human description (partition ranges, alignment)
    depends_on: Tuple[int, ...] = ()


@dataclass
class ParallelPlan:
    """A physical plan cut into fragments, ready for the scheduler.

    Fragments are topologically ordered: every producer precedes its
    consumers and the final (serial-tail) fragment comes last.  A plan
    with a single fragment means nothing was splittable — the executor
    falls back to the plain serial path."""

    fragments: List[Fragment]
    workers: int
    scheme_name: str
    serial: object       # the PhysicalPlan this was derived from
    notes: List[str] = field(default_factory=list)

    @property
    def final(self) -> Fragment:
        return self.fragments[-1]

    @property
    def is_parallel(self) -> bool:
        return len(self.fragments) > 1

    def operators(self):
        for fragment in self.fragments:
            yield from walk_physical(fragment.root)


def _fragment_deps(root: PhysicalOp) -> Tuple[int, ...]:
    return tuple(
        sorted(
            {
                op.source_fragment
                for op in walk_physical(root)
                if isinstance(op, (Exchange, Repartition))
            }
        )
    )


class _FragmentPlanner:
    def __init__(self, workers: int, min_partition_rows: int):
        self.workers = max(int(workers), 1)
        self.min_partition_rows = max(int(min_partition_rows), 1)
        self.fragments: List[Fragment] = []
        self.notes: List[str] = []

    # ------------------------------------------------------------ building
    def _add(self, root: PhysicalOp, role: str, note: str) -> int:
        index = len(self.fragments)
        self.fragments.append(
            Fragment(index=index, root=root, role=role, note=note,
                     depends_on=_fragment_deps(root))
        )
        return index

    # ------------------------------------------------------------- walking
    def visit(self, op: PhysicalOp) -> PhysicalOp:
        """Return the serial-tail form of ``op``: splittable subtrees are
        replaced by gathers over newly registered partition fragments."""
        split = self._split(op)
        if split is not None:
            parts, note = split
            sources = [
                self._add(part, "partition", f"partition {i + 1}/{len(parts)}: {note}")
                for i, part in enumerate(parts)
            ]
            exchanges = tuple(
                Exchange(source_fragment=s, partition=i, partitions=len(parts))
                for i, s in enumerate(sources)
            )
            self.notes.append(note)
            return UnionAll(
                inputs=exchanges,
                preserve_order=True,
                rationale=f"gather {len(parts)} partitions ({note})",
            )
        # not splittable as a whole: recurse into the children
        if isinstance(op, (MergeJoin, HashJoin)):
            left, right = self.visit(op.left), self.visit(op.right)
            if left is not op.left or right is not op.right:
                return dataclasses.replace(op, left=left, right=right)
            return op
        child = getattr(op, "input", None)
        if isinstance(child, PhysicalOp):
            new_child = self.visit(child)
            if new_child is not child:
                return dataclasses.replace(op, input=new_child)
        return op

    # ----------------------------------------------------------- splitting
    def _split(self, op: PhysicalOp) -> Optional[Tuple[List[PhysicalOp], str]]:
        """Try to turn ``op`` into per-partition clones; None when the
        subtree must stay serial."""
        if isinstance(op, DeltaMergeScan):
            # merge-on-read scans split along zone boundaries of the
            # *merged* base+delta stream (BDCC only); Plain/PK delta
            # scans stay serial — degrading, never failing
            return self._split_delta_scan(op)
        if isinstance(op, PhysicalScan):
            return self._split_scan(op)
        if isinstance(op, (PhysicalFilter, PhysicalProject)):
            sub = self._split(op.input)
            if sub is None:
                return None
            parts, note = sub
            return [dataclasses.replace(op, input=p) for p in parts], note
        if isinstance(op, (MergeJoin, HashJoin)):  # SandwichJoin included
            return self._split_join(op)
        return None

    @staticmethod
    def _partition_side(op) -> str:
        """The join input whose row order the output follows — the side
        that can be partitioned while the other is broadcast."""
        if isinstance(op, MergeJoin):
            return "left"
        if op.how != "inner":
            return "left"  # left/semi/anti assemble the left side
        return "right" if op.build_side == "left" else "left"

    def _split_join(self, op) -> Optional[Tuple[List[PhysicalOp], str]]:
        side = self._partition_side(op)
        sub = self._split(getattr(op, side))
        if sub is None:
            return None
        parts, note = sub
        other = "right" if side == "left" else "left"
        broadcast = self._add(
            getattr(op, other), "broadcast",
            f"{op.kind} {other} (build) side, shipped to every partition",
        )
        clones = [
            dataclasses.replace(
                op, **{side: part, other: Repartition(source_fragment=broadcast)}
            )
            for part in parts
        ]
        return clones, note

    # --------------------------------------------------- delta scan splits
    def _split_delta_scan(
        self, op: DeltaMergeScan
    ) -> Optional[Tuple[List[PhysicalOp], str]]:
        """Partition a merge-on-read scan along BDCC zone boundaries of
        the merged stream.

        The merged output is ``_bdcc_``-key ordered, and the zone tag is
        the key's top (count-table granularity) bits — so the stream is
        zone-major, and cutting it at zone boundaries gives contiguous
        chunks each fragment can reproduce independently: a fragment
        merges exactly the base rows and delta-run rows whose zones fall
        in its range, with the same stable tie order (base first, runs in
        commit order).  The ordered gather over the fragments is
        therefore bit-identical to the serial merge.
        """
        stored = op.stored
        bdcc = stored.bdcc
        if bdcc is None:
            return None
        rows = op.selected_rows
        if rows is None:
            rows = np.arange(stored.stored_rows, dtype=np.int64)
        delta = stored.delta
        run_sels = list(op.delta_selected)
        total = len(rows) + sum(len(sel) for _, sel in run_sels)
        max_parts = total // self.min_partition_rows
        num_parts = min(self.workers, max_parts)
        if num_parts < 2:
            return None
        shift = np.uint64(bdcc.total_bits - bdcc.granularity)
        base_zones = bdcc.keys[rows] >> shift
        run_zones = [
            (index, delta.runs[index].keys[sel] >> shift) for index, sel in run_sels
        ]
        all_zones = np.concatenate([base_zones] + [z for _, z in run_zones])
        uniq, counts = np.unique(all_zones, return_counts=True)
        if len(uniq) < 2:
            return None
        # cut after the zone whose cumulative row count is nearest each
        # ideal equal-rows position (deterministic, like _pick_cuts)
        cum = np.cumsum(counts)
        boundaries: List[int] = []
        for j in range(1, num_parts):
            ideal = j * total / num_parts
            k = int(np.argmin(np.abs(cum - ideal)))
            zone = int(uniq[k])
            if (not boundaries or zone > boundaries[-1]) and k < len(uniq) - 1:
                boundaries.append(zone)
        if not boundaries:
            return None
        bounds = np.asarray(boundaries, dtype=np.uint64)

        def part_of(zones: np.ndarray) -> np.ndarray:
            return np.searchsorted(bounds, zones, side="left")

        base_part = part_of(base_zones)
        run_parts = [(index, part_of(zones)) for index, zones in run_zones]
        parts: List[PhysicalOp] = []
        n_parts = len(bounds) + 1
        for p in range(n_parts):
            part_rows = rows[base_part == p]
            part_sel = tuple(
                (index, sel[parts_of_run == p])
                for (index, sel), (_, parts_of_run) in zip(run_sels, run_parts)
            )
            part_live = len(part_rows) + sum(len(s) for _, s in part_sel)
            share = f"{part_live} of {total} live rows"
            parts.append(
                dataclasses.replace(
                    op,
                    selected_rows=part_rows,
                    delta_selected=part_sel,
                    est_rows=op.est_rows * part_live / max(total, 1),
                    selection_notes=op.selection_notes
                    + (f"partition {p + 1}/{n_parts} ({share})",),
                    rationale=_extend_rationale(op.rationale, f"zone-aligned {share}"),
                )
            )
        note = (
            f"scan {op.alias}: {len(parts)} zone-aligned base+delta "
            f"partitions over {total} live rows"
        )
        return parts, note

    # --------------------------------------------------------- scan splits
    def _split_scan(self, op: PhysicalScan) -> Optional[Tuple[List[PhysicalOp], str]]:
        stored = op.stored
        rows = op.selected_rows
        total = stored.stored_rows if rows is None else len(rows)
        max_parts = total // self.min_partition_rows
        num_parts = min(self.workers, max_parts)
        if num_parts < 2:
            return None
        positions = np.arange(total, dtype=np.int64) if rows is None else np.asarray(rows)
        if stored.bdcc is not None:
            candidates = self._zone_boundaries(stored, positions)
            alignment = "zone"
        else:
            candidates = self._page_boundaries(stored, op, positions)
            alignment = "page"
        cuts = _pick_cuts(candidates, total, num_parts)
        if not cuts:
            return None
        bounds = [0] + cuts + [total]
        parts: List[PhysicalOp] = []
        for i in range(len(bounds) - 1):
            a, b = bounds[i], bounds[i + 1]
            part_rows = positions[a:b]
            share = f"rows {a}..{b - 1} of {total}"
            parts.append(
                dataclasses.replace(
                    op,
                    selected_rows=part_rows,
                    est_rows=op.est_rows * (b - a) / max(total, 1),
                    selection_notes=op.selection_notes
                    + (f"partition {i + 1}/{len(bounds) - 1} ({share})",),
                    rationale=_extend_rationale(op.rationale, f"{alignment}-aligned {share}"),
                )
            )
        note = (
            f"scan {op.alias}: {len(parts)} {alignment}-aligned partitions "
            f"over {total} rows"
        )
        return parts, note

    @staticmethod
    def _zone_boundaries(stored, positions: np.ndarray) -> np.ndarray:
        """Cut candidates (indices into the selected sequence) where a
        new BDCC zone (count-table group) starts."""
        offsets = np.sort(stored.bdcc.count_table.offsets)
        zone_of = np.searchsorted(offsets, positions, side="right")
        return np.flatnonzero(np.diff(zone_of) != 0) + 1

    @staticmethod
    def _page_boundaries(stored, op: PhysicalScan, positions: np.ndarray) -> np.ndarray:
        """Cut candidates where the widest demanded column crosses a
        page boundary, so partition IO stays page-granular."""
        widest = max(
            (stored.stored_bytes_per_value(c) for c in op.demanded), default=8.0
        )
        rows_per_page = max(stored.page_model.rows_per_page(widest), 1)
        return np.flatnonzero(np.diff(positions // rows_per_page) != 0) + 1


def _extend_rationale(rationale: str, extra: str) -> str:
    return f"{rationale}, {extra}" if rationale else extra


def _pick_cuts(candidates: np.ndarray, total: int, num_parts: int) -> List[int]:
    """Choose up to ``num_parts - 1`` strictly increasing cut positions
    from the aligned candidates, each nearest to its ideal equal-rows
    position."""
    if len(candidates) == 0:
        return []
    cuts: List[int] = []
    for j in range(1, num_parts):
        ideal = round(j * total / num_parts)
        nearest = int(candidates[np.argmin(np.abs(candidates - ideal))])
        if 0 < nearest < total and (not cuts or nearest > cuts[-1]):
            cuts.append(nearest)
    return cuts


def plan_fragments(
    pplan,
    workers: int,
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
) -> ParallelPlan:
    """Cut a lowered physical plan into partition-parallel fragments.

    Pure and deterministic, like lowering itself: the same
    (plan, workers, min_partition_rows) always yields the same fragment
    structure, and the serial plan's operators are reused wherever no
    split applies (fragments never re-lower)."""
    planner = _FragmentPlanner(workers, min_partition_rows)
    root = planner.visit(pplan.root)
    role = "final" if planner.fragments else "serial"
    note = "serial tail above the gathers" if planner.fragments else "no splittable scan"
    planner._add(root, role, note)
    return ParallelPlan(
        fragments=planner.fragments,
        workers=planner.workers,
        scheme_name=pplan.scheme_name,
        serial=pplan,
        notes=planner.notes,
    )
