"""Fragment planning: split a physical plan along partition boundaries.

The lowering pass emits one serial operator tree; this second (also
pure) pass cuts it into *fragments* — subplans that simulated workers
can execute independently — along the boundaries the storage layer
already maintains:

* **BDCC tables** split at *zone* boundaries (count-table group starts):
  the same ranges sandwich operators exploit are independently scannable
  chunks of the key-sorted storage;
* **Plain/PK tables** split at *page-range* boundaries of the widest
  demanded column, so partition IO stays page-granular.

A split propagates up through *partition-transparent* operators — per-row
Filter/Project, and joins along their order-carrying (probe) side.
Joins themselves split one of two ways:

* **broadcast** (any scheme): the probe side is partitioned and the
  other side becomes a broadcast fragment executed once and shipped to
  every partition via :class:`~repro.parallel.exchange.Repartition`;
* **co-partitioned** (sandwich joins, when the plan's result contracts
  admit it): *both* sides are split along the shared BDCC dimension
  bits the join is sandwiched on.  Each side's subtree runs as producer
  fragments (re-using the ordinary zone-aligned split where possible),
  and every join partition reads them through a rebinning
  :class:`~repro.parallel.exchange.Repartition` that keeps only the
  rows of its bin range — equal join keys imply equal bins, so matches
  are always co-located and the build side is never duplicated.

Pipeline breakers (aggregation, sort, limit) stop the split: partitions
are gathered below them by a :class:`~repro.parallel.exchange.UnionAll`
over :class:`~repro.parallel.exchange.Exchange` leaves, and the
remainder of the plan runs as the **final** serial fragment.  Subtrees
with no splittable scan (or too few rows to be worth a fragment) simply
stay serial — fragmenting never fails, it degrades to the serial plan.

Two result contracts govern the gathers (docs/execution-model.md):

* ordinary splits keep partitions as contiguous ascending storage
  ranges, so the ordered gather is *bit-identical* to the serial stream
  — the basis for the workload oracle checking such parallel plans
  bit-for-bit against serial execution;
* a co-partitioned join's partitions are bin-major, so its gather is
  ``preserve_order=False, canonical=True``: a deterministic canonical
  order (fragment-key concatenation) with the same row multiset as the
  serial plan but not its row order.  The fragmenter only chooses this
  split where the lowering's
  :class:`~repro.planner.propagation.ResultContract` says no ancestor
  requires serial order, and the workload oracle compares such plans
  order-insensitively.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.aggregate import decompose_aggs
from ..execution.operators import (
    DeltaMergeScan,
    HashAgg,
    HashJoin,
    Limit,
    MergeAgg,
    MergeJoin,
    PartialAgg,
    PhysicalFilter,
    PhysicalOp,
    PhysicalProject,
    PhysicalScan,
    SandwichAgg,
    SandwichJoin,
    Sort,
    StreamAgg,
    walk_physical,
)
from .exchange import Exchange, Repartition, UnionAll

__all__ = [
    "Fragment",
    "ParallelPlan",
    "plan_fragments",
    "DEFAULT_MIN_PARTITION_ROWS",
    "MIN_COPARTITION_PARTS",
    "PARTIAL_AGG_SHRINK",
]

#: below this many selected rows a scan is not worth its own fragment.
DEFAULT_MIN_PARTITION_ROWS = 2048

#: the partial-aggregation cost rule: pre-aggregate below the gather
#: only when the estimated group count is at least this many times
#: smaller than the estimated input rows.  High-cardinality groupings
#: (groups ~ input rows) gain nothing from partials — every partition
#: would ship nearly its whole input as "partial" state while paying an
#: extra per-fragment hash table — so they keep the
#: gather-then-aggregate plan.  Worker-count independent on purpose:
#: once a grouping shrinks, it shrinks at every worker count, keeping
#: the makespan monotone in workers (no plan-shape cliff at high counts).
PARTIAL_AGG_SHRINK = 4.0

#: a co-partitioned join needs at least this many bin ranges to beat the
#: broadcast split: the shuffle touches every row of *both* sides, while
#: a 2- or 3-way broadcast split reaches similar concurrency on the
#: probe side alone, without the shuffle and without giving up the
#: bit-identical contract.  Below this the fragmenter falls back to
#: broadcasting the build side.
MIN_COPARTITION_PARTS = 4


@dataclass
class Fragment:
    """One independently executable subplan of a parallel plan.

    ``role`` is one of ``partition`` (one contiguous slice of a split
    stream), ``broadcast`` (a join build side shipped whole), ``source``
    (a producer feeding rebinning Repartition consumers), ``copartition``
    (one bin range of a co-partitioned join), and ``final`` / ``serial``
    for the tail."""

    index: int
    root: PhysicalOp
    role: str
    note: str = ""       # human description (partition ranges, alignment)
    depends_on: Tuple[int, ...] = ()


@dataclass
class ParallelPlan:
    """A physical plan cut into fragments, ready for the scheduler.

    Fragments are topologically ordered: every producer precedes its
    consumers and the final (serial-tail) fragment comes last.  A plan
    with a single fragment means nothing was splittable — the executor
    falls back to the plain serial path."""

    fragments: List[Fragment]
    workers: int
    scheme_name: str
    serial: object       # the PhysicalPlan this was derived from
    notes: List[str] = field(default_factory=list)

    @property
    def final(self) -> Fragment:
        return self.fragments[-1]

    @property
    def is_parallel(self) -> bool:
        return len(self.fragments) > 1

    @property
    def reorders(self) -> bool:
        """True when this plan contains a reordering exchange (a
        co-partitioned join's canonical gather): its result is the same
        multiset as the serial plan's but in canonical — not serial —
        row order, so comparisons against serial must be
        order-insensitive."""
        for op in self.operators():
            if isinstance(op, UnionAll) and not op.preserve_order:
                return True
            if isinstance(op, Repartition) and op.mode == "rebin":
                return True
        return False

    @property
    def reaggregates(self) -> bool:
        """True when this plan pre-aggregates below the gather (a
        MergeAgg serial tail over per-fragment PartialAgg): row *order*
        is still the serial aggregate's key order, but float summation
        order differs, so such plans also carry the order-insensitive
        (tolerance) contract rather than the bit-identical one."""
        return any(isinstance(op, MergeAgg) for op in self.operators())

    def operators(self):
        for fragment in self.fragments:
            yield from walk_physical(fragment.root)


def _fragment_deps(root: PhysicalOp) -> Tuple[int, ...]:
    sources = set()
    for op in walk_physical(root):
        if isinstance(op, Exchange):
            sources.add(op.source_fragment)
        elif isinstance(op, Repartition):
            if op.mode == "rebin":
                sources.update(op.source_fragments)
            else:
                sources.add(op.source_fragment)
    return tuple(sorted(sources))


@dataclass
class _Split:
    """Outcome of one successful split: the per-partition operator
    clones, a human note, whether gathering them in order reproduces the
    serial stream (``ordered``), and the fragment role they take."""

    parts: List[PhysicalOp]
    note: str
    ordered: bool = True
    role: str = "partition"


class _FragmentPlanner:
    def __init__(
        self,
        workers: int,
        min_partition_rows: int,
        contracts: Optional[Dict[int, object]] = None,
        enable_copartition: bool = True,
        enable_partial_agg: bool = True,
    ):
        self.workers = max(int(workers), 1)
        self.min_partition_rows = max(int(min_partition_rows), 1)
        self.contracts = contracts or {}
        self.enable_copartition = enable_copartition
        self.enable_partial_agg = enable_partial_agg
        self.fragments: List[Fragment] = []
        self.notes: List[str] = []

    # ------------------------------------------------------------ building
    def _add(self, root: PhysicalOp, role: str, note: str) -> int:
        index = len(self.fragments)
        self.fragments.append(
            Fragment(index=index, root=root, role=role, note=note,
                     depends_on=_fragment_deps(root))
        )
        return index

    # ------------------------------------------------------------- walking
    def visit(self, op: PhysicalOp) -> PhysicalOp:
        """Return the serial-tail form of ``op``: splittable subtrees are
        replaced by gathers over newly registered partition fragments."""
        if isinstance(op, (HashAgg, StreamAgg)):
            rewritten = self._visit_agg(op)
            if rewritten is not None:
                return rewritten
        split = self._split(op)
        if split is not None:
            return self._gather(split)
        # not splittable as a whole: recurse into the children
        if isinstance(op, (MergeJoin, HashJoin)):
            left, right = self.visit(op.left), self.visit(op.right)
            if left is not op.left or right is not op.right:
                return dataclasses.replace(op, left=left, right=right)
            return op
        child = getattr(op, "input", None)
        if isinstance(child, PhysicalOp):
            new_child = self.visit(child)
            if new_child is not child:
                return dataclasses.replace(op, input=new_child)
        return op

    def _gather(self, split: _Split, rationale: str = "") -> UnionAll:
        """Register one fragment per part and return the gather reading
        them, flagged per the split's result contract."""
        parts, note = split.parts, split.note
        sources = [
            self._add(
                part, split.role,
                f"{split.role} {i + 1}/{len(parts)}: {note}",
            )
            for i, part in enumerate(parts)
        ]
        exchanges = tuple(
            Exchange(source_fragment=s, partition=i, partitions=len(parts))
            for i, s in enumerate(sources)
        )
        self.notes.append(note)
        if not rationale:
            if split.ordered:
                rationale = f"gather {len(parts)} partitions ({note})"
            else:
                rationale = (
                    f"canonical gather of {len(parts)} co-partitions ({note}); "
                    "order-insensitive result contract"
                )
        return UnionAll(
            inputs=exchanges,
            preserve_order=split.ordered,
            canonical=not split.ordered,
            rationale=rationale,
        )

    # --------------------------------------------- two-phase aggregation
    def _partial_agg_pays(self, op) -> bool:
        """The cost rule: partials must shrink the exchanged stream —
        estimated groups at least ``PARTIAL_AGG_SHRINK`` times smaller
        than estimated input rows.  Aggregates built outside the
        lowering pass carry no estimates (0.0) and stay on the
        gather-then-aggregate plan."""
        if op.est_input_rows <= 0:
            return False
        return max(op.est_groups, 1.0) * PARTIAL_AGG_SHRINK <= op.est_input_rows

    def _visit_agg(self, op) -> Optional[PhysicalOp]:
        """Two-phase rewrite of a HashAgg/StreamAgg whose input splits:
        each partition fragment pre-aggregates with a :class:`PartialAgg`
        (the decomposed partial specs), the exchange ships the shrunken
        partial streams, and one :class:`MergeAgg` above the gather
        recombines them as the serial tail.

        Gated on (a) the ablation switch, (b) the PR 5 result contract —
        merging changes float summation order, so every ancestor must
        admit the order-insensitive contract, (c) decomposability (no
        ``count_distinct``), and (d) the cost rule.  Returns None to keep
        the classic gather-then-aggregate plan."""
        if not (self.enable_partial_agg and self._reorder_admissible(op)):
            return None
        decomposition = decompose_aggs(op.aggs)
        if decomposition is None or not self._partial_agg_pays(op):
            return None
        sub = self._split(op.input)
        if sub is None:
            return None
        if isinstance(op, StreamAgg) and not sub.ordered:
            # unreachable by construction — a reordering split below a
            # StreamAgg is forbidden by its own ordered-input contract —
            # but degrade to the plain gather rather than trust that
            return dataclasses.replace(op, input=self._gather(sub))
        partial_specs, merges = decomposition
        parts = [
            PartialAgg(
                input=part,
                keys=op.keys,
                aggs=partial_specs,
                rationale="partial pre-aggregation below the gather",
                est_groups=op.est_groups,
                est_input_rows=op.est_input_rows / len(sub.parts),
            )
            for part in sub.parts
        ]
        pre = dataclasses.replace(
            sub,
            parts=parts,
            note=f"{sub.note} + partial pre-aggregation",
            # the gathered stream is partial-state rows, partition-major:
            # not the serial stream in any order — the merge above it
            # re-establishes the aggregate's key order
            ordered=False,
        )
        gather = self._gather(
            pre,
            rationale=(
                f"gather {len(parts)} partial-aggregate partitions; "
                "order-insensitive result contract (merge re-sums)"
            ),
        )
        return MergeAgg(
            input=gather,
            keys=op.keys,
            merges=merges,
            rationale=(
                f"merge of {len(parts)} per-fragment partial aggregates "
                f"(two-phase {op.kind})"
            ),
        )

    # ----------------------------------------------------------- splitting
    def _split(self, op: PhysicalOp) -> Optional[_Split]:
        """Try to turn ``op`` into per-partition clones; None when the
        subtree must stay serial."""
        if isinstance(op, DeltaMergeScan):
            # merge-on-read scans split along zone boundaries of the
            # *merged* base+delta stream (BDCC only); Plain/PK delta
            # scans stay serial — degrading, never failing
            return self._split_delta_scan(op)
        if isinstance(op, PhysicalScan):
            return self._split_scan(op)
        if isinstance(op, (PhysicalFilter, PhysicalProject)):
            sub = self._split(op.input)
            if sub is None:
                return None
            return dataclasses.replace(
                sub,
                parts=[dataclasses.replace(op, input=p) for p in sub.parts],
            )
        if isinstance(op, (MergeJoin, HashJoin)):  # SandwichJoin included
            return self._split_join(op)
        return None

    @staticmethod
    def _partition_side(op) -> str:
        """The join input whose row order the output follows — the side
        that can be partitioned while the other is broadcast."""
        if isinstance(op, MergeJoin):
            return "left"
        if op.how != "inner":
            return "left"  # left/semi/anti assemble the left side
        return "right" if op.build_side == "left" else "left"

    def _split_join(self, op) -> Optional[_Split]:
        if self.enable_copartition and isinstance(op, SandwichJoin):
            split = self._split_join_copartition(op)
            if split is not None:
                return split
        side = self._partition_side(op)
        sub = self._split(getattr(op, side))
        if sub is None:
            return None
        other = "right" if side == "left" else "left"
        broadcast = self._add(
            getattr(op, other), "broadcast",
            f"{op.kind} {other} (build) side, shipped to every partition",
        )
        clones = [
            dataclasses.replace(
                op, **{side: part, other: Repartition(source_fragment=broadcast)}
            )
            for part in sub.parts
        ]
        return dataclasses.replace(sub, parts=clones)

    # ------------------------------------------------- co-partitioned join
    def _reorder_admissible(self, op: PhysicalOp) -> bool:
        contract = self.contracts.get(id(op))
        return bool(contract is not None and contract.reorder_admissible)

    @staticmethod
    def _live_rows(root: PhysicalOp) -> int:
        """Rows-flowing estimate of a join side: live selected rows over
        its scan leaves (base selection plus delta-run selections),
        *stopping at blocking operators* — an aggregation, sort or limit
        emits its (typically small) result, not the rows its scans read,
        so the scans below it must not count toward the side's weight."""
        total = 0
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (HashAgg, SandwichAgg, StreamAgg, Sort, Limit)):
                continue
            if isinstance(node, PhysicalScan):
                rows = node.selected_rows
                total += node.stored.stored_rows if rows is None else len(rows)
                if isinstance(node, DeltaMergeScan):
                    total += sum(len(sel) for _, sel in node.delta_selected)
            stack.extend(node.children())
        return total

    def _rebin_sources(self, side: PhysicalOp) -> Tuple[int, ...]:
        """Register one join side's producer fragments: its ordinary
        split when one applies (zone-/page-aligned scan partitions, or a
        nested join's partitions), else the whole serial subtree as a
        single source fragment."""
        sub = self._split(side)
        if sub is None:
            return (self._add(side, "source", "repartition source: serial subtree"),)
        self.notes.append(sub.note)
        return tuple(
            self._add(
                part, "source",
                f"repartition source {i + 1}/{len(sub.parts)}: {sub.note}",
            )
            for i, part in enumerate(sub.parts)
        )

    def _split_join_copartition(self, op: SandwichJoin) -> Optional[_Split]:
        """Split *both* join sides along the shared BDCC dimension bits
        the join is sandwiched on.

        Applicability: the join carries granted sandwich pairs (equal
        join keys imply equal dimension bins on both sides — the same
        precondition sandwiched execution rests on, here load-bearing
        for correctness: matches must co-locate), the plan's result
        contracts admit a reordering at this node, and both sides
        together carry enough live rows to be worth the shuffle.  Each
        side becomes producer fragments (re-using the ordinary split
        where possible) consumed by per-partition rebinning
        :class:`~repro.parallel.exchange.Repartition` leaves."""
        if not self._reorder_admissible(op):
            return None
        pairs = [(l, r, g) for l, r, g in op.pairs if g > 0]
        total_bits = sum(g for _, _, g in pairs)
        if not pairs or total_bits <= 0:
            return None
        left_live = self._live_rows(op.left)
        right_live = self._live_rows(op.right)
        if min(left_live, right_live) < 2 * self.min_partition_rows:
            # a small side is cheaper to broadcast than to shuffle: the
            # rebin touches every row of *both* sides, and a side too
            # small for its own producers to split would serialise the
            # whole shuffle behind one fragment anyway
            return None
        live = left_live + right_live
        num_parts = min(
            self.workers, 1 << total_bits, live // self.min_partition_rows
        )
        if num_parts < MIN_COPARTITION_PARTS:
            return None
        # cost-based strategy choice vs the broadcast split: broadcasting
        # repeats the whole build (hash construction, memory) in every
        # partition, the shuffle touches every row of both sides once —
        # co-partition only when the duplicated build work outweighs it.
        # Q3's order-side build is half the join and wins at 4 workers;
        # Q18's build is small next to its LINEITEM probe, so the rebin
        # pays off only at higher worker counts.
        build_live = left_live if op.build_side == "left" else right_live
        if build_live * (num_parts - 1) <= live:
            return None
        left_sources = self._rebin_sources(op.left)
        right_sources = self._rebin_sources(op.right)
        left_on = tuple((l.column, l.bits, g) for l, _, g in pairs)
        right_on = tuple((r.column, r.bits, g) for _, r, g in pairs)
        dims = "+".join(l.dimension.name for l, _, _ in pairs)
        clones: List[PhysicalOp] = []
        for p in range(num_parts):
            leaves = {
                "left": Repartition(
                    source_fragments=left_sources, mode="rebin", on=left_on,
                    partition=p, partitions=num_parts, total_bits=total_bits,
                    rationale=f"left side rows of bin range {p + 1}/{num_parts}",
                ),
                "right": Repartition(
                    source_fragments=right_sources, mode="rebin", on=right_on,
                    partition=p, partitions=num_parts, total_bits=total_bits,
                    rationale=f"right side rows of bin range {p + 1}/{num_parts}",
                ),
            }
            clones.append(dataclasses.replace(op, **leaves))
        note = (
            f"co-partitioned {op.kind} on {dims} @{total_bits} bits: "
            f"{num_parts} bin ranges over {live} live rows (both sides split)"
        )
        return _Split(clones, note, ordered=False, role="copartition")

    # --------------------------------------------------- delta scan splits
    def _split_delta_scan(self, op: DeltaMergeScan) -> Optional[_Split]:
        """Partition a merge-on-read scan along BDCC zone boundaries of
        the merged stream.

        The merged output is ``_bdcc_``-key ordered, and the zone tag is
        the key's top (count-table granularity) bits — so the stream is
        zone-major, and cutting it at zone boundaries gives contiguous
        chunks each fragment can reproduce independently: a fragment
        merges exactly the base rows and delta-run rows whose zones fall
        in its range, with the same stable tie order (base first, runs in
        commit order).  The ordered gather over the fragments is
        therefore bit-identical to the serial merge.
        """
        stored = op.stored
        bdcc = stored.bdcc
        if bdcc is None:
            return None
        rows = op.selected_rows
        if rows is None:
            rows = np.arange(stored.stored_rows, dtype=np.int64)
        delta = stored.delta
        run_sels = list(op.delta_selected)
        total = len(rows) + sum(len(sel) for _, sel in run_sels)
        max_parts = total // self.min_partition_rows
        num_parts = min(self.workers, max_parts)
        if num_parts < 2:
            return None
        shift = np.uint64(bdcc.total_bits - bdcc.granularity)
        base_zones = bdcc.keys[rows] >> shift
        run_zones = [
            (index, delta.runs[index].keys[sel] >> shift) for index, sel in run_sels
        ]
        all_zones = np.concatenate([base_zones] + [z for _, z in run_zones])
        uniq, counts = np.unique(all_zones, return_counts=True)
        if len(uniq) < 2:
            return None
        # cut after the zone whose cumulative row count is nearest each
        # ideal equal-rows position (deterministic, like _pick_cuts)
        cum = np.cumsum(counts)
        boundaries: List[int] = []
        for j in range(1, num_parts):
            ideal = j * total / num_parts
            k = int(np.argmin(np.abs(cum - ideal)))
            zone = int(uniq[k])
            if (not boundaries or zone > boundaries[-1]) and k < len(uniq) - 1:
                boundaries.append(zone)
        if not boundaries:
            return None
        bounds = np.asarray(boundaries, dtype=np.uint64)

        def part_of(zones: np.ndarray) -> np.ndarray:
            return np.searchsorted(bounds, zones, side="left")

        base_part = part_of(base_zones)
        run_parts = [(index, part_of(zones)) for index, zones in run_zones]
        parts: List[PhysicalOp] = []
        n_parts = len(bounds) + 1
        for p in range(n_parts):
            part_rows = rows[base_part == p]
            part_sel = tuple(
                (index, sel[parts_of_run == p])
                for (index, sel), (_, parts_of_run) in zip(run_sels, run_parts)
            )
            part_live = len(part_rows) + sum(len(s) for _, s in part_sel)
            share = f"{part_live} of {total} live rows"
            parts.append(
                dataclasses.replace(
                    op,
                    selected_rows=part_rows,
                    delta_selected=part_sel,
                    est_rows=op.est_rows * part_live / max(total, 1),
                    selection_notes=op.selection_notes
                    + (f"partition {p + 1}/{n_parts} ({share})",),
                    rationale=_extend_rationale(op.rationale, f"zone-aligned {share}"),
                )
            )
        note = (
            f"scan {op.alias}: {len(parts)} zone-aligned base+delta "
            f"partitions over {total} live rows"
        )
        return _Split(parts, note)

    # --------------------------------------------------------- scan splits
    def _split_scan(self, op: PhysicalScan) -> Optional[_Split]:
        stored = op.stored
        rows = op.selected_rows
        total = stored.stored_rows if rows is None else len(rows)
        max_parts = total // self.min_partition_rows
        num_parts = min(self.workers, max_parts)
        if num_parts < 2:
            return None
        positions = np.arange(total, dtype=np.int64) if rows is None else np.asarray(rows)
        if stored.bdcc is not None:
            candidates = self._zone_boundaries(stored, positions)
            alignment = "zone"
        else:
            candidates = self._page_boundaries(stored, op, positions)
            alignment = "page"
        cuts = _pick_cuts(candidates, total, num_parts)
        if not cuts:
            return None
        bounds = [0] + cuts + [total]
        parts: List[PhysicalOp] = []
        for i in range(len(bounds) - 1):
            a, b = bounds[i], bounds[i + 1]
            part_rows = positions[a:b]
            share = f"rows {a}..{b - 1} of {total}"
            parts.append(
                dataclasses.replace(
                    op,
                    selected_rows=part_rows,
                    est_rows=op.est_rows * (b - a) / max(total, 1),
                    selection_notes=op.selection_notes
                    + (f"partition {i + 1}/{len(bounds) - 1} ({share})",),
                    rationale=_extend_rationale(op.rationale, f"{alignment}-aligned {share}"),
                )
            )
        note = (
            f"scan {op.alias}: {len(parts)} {alignment}-aligned partitions "
            f"over {total} rows"
        )
        return _Split(parts, note)

    @staticmethod
    def _zone_boundaries(stored, positions: np.ndarray) -> np.ndarray:
        """Cut candidates (indices into the selected sequence) where a
        new BDCC zone (count-table group) starts."""
        offsets = np.sort(stored.bdcc.count_table.offsets)
        zone_of = np.searchsorted(offsets, positions, side="right")
        return np.flatnonzero(np.diff(zone_of) != 0) + 1

    @staticmethod
    def _page_boundaries(stored, op: PhysicalScan, positions: np.ndarray) -> np.ndarray:
        """Cut candidates where the widest demanded column crosses a
        page boundary, so partition IO stays page-granular."""
        widest = max(
            (stored.stored_bytes_per_value(c) for c in op.demanded), default=8.0
        )
        rows_per_page = max(stored.page_model.rows_per_page(widest), 1)
        return np.flatnonzero(np.diff(positions // rows_per_page) != 0) + 1


def _extend_rationale(rationale: str, extra: str) -> str:
    return f"{rationale}, {extra}" if rationale else extra


def _pick_cuts(candidates: np.ndarray, total: int, num_parts: int) -> List[int]:
    """Choose up to ``num_parts - 1`` strictly increasing cut positions
    from the aligned candidates, each nearest to its ideal equal-rows
    position."""
    if len(candidates) == 0:
        return []
    cuts: List[int] = []
    for j in range(1, num_parts):
        ideal = round(j * total / num_parts)
        nearest = int(candidates[np.argmin(np.abs(candidates - ideal))])
        if 0 < nearest < total and (not cuts or nearest > cuts[-1]):
            cuts.append(nearest)
    return cuts


def plan_fragments(
    pplan,
    workers: int,
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
    enable_copartition: bool = True,
    enable_partial_agg: bool = True,
) -> ParallelPlan:
    """Cut a lowered physical plan into partition-parallel fragments.

    Pure and deterministic, like lowering itself: the same
    ``(plan, workers, min_partition_rows, enable_copartition,
    enable_partial_agg)`` always yields the same fragment structure, and
    the serial plan's operators are reused wherever no split applies
    (fragments never re-lower).

    Args:
        pplan: the lowered :class:`~repro.planner.lowering.PhysicalPlan`.
            Its ``contracts`` (result-contract map from lowering) gate
            co-partitioned join splits and partial-aggregation rewrites;
            when absent they are recomputed from the operator tree.
        workers: simulated worker count (clamped to >= 1); also the
            maximum number of partitions any single split produces.
        min_partition_rows: scans (and co-partitioned joins, counting
            both sides) below this many live rows stay serial.
        enable_copartition: allow the reordering co-partitioned join
            split; with False every parallelised join broadcasts its
            build side.
        enable_partial_agg: allow the two-phase aggregation rewrite
            (per-fragment PartialAgg below the exchange, MergeAgg above
            it); with False every parallel aggregate gathers first.
            With both switches off every parallel plan keeps the
            bit-identical contract.
    """
    contracts = getattr(pplan, "contracts", None)
    if contracts is None and (enable_copartition or enable_partial_agg):
        from ..planner.propagation import compute_order_contracts

        contracts = compute_order_contracts(pplan.root)
    planner = _FragmentPlanner(
        workers, min_partition_rows,
        contracts=contracts, enable_copartition=enable_copartition,
        enable_partial_agg=enable_partial_agg,
    )
    root = planner.visit(pplan.root)
    role = "final" if planner.fragments else "serial"
    note = "serial tail above the gathers" if planner.fragments else "no splittable scan"
    planner._add(root, role, note)
    return ParallelPlan(
        fragments=planner.fragments,
        workers=planner.workers,
        scheme_name=pplan.scheme_name,
        serial=pplan,
        notes=planner.notes,
    )
