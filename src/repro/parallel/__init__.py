"""Partition-parallel execution: the sixth pillar.

BDCC co-clustering is a partitioning scheme: the zone ranges that let
sandwich operators cut joins and aggregations into independent chunks
also make those chunks *independently executable*.  This package turns
one lowered physical plan into zone-/page-aligned plan fragments
(:mod:`repro.parallel.fragments`), connects them with typed exchange
operators (:mod:`repro.parallel.exchange`) and runs them on *k*
simulated workers under a deterministic dependency-aware scheduler
(:mod:`repro.parallel.scheduler`) that reports wall clock as the
makespan over worker timelines.  Where the fragments *actually* execute
is a pluggable backend (:mod:`repro.parallel.backends`): in-process
under the simulated scheduler (the default), or on a real
``multiprocessing`` pool over shared-memory column exports
(``ExecutionOptions(backend="process")``), which records measured
wall clock next to the simulated charges.

Results follow one of two explicit contracts (docs/execution-model.md):
plans without a reordering exchange gather contiguous storage ranges in
order and are **bit-identical** to serial execution, which the workload
oracle checks bit-for-bit across worker counts; plans with a
**co-partitioned join** — both sides split along shared BDCC dimension
bits through rebinning :class:`~repro.parallel.exchange.Repartition`
leaves, where the lowering's result contracts
(:func:`~repro.planner.propagation.compute_order_contracts`) admit it —
gather in a deterministic *canonical* order instead and are
**order-insensitive**: the same row multiset as serial, compared as
normalized multisets by the oracle.
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SharedArrayStore,
    SimulatedBackend,
    create_backend,
)
from .exchange import Exchange, Repartition, UnionAll, concat_relations, rebin_ids
from .fragments import (
    DEFAULT_MIN_PARTITION_ROWS,
    MIN_COPARTITION_PARTS,
    Fragment,
    ParallelPlan,
    plan_fragments,
)
from .scheduler import (
    FragmentWork,
    ScheduledFragment,
    concurrent_peak,
    execute_fragments,
    merge_parallel_metrics,
    run_parallel,
    simulate_schedule,
)

__all__ = [
    "Exchange",
    "Repartition",
    "UnionAll",
    "concat_relations",
    "rebin_ids",
    "DEFAULT_MIN_PARTITION_ROWS",
    "MIN_COPARTITION_PARTS",
    "Fragment",
    "ParallelPlan",
    "plan_fragments",
    "FragmentWork",
    "ScheduledFragment",
    "concurrent_peak",
    "execute_fragments",
    "merge_parallel_metrics",
    "run_parallel",
    "simulate_schedule",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SimulatedBackend",
    "ProcessBackend",
    "SharedArrayStore",
    "create_backend",
]
