"""Partition-parallel execution: the sixth pillar.

BDCC co-clustering is a partitioning scheme: the zone ranges that let
sandwich operators cut joins and aggregations into independent chunks
also make those chunks *independently executable*.  This package turns
one lowered physical plan into zone-/page-aligned plan fragments
(:mod:`repro.parallel.fragments`), connects them with typed exchange
operators (:mod:`repro.parallel.exchange`) and runs them on *k*
simulated workers under a deterministic dependency-aware scheduler
(:mod:`repro.parallel.scheduler`) that reports wall clock as the
makespan over worker timelines.

Results are bit-identical to serial execution by construction —
fragments partition streams into contiguous storage ranges gathered in
order — which the workload oracle checks bit-for-bit across worker
counts.
"""

from .exchange import Exchange, Repartition, UnionAll, concat_relations
from .fragments import (
    DEFAULT_MIN_PARTITION_ROWS,
    Fragment,
    ParallelPlan,
    plan_fragments,
)
from .scheduler import (
    FragmentWork,
    ScheduledFragment,
    concurrent_peak,
    run_parallel,
    simulate_schedule,
)

__all__ = [
    "Exchange",
    "Repartition",
    "UnionAll",
    "concat_relations",
    "DEFAULT_MIN_PARTITION_ROWS",
    "Fragment",
    "ParallelPlan",
    "plan_fragments",
    "FragmentWork",
    "ScheduledFragment",
    "concurrent_peak",
    "run_parallel",
    "simulate_schedule",
]
