"""Deterministic multi-worker scheduling of plan fragments.

Execution is split from timing, mirroring the engine's simulation
philosophy (results are exact, time is modelled):

1. **Run** every fragment once, in topological order, each with its own
   :class:`~repro.execution.metrics.ExecutionMetrics` — producing exact
   results and the fragment's *charged* (uncontended) IO/CPU seconds.
   Results flow between fragments through the context's
   ``fragment_results`` map, never recomputed.
2. **Schedule** the fragments onto *k* simulated workers with
   dependency-aware list dispatch (longest fragment first, index as the
   deterministic tie-break).  The event-driven timeline models each
   fragment as an IO phase followed by a CPU phase; concurrent IO
   phases share the disk according to
   :meth:`~repro.storage.io_model.DiskModel.stream_rate`, so a device
   with 4 parallel streams serves 4 scans at full speed and stretches 8.
   Wall clock is the **makespan** over worker timelines.
3. **Merge**: query totals are the *sums* over fragments (so exclusive
   per-operator actuals still sum to totals), the makespan becomes
   ``metrics.makespan_seconds``, and peak memory is recomputed as the
   peak of *concurrently live* footprints: overlapping fragments'
   reservation peaks plus exchanged result buffers held from a
   producer's finish until its last consumer finishes.

Shuffle accounting (co-partitioned joins): a producer feeding rebinning
:class:`~repro.parallel.exchange.Repartition` consumers has its whole
output buffered like any exchange — the buffer lives from the producer's
finish until the *last* bin-range consumer is done, so the concurrent
peak sees the full shuffled volume — and every consumer charges the
modelled transfer inside its own fragment: per-received-row re-binning
CPU plus :class:`~repro.storage.io_model.DiskModel` IO for the bucket it
keeps (one access per producer).  Those charges land in the consumer's
IO/CPU phases, so the shuffle competes for disk streams and shows up in
the makespan exactly like scan IO does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..execution.cost import CostModel
from ..execution.metrics import (
    ExecutionMetrics,
    FragmentActuals,
    merge_operator_actuals,
)
from ..execution.operators import ExecutionContext
from ..execution.relation import Relation
from ..observe.profiling import profile_call
from ..storage.io_model import DiskModel
from .fragments import ParallelPlan

__all__ = [
    "FragmentWork",
    "ScheduledFragment",
    "TimelineSimulator",
    "simulate_schedule",
    "concurrent_peak",
    "execute_fragments",
    "merge_parallel_metrics",
    "run_parallel",
]

_EPS = 1e-15


@dataclass
class FragmentWork:
    """Scheduling input: one fragment's charged resource demands."""

    index: int
    io_seconds: float
    cpu_seconds: float
    depends_on: Tuple[int, ...] = ()


@dataclass
class ScheduledFragment:
    """Scheduling output: one fragment's place on the timeline."""

    index: int
    worker: int = -1
    ready_seconds: float = 0.0
    start_seconds: float = 0.0
    io_end_seconds: float = 0.0
    end_seconds: float = 0.0


class TimelineSimulator:
    """Online form of the deterministic list scheduler.

    The batch :func:`simulate_schedule` places a *closed* set of works;
    the serving layer (``repro.serving``) needs the same timeline rules
    while work keeps arriving — fragments of newly admitted queries,
    refresh-commit work, background compaction.  This class keeps the
    identical semantics — among ready works the one with the highest
    priority first (default: most total work, ties by index) onto the
    lowest-numbered free worker; concurrent IO phases share the disk
    through ``stream_rate``; phase finishes processed in index order —
    but exposes an incremental interface: :meth:`add_works` registers
    work at the current instant, :meth:`run_until` advances the clock to
    the next completion (or a caller-supplied horizon), and the caller
    reacts to completions by adding more work.  ``simulate_schedule`` is
    a thin wrapper, so the single-query timing model and the multi-query
    serving timeline can never drift apart.
    """

    def __init__(
        self,
        workers: int,
        streams: int = 1,
        stream_rate: Optional[Callable[[int], float]] = None,
        priority: Optional[Callable[[FragmentWork], Tuple]] = None,
    ):
        self.workers = max(int(workers), 1)
        if stream_rate is None:
            stream_rate = DiskModel(
                parallel_streams=max(int(streams), 1)
            ).stream_rate
        self._stream_rate = stream_rate
        self._priority_of = priority or (
            lambda w: (-(w.io_seconds + w.cpu_seconds), w.index)
        )
        self.now = 0.0
        self.works: Dict[int, FragmentWork] = {}
        self.slots: Dict[int, ScheduledFragment] = {}
        self._remaining_deps: Dict[int, set] = {}
        self._dependents: Dict[int, List[int]] = {}
        self._ready: List[int] = []
        self._free: List[int] = list(range(self.workers))
        #: index -> [phase ("io"|"cpu"), remaining seconds, worker]
        self._running: Dict[int, list] = {}
        self._completed: set = set()
        self.makespan = 0.0

    # ------------------------------------------------------------ state
    @property
    def pending(self) -> int:
        """Registered works not yet completed."""
        return len(self.works) - len(self._completed)

    @property
    def idle(self) -> bool:
        return not self._running and not self._ready

    def _priority(self, index: int) -> Tuple:
        return self._priority_of(self.works[index])

    # ------------------------------------------------------------ input
    def add_works(self, works: List[FragmentWork]) -> None:
        """Register works at the current instant.  ``depends_on`` may
        reference works in the same batch, earlier batches, or already
        completed ones; indices must be unique across the timeline's
        whole life."""
        for w in works:
            if w.index in self.works:
                raise ValueError(f"duplicate work index {w.index}")
            self.works[w.index] = w
            self.slots[w.index] = ScheduledFragment(
                index=w.index, ready_seconds=self.now
            )
            deps = {d for d in w.depends_on if d not in self._completed}
            self._remaining_deps[w.index] = deps
            for dep in deps:
                self._dependents.setdefault(dep, []).append(w.index)
            if not deps:
                self._ready.append(w.index)
        self._ready.sort(key=self._priority)

    # --------------------------------------------------------- stepping
    def _dispatch(self) -> None:
        while self._free and self._ready:
            index = self._ready.pop(0)
            worker = self._free.pop(0)
            w = self.works[index]
            slot = self.slots[index]
            slot.worker = worker
            slot.start_seconds = self.now
            if w.io_seconds > _EPS:
                self._running[index] = ["io", w.io_seconds, worker]
            else:
                slot.io_end_seconds = self.now
                self._running[index] = ["cpu", w.cpu_seconds, worker]

    def _next_step(self) -> Tuple[float, float]:
        """The ``(step, io rate)`` to the next phase finish among the
        currently running works (dispatch must already have happened)."""
        active_io = sum(1 for state in self._running.values() if state[0] == "io")
        rate = max(self._stream_rate(active_io), 1e-12) if active_io else 1.0
        step = min(
            state[1] / rate if state[0] == "io" else state[1]
            for state in self._running.values()
        )
        return max(step, 0.0), rate

    def next_event_time(self) -> Optional[float]:
        """The instant of the next phase finish, or ``None`` if nothing
        is running (after dispatching anything ready).  Exact: the
        active set — hence the shared-disk rate — cannot change before
        it."""
        self._dispatch()
        if not self._running:
            return None
        step, _ = self._next_step()
        return self.now + step

    def run_until(self, until: Optional[float] = None) -> List[int]:
        """Advance the clock to the first instant at which one or more
        works *complete* (internal IO->CPU phase transitions do not
        stop the run), or to ``until``, whichever comes first; ``None``
        means run until idle.  Returns the indices completed at the
        stopping instant in index order (empty when ``until`` or
        idleness was reached first).  The clock never exceeds
        ``until``."""
        while True:
            self._dispatch()
            if not self._running:
                if until is not None and self.now < until:
                    self.now = until
                return []
            step, rate = self._next_step()
            target = self.now + step
            if until is not None and target > until:
                partial = until - self.now
                if partial > 0.0:
                    for state in self._running.values():
                        state[1] -= partial * (
                            rate if state[0] == "io" else 1.0
                        )
                    self.now = until
                return []
            self.now = target
            finished_phase = []
            for index, state in self._running.items():
                state[1] -= step * (rate if state[0] == "io" else 1.0)
                if state[1] <= _EPS:
                    finished_phase.append(index)
            completed: List[int] = []
            for index in sorted(finished_phase):
                phase, _, worker = self._running[index]
                slot = self.slots[index]
                if phase == "io":
                    slot.io_end_seconds = self.now
                    cpu = self.works[index].cpu_seconds
                    if cpu > _EPS:
                        self._running[index] = ["cpu", cpu, worker]
                        continue
                slot.end_seconds = self.now
                del self._running[index]
                self._completed.add(index)
                completed.append(index)
                self._free.append(worker)
                self._free.sort()
                for dependent in self._dependents.get(index, ()):
                    deps = self._remaining_deps[dependent]
                    deps.discard(index)
                    if not deps and dependent not in self._running:
                        self.slots[dependent].ready_seconds = self.now
                        self._ready.append(dependent)
                self._ready.sort(key=self._priority)
            if completed:
                self.makespan = max(self.makespan, self.now)
                return completed

    def run_to_idle(self) -> List[int]:
        """Run until nothing is runnable, returning every completion in
        completion order.  Raises if registered works can never run
        (dependency cycle)."""
        completed: List[int] = []
        while True:
            batch = self.run_until(None)
            if not batch:
                break
            completed.extend(batch)
        if self.pending and self.idle:
            raise RuntimeError(
                "fragment dependency cycle: nothing runnable"
            )
        return completed

    def busy_seconds(self) -> float:
        """Total worker-occupied seconds over completed works."""
        return sum(
            self.slots[i].end_seconds - self.slots[i].start_seconds
            for i in self._completed
        )


def simulate_schedule(
    works: List[FragmentWork],
    workers: int,
    streams: int = 1,
    stream_rate: Optional[Callable[[int], float]] = None,
) -> Tuple[List[ScheduledFragment], float]:
    """Deterministically place fragments on worker timelines.

    Dispatch is list scheduling: among ready fragments, the one with the
    most remaining work first (ties by index), onto the lowest-numbered
    free worker.  IO phases of concurrently running fragments share the
    disk through ``stream_rate`` — the per-stream rate as a function of
    the number of active streams, defaulting to
    :meth:`~repro.storage.io_model.DiskModel.stream_rate` of a device
    with ``streams`` parallel streams.  Returns the per-fragment slots
    and the makespan.  (A thin wrapper over :class:`TimelineSimulator`,
    which serves the same timeline rules incrementally.)"""
    sim = TimelineSimulator(workers, streams=streams, stream_rate=stream_rate)
    sim.add_works(works)
    sim.run_to_idle()
    return [sim.slots[w.index] for w in works], sim.makespan


# --------------------------------------------------------------- memory
def concurrent_peak(intervals: List[Tuple[float, float, float]]) -> float:
    """Peak of overlapping ``(start, end, bytes)`` intervals.  At equal
    timestamps allocations apply before releases, so a handoff (producer
    buffer still live while the consumer starts) counts as overlap."""
    events = []
    for order, (start, end, num_bytes) in enumerate(intervals):
        if num_bytes <= 0.0:
            continue
        events.append((start, 0, order, num_bytes))
        events.append((end, 1, order, -num_bytes))
    events.sort()
    live = peak = 0.0
    for _, _, _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


# -------------------------------------------------------------- running
def execute_fragments(
    plan: ParallelPlan,
    disk: DiskModel,
    costs: CostModel,
    profile: bool = False,
) -> Tuple[Dict[int, Relation], Dict[int, ExecutionMetrics]]:
    """The *run* stage: execute every fragment once, in topological
    order, in the current process — producing exact results and each
    fragment's charged (uncontended) metrics.  Backends that run
    fragments elsewhere (``repro.parallel.backends.ProcessBackend``)
    replace exactly this function; the *time* stage
    (:func:`merge_parallel_metrics`) is shared so the simulated charges
    are identical whichever backend produced the results.  With
    ``profile`` each fragment runs under ``cProfile`` and its top
    functions land on ``metrics.profile`` (passive: charges and results
    are unaffected)."""
    results: Dict[int, Relation] = {}
    fragment_metrics: Dict[int, ExecutionMetrics] = {}
    for fragment in plan.fragments:  # topological by construction
        metrics = ExecutionMetrics()
        ctx = ExecutionContext(disk, costs, metrics, fragment_results=results)
        relation, metrics.profile = profile_call(
            fragment.root.run, ctx, enabled=profile
        )
        ctx.release_all()
        metrics.rows_produced = relation.num_rows
        results[fragment.index] = relation
        fragment_metrics[fragment.index] = metrics
    return results, fragment_metrics


def merge_parallel_metrics(
    plan: ParallelPlan,
    results: Dict[int, Relation],
    fragment_metrics: Dict[int, ExecutionMetrics],
    disk: DiskModel,
) -> Tuple[Relation, ExecutionMetrics]:
    """The *time* stage: place the executed fragments on the simulated
    worker timelines (:func:`simulate_schedule`) and merge their metrics
    into the query's.  Totals are sums over fragments; per-operator
    actuals *accumulate* across fragments (fragmenting clones only the
    spine, so a shared leaf/broadcast operator may have run several
    times under the same identity — see
    :func:`~repro.execution.metrics.merge_operator_actuals`); peak
    memory is the concurrent peak over fragment reservations plus every
    exchanged producer buffer held until its last consumer finishes."""
    works = [
        FragmentWork(
            index=f.index,
            io_seconds=fragment_metrics[f.index].io_seconds,
            cpu_seconds=fragment_metrics[f.index].cpu_seconds,
            depends_on=f.depends_on,
        )
        for f in plan.fragments
    ]
    slots, makespan = simulate_schedule(
        works, plan.workers, stream_rate=disk.stream_rate
    )
    slot_of = {s.index: s for s in slots}

    merged = ExecutionMetrics()
    merged.workers = plan.workers
    merged.makespan_seconds = makespan
    consumers: Dict[int, List[int]] = {}
    for fragment in plan.fragments:
        for dep in fragment.depends_on:
            consumers.setdefault(dep, []).append(fragment.index)

    memory_intervals: List[Tuple[float, float, float]] = []
    #: per-tag live intervals, merged with the same concurrent-peak rule
    #: as the overall footprint (exchange buffers under "exchange").
    tag_intervals: Dict[str, List[Tuple[float, float, float]]] = {}
    for fragment in plan.fragments:
        metrics = fragment_metrics[fragment.index]
        slot = slot_of[fragment.index]
        relation = results[fragment.index]
        merged.charge_io(metrics.io_bytes, metrics.io_accesses, metrics.io_seconds)
        merged.charge_cpu(metrics.cpu_seconds)
        merged.rows_scanned += metrics.rows_scanned
        merged.delta_rows_scanned += metrics.delta_rows_scanned
        for key, value in metrics.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        merged.notes.extend(f"[f{fragment.index}] {note}" for note in metrics.notes)
        merge_operator_actuals(merged.operators, metrics.operators)
        output_bytes = 0.0
        if consumers.get(fragment.index):
            output_bytes = relation.data_bytes()
            reads_end = max(slot_of[c].end_seconds for c in consumers[fragment.index])
            memory_intervals.append((slot.end_seconds, reads_end, output_bytes))
            tag_intervals.setdefault("exchange", []).append(
                (slot.end_seconds, reads_end, output_bytes)
            )
        memory_intervals.append(
            (slot.start_seconds, slot.end_seconds, metrics.memory.peak_bytes)
        )
        for tag, tag_peak in metrics.memory.tag_peaks.items():
            tag_intervals.setdefault(tag, []).append(
                (slot.start_seconds, slot.end_seconds, tag_peak)
            )
        merged.fragments.append(
            FragmentActuals(
                index=fragment.index,
                role=fragment.role,
                description=fragment.note,
                worker=slot.worker,
                depends_on=fragment.depends_on,
                ready_seconds=slot.ready_seconds,
                start_seconds=slot.start_seconds,
                io_end_seconds=slot.io_end_seconds,
                end_seconds=slot.end_seconds,
                io_seconds=metrics.io_seconds,
                cpu_seconds=metrics.cpu_seconds,
                rows_out=relation.num_rows,
                output_bytes=output_bytes,
                peak_memory_bytes=metrics.memory.peak_bytes,
                profile=list(metrics.profile),
            )
        )
    merged.memory.peak_bytes = concurrent_peak(memory_intervals)
    merged.memory.tag_peaks = {
        tag: concurrent_peak(intervals)
        for tag, intervals in tag_intervals.items()
    }
    final = results[plan.final.index]
    merged.rows_produced = final.num_rows
    return final, merged


def run_parallel(
    plan: ParallelPlan,
    disk: DiskModel,
    costs: CostModel,
    profile: bool = False,
) -> Tuple[Relation, ExecutionMetrics]:
    """Execute a fragmented plan on the simulated worker pool and return
    the final fragment's relation plus the merged metrics.

    Deterministic end to end: fragments run once in topological order
    (results are exact and never recomputed), the schedule is the pure
    list dispatch of :func:`simulate_schedule`, and the merged metrics
    satisfy the invariants the tests pin — per-fragment exclusive
    IO/CPU sums equal the query totals, ``makespan_seconds`` lies
    between ``total_seconds / workers`` and ``total_seconds``, and peak
    memory is the concurrent peak over fragment reservations plus every
    exchanged (broadcast, partition gather, or rebin shuffle) producer
    buffer held until its last consumer finishes."""
    results, fragment_metrics = execute_fragments(
        plan, disk, costs, profile=profile
    )
    return merge_parallel_metrics(plan, results, fragment_metrics, disk)
