"""Deterministic multi-worker scheduling of plan fragments.

Execution is split from timing, mirroring the engine's simulation
philosophy (results are exact, time is modelled):

1. **Run** every fragment once, in topological order, each with its own
   :class:`~repro.execution.metrics.ExecutionMetrics` — producing exact
   results and the fragment's *charged* (uncontended) IO/CPU seconds.
   Results flow between fragments through the context's
   ``fragment_results`` map, never recomputed.
2. **Schedule** the fragments onto *k* simulated workers with
   dependency-aware list dispatch (longest fragment first, index as the
   deterministic tie-break).  The event-driven timeline models each
   fragment as an IO phase followed by a CPU phase; concurrent IO
   phases share the disk according to
   :meth:`~repro.storage.io_model.DiskModel.stream_rate`, so a device
   with 4 parallel streams serves 4 scans at full speed and stretches 8.
   Wall clock is the **makespan** over worker timelines.
3. **Merge**: query totals are the *sums* over fragments (so exclusive
   per-operator actuals still sum to totals), the makespan becomes
   ``metrics.makespan_seconds``, and peak memory is recomputed as the
   peak of *concurrently live* footprints: overlapping fragments'
   reservation peaks plus exchanged result buffers held from a
   producer's finish until its last consumer finishes.

Shuffle accounting (co-partitioned joins): a producer feeding rebinning
:class:`~repro.parallel.exchange.Repartition` consumers has its whole
output buffered like any exchange — the buffer lives from the producer's
finish until the *last* bin-range consumer is done, so the concurrent
peak sees the full shuffled volume — and every consumer charges the
modelled transfer inside its own fragment: per-received-row re-binning
CPU plus :class:`~repro.storage.io_model.DiskModel` IO for the bucket it
keeps (one access per producer).  Those charges land in the consumer's
IO/CPU phases, so the shuffle competes for disk streams and shows up in
the makespan exactly like scan IO does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..execution.cost import CostModel
from ..execution.metrics import (
    ExecutionMetrics,
    FragmentActuals,
    merge_operator_actuals,
)
from ..execution.operators import ExecutionContext
from ..execution.relation import Relation
from ..observe.profiling import profile_call
from ..storage.io_model import DiskModel
from .fragments import ParallelPlan

__all__ = [
    "FragmentWork",
    "ScheduledFragment",
    "simulate_schedule",
    "concurrent_peak",
    "execute_fragments",
    "merge_parallel_metrics",
    "run_parallel",
]

_EPS = 1e-15


@dataclass
class FragmentWork:
    """Scheduling input: one fragment's charged resource demands."""

    index: int
    io_seconds: float
    cpu_seconds: float
    depends_on: Tuple[int, ...] = ()


@dataclass
class ScheduledFragment:
    """Scheduling output: one fragment's place on the timeline."""

    index: int
    worker: int = -1
    ready_seconds: float = 0.0
    start_seconds: float = 0.0
    io_end_seconds: float = 0.0
    end_seconds: float = 0.0


def simulate_schedule(
    works: List[FragmentWork],
    workers: int,
    streams: int = 1,
    stream_rate: Optional[Callable[[int], float]] = None,
) -> Tuple[List[ScheduledFragment], float]:
    """Deterministically place fragments on worker timelines.

    Dispatch is list scheduling: among ready fragments, the one with the
    most remaining work first (ties by index), onto the lowest-numbered
    free worker.  IO phases of concurrently running fragments share the
    disk through ``stream_rate`` — the per-stream rate as a function of
    the number of active streams, defaulting to
    :meth:`~repro.storage.io_model.DiskModel.stream_rate` of a device
    with ``streams`` parallel streams.  Returns the per-fragment slots
    and the makespan."""
    workers = max(int(workers), 1)
    if stream_rate is None:
        stream_rate = DiskModel(parallel_streams=max(int(streams), 1)).stream_rate
    slots = {w.index: ScheduledFragment(index=w.index) for w in works}
    remaining_deps = {w.index: set(w.depends_on) for w in works}
    dependents: Dict[int, List[FragmentWork]] = {}
    for w in works:
        for dep in w.depends_on:
            dependents.setdefault(dep, []).append(w)
    by_index = {w.index: w for w in works}

    def priority(index: int) -> Tuple[float, int]:
        w = by_index[index]
        return (-(w.io_seconds + w.cpu_seconds), index)

    ready = sorted(
        (w.index for w in works if not remaining_deps[w.index]), key=priority
    )
    free = list(range(workers))
    #: index -> [phase ("io"|"cpu"), remaining seconds, worker]
    running: Dict[int, list] = {}
    now = 0.0
    done = 0

    while done < len(works):
        while free and ready:
            index = ready.pop(0)
            worker = free.pop(0)
            w = by_index[index]
            slot = slots[index]
            slot.worker = worker
            slot.start_seconds = now
            if w.io_seconds > _EPS:
                running[index] = ["io", w.io_seconds, worker]
            else:
                slot.io_end_seconds = now
                running[index] = ["cpu", w.cpu_seconds, worker]
        if not running:
            raise RuntimeError("fragment dependency cycle: nothing runnable")

        active_io = sum(1 for state in running.values() if state[0] == "io")
        rate = max(stream_rate(active_io), 1e-12) if active_io else 1.0
        step = min(
            state[1] / rate if state[0] == "io" else state[1]
            for state in running.values()
        )
        step = max(step, 0.0)
        now += step
        finished_phase = []
        for index, state in running.items():
            state[1] -= step * (rate if state[0] == "io" else 1.0)
            if state[1] <= _EPS:
                finished_phase.append(index)
        for index in sorted(finished_phase):
            phase, _, worker = running[index]
            slot = slots[index]
            if phase == "io":
                slot.io_end_seconds = now
                cpu = by_index[index].cpu_seconds
                if cpu > _EPS:
                    running[index] = ["cpu", cpu, worker]
                    continue
            slot.end_seconds = now
            del running[index]
            done += 1
            free.append(worker)
            free.sort()
            for dependent in dependents.get(index, ()):
                deps = remaining_deps[dependent.index]
                deps.discard(index)
                if not deps and dependent.index not in running:
                    slots[dependent.index].ready_seconds = now
                    ready.append(dependent.index)
            ready.sort(key=priority)

    makespan = max((s.end_seconds for s in slots.values()), default=0.0)
    return [slots[w.index] for w in works], makespan


# --------------------------------------------------------------- memory
def concurrent_peak(intervals: List[Tuple[float, float, float]]) -> float:
    """Peak of overlapping ``(start, end, bytes)`` intervals.  At equal
    timestamps allocations apply before releases, so a handoff (producer
    buffer still live while the consumer starts) counts as overlap."""
    events = []
    for order, (start, end, num_bytes) in enumerate(intervals):
        if num_bytes <= 0.0:
            continue
        events.append((start, 0, order, num_bytes))
        events.append((end, 1, order, -num_bytes))
    events.sort()
    live = peak = 0.0
    for _, _, _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


# -------------------------------------------------------------- running
def execute_fragments(
    plan: ParallelPlan,
    disk: DiskModel,
    costs: CostModel,
    profile: bool = False,
) -> Tuple[Dict[int, Relation], Dict[int, ExecutionMetrics]]:
    """The *run* stage: execute every fragment once, in topological
    order, in the current process — producing exact results and each
    fragment's charged (uncontended) metrics.  Backends that run
    fragments elsewhere (``repro.parallel.backends.ProcessBackend``)
    replace exactly this function; the *time* stage
    (:func:`merge_parallel_metrics`) is shared so the simulated charges
    are identical whichever backend produced the results.  With
    ``profile`` each fragment runs under ``cProfile`` and its top
    functions land on ``metrics.profile`` (passive: charges and results
    are unaffected)."""
    results: Dict[int, Relation] = {}
    fragment_metrics: Dict[int, ExecutionMetrics] = {}
    for fragment in plan.fragments:  # topological by construction
        metrics = ExecutionMetrics()
        ctx = ExecutionContext(disk, costs, metrics, fragment_results=results)
        relation, metrics.profile = profile_call(
            fragment.root.run, ctx, enabled=profile
        )
        ctx.release_all()
        metrics.rows_produced = relation.num_rows
        results[fragment.index] = relation
        fragment_metrics[fragment.index] = metrics
    return results, fragment_metrics


def merge_parallel_metrics(
    plan: ParallelPlan,
    results: Dict[int, Relation],
    fragment_metrics: Dict[int, ExecutionMetrics],
    disk: DiskModel,
) -> Tuple[Relation, ExecutionMetrics]:
    """The *time* stage: place the executed fragments on the simulated
    worker timelines (:func:`simulate_schedule`) and merge their metrics
    into the query's.  Totals are sums over fragments; per-operator
    actuals *accumulate* across fragments (fragmenting clones only the
    spine, so a shared leaf/broadcast operator may have run several
    times under the same identity — see
    :func:`~repro.execution.metrics.merge_operator_actuals`); peak
    memory is the concurrent peak over fragment reservations plus every
    exchanged producer buffer held until its last consumer finishes."""
    works = [
        FragmentWork(
            index=f.index,
            io_seconds=fragment_metrics[f.index].io_seconds,
            cpu_seconds=fragment_metrics[f.index].cpu_seconds,
            depends_on=f.depends_on,
        )
        for f in plan.fragments
    ]
    slots, makespan = simulate_schedule(
        works, plan.workers, stream_rate=disk.stream_rate
    )
    slot_of = {s.index: s for s in slots}

    merged = ExecutionMetrics()
    merged.workers = plan.workers
    merged.makespan_seconds = makespan
    consumers: Dict[int, List[int]] = {}
    for fragment in plan.fragments:
        for dep in fragment.depends_on:
            consumers.setdefault(dep, []).append(fragment.index)

    memory_intervals: List[Tuple[float, float, float]] = []
    #: per-tag live intervals, merged with the same concurrent-peak rule
    #: as the overall footprint (exchange buffers under "exchange").
    tag_intervals: Dict[str, List[Tuple[float, float, float]]] = {}
    for fragment in plan.fragments:
        metrics = fragment_metrics[fragment.index]
        slot = slot_of[fragment.index]
        relation = results[fragment.index]
        merged.charge_io(metrics.io_bytes, metrics.io_accesses, metrics.io_seconds)
        merged.charge_cpu(metrics.cpu_seconds)
        merged.rows_scanned += metrics.rows_scanned
        merged.delta_rows_scanned += metrics.delta_rows_scanned
        for key, value in metrics.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        merged.notes.extend(f"[f{fragment.index}] {note}" for note in metrics.notes)
        merge_operator_actuals(merged.operators, metrics.operators)
        output_bytes = 0.0
        if consumers.get(fragment.index):
            output_bytes = relation.data_bytes()
            reads_end = max(slot_of[c].end_seconds for c in consumers[fragment.index])
            memory_intervals.append((slot.end_seconds, reads_end, output_bytes))
            tag_intervals.setdefault("exchange", []).append(
                (slot.end_seconds, reads_end, output_bytes)
            )
        memory_intervals.append(
            (slot.start_seconds, slot.end_seconds, metrics.memory.peak_bytes)
        )
        for tag, tag_peak in metrics.memory.tag_peaks.items():
            tag_intervals.setdefault(tag, []).append(
                (slot.start_seconds, slot.end_seconds, tag_peak)
            )
        merged.fragments.append(
            FragmentActuals(
                index=fragment.index,
                role=fragment.role,
                description=fragment.note,
                worker=slot.worker,
                depends_on=fragment.depends_on,
                ready_seconds=slot.ready_seconds,
                start_seconds=slot.start_seconds,
                io_end_seconds=slot.io_end_seconds,
                end_seconds=slot.end_seconds,
                io_seconds=metrics.io_seconds,
                cpu_seconds=metrics.cpu_seconds,
                rows_out=relation.num_rows,
                output_bytes=output_bytes,
                peak_memory_bytes=metrics.memory.peak_bytes,
                profile=list(metrics.profile),
            )
        )
    merged.memory.peak_bytes = concurrent_peak(memory_intervals)
    merged.memory.tag_peaks = {
        tag: concurrent_peak(intervals)
        for tag, intervals in tag_intervals.items()
    }
    final = results[plan.final.index]
    merged.rows_produced = final.num_rows
    return final, merged


def run_parallel(
    plan: ParallelPlan,
    disk: DiskModel,
    costs: CostModel,
    profile: bool = False,
) -> Tuple[Relation, ExecutionMetrics]:
    """Execute a fragmented plan on the simulated worker pool and return
    the final fragment's relation plus the merged metrics.

    Deterministic end to end: fragments run once in topological order
    (results are exact and never recomputed), the schedule is the pure
    list dispatch of :func:`simulate_schedule`, and the merged metrics
    satisfy the invariants the tests pin — per-fragment exclusive
    IO/CPU sums equal the query totals, ``makespan_seconds`` lies
    between ``total_seconds / workers`` and ``total_seconds``, and peak
    memory is the concurrent peak over fragment reservations plus every
    exchanged (broadcast, partition gather, or rebin shuffle) producer
    buffer held until its last consumer finishes."""
    results, fragment_metrics = execute_fragments(
        plan, disk, costs, profile=profile
    )
    return merge_parallel_metrics(plan, results, fragment_metrics, disk)
