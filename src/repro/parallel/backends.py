"""Execution backends: *where* a fragmented plan's fragments run.

The engine keeps one fragmenting pass and one timing model, but two ways
of actually producing the fragment results:

* :class:`SimulatedBackend` — today's behaviour, unchanged: fragments
  execute in-process in topological order
  (:func:`~repro.parallel.scheduler.execute_fragments`) and wall clock
  is purely *modelled* by the deterministic scheduler.
* :class:`ProcessBackend` — the same :class:`~repro.parallel.fragments.ParallelPlan`
  on a real ``multiprocessing`` pool: base numpy arrays are exported
  once into :mod:`multiprocessing.shared_memory` blocks (workers map
  them as zero-copy views), fragments are dispatched as their
  ``depends_on`` sets drain, exchange results are pickled back through
  the ordinary ``fragment_results`` map, and per-fragment wall-clock
  timings are recorded *alongside* the simulated charges.

Both backends feed the shared *time* stage
(:func:`~repro.parallel.scheduler.merge_parallel_metrics`), so the
simulated totals, the makespan and the per-operator actuals are
identical whichever backend produced the results — and the results
themselves are bit-identical, which the workload oracle and the backend
tests check.  The measured quantities land in dedicated fields
(``FragmentActuals.measured_seconds``,
``ExecutionMetrics.measured_wall_seconds``) and never contaminate the
deterministic model outputs.

Shared-memory lifetime rules (see ``docs/execution-model.md``): the
parent-side :class:`SharedArrayStore` owns every exported block and
keeps a reference to the exporting array, so an array's ``id`` can
never be recycled into serving a stale block; a commit/compaction
builds *new* arrays, which export as *new* blocks — epoch invalidation
falls out of object identity.  Blocks are unlinked when the backend is
closed; workers cache their attachments for the life of the pool.
"""

from __future__ import annotations

import io
import pickle
import queue
import time
from multiprocessing import get_context, get_all_start_methods, shared_memory
from typing import Dict, List, Tuple

import numpy as np

from ..execution.cost import CostModel
from ..execution.metrics import ExecutionMetrics
from ..execution.operators import ExecutionContext, walk_physical
from ..execution.relation import Relation
from ..observe.profiling import profile_call
from ..storage.io_model import DiskModel
from .fragments import Fragment, ParallelPlan
from .scheduler import execute_fragments, merge_parallel_metrics, run_parallel

__all__ = [
    "ExecutionBackend",
    "SimulatedBackend",
    "ProcessBackend",
    "SharedArrayStore",
    "create_backend",
    "BACKEND_NAMES",
]

#: arrays below this size are pickled inline — a shared-memory block
#: (mmap + attach syscalls in every worker) only pays off for real data.
SHARED_MIN_BYTES = 4096


# ------------------------------------------------------- shared memory
class SharedArrayStore:
    """Parent-side registry of numpy arrays exported to shared memory.

    Arrays are deduplicated by object identity: the store keeps a
    reference to every exported array, which both prevents its ``id``
    from being recycled while the block lives and makes repeated plans
    (and repeated fragments of one plan) export each base column once.
    """

    def __init__(self, min_bytes: int = SHARED_MIN_BYTES):
        self.min_bytes = int(min_bytes)
        #: id(array) -> (array ref, SharedMemory, (name, dtype, shape))
        self._exports: Dict[int, tuple] = {}
        self.exported_bytes = 0

    def __len__(self) -> int:
        return len(self._exports)

    def exportable(self, array: np.ndarray) -> bool:
        return array.dtype.kind != "O" and array.nbytes >= self.min_bytes

    def export(self, array: np.ndarray) -> Tuple[str, str, tuple]:
        """The ``(block name, dtype, shape)`` descriptor of ``array``,
        copying it into a fresh shared-memory block on first sight."""
        key = id(array)
        hit = self._exports.get(key)
        if hit is not None:
            return hit[2]
        block = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        descriptor = (block.name, array.dtype.str, array.shape)
        self._exports[key] = (array, block, descriptor)
        self.exported_bytes += array.nbytes
        return descriptor

    def close(self) -> None:
        for _, block, _ in self._exports.values():
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        self._exports = {}
        self.exported_bytes = 0


class _SharedArrayPickler(pickle.Pickler):
    """Pickles plan payloads, routing large numpy arrays through the
    shared store instead of the byte stream."""

    def __init__(self, file, store: SharedArrayStore):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray) and self._store.exportable(obj):
            return ("shm-ndarray", self._store.export(obj))
        return None


#: worker-side cache of attached blocks, one per pool process:
#: block name -> SharedMemory (kept open for the life of the worker).
_ATTACHED_BLOCKS: Dict[str, shared_memory.SharedMemory] = {}


#: whether this process shares the parent's resource tracker — decided
#: once, *before* the first attach (attaching may itself start a
#: process-local tracker, which must not be mistaken for an inherited
#: one).  None until the first attach in this process.
_TRACKER_SHARED = None


def _tracker_shared_with_parent() -> bool:
    global _TRACKER_SHARED
    if _TRACKER_SHARED is None:
        try:
            from multiprocessing import resource_tracker

            # a live tracker fd before this process ever attached a
            # block means it was inherited across fork from the parent
            _TRACKER_SHARED = resource_tracker._resource_tracker._fd is not None
        except Exception:
            _TRACKER_SHARED = False
    return _TRACKER_SHARED


def _attach_block(name: str) -> shared_memory.SharedMemory:
    block = _ATTACHED_BLOCKS.get(name)
    if block is None:
        shares_parent_tracker = _tracker_shared_with_parent()
        block = shared_memory.SharedMemory(name=name)
        # Attaching registers the block with this process's resource
        # tracker (Python >= 3.8).  With a fork-inherited tracker that
        # registration lands in the parent's cache (a set — duplicate,
        # removed by the parent's own unlink) and must be left alone;
        # but a worker running its *own* tracker would unlink the
        # parent's live block when the worker exits — undo the
        # registration, the parent owns the block's lifetime.
        if not shares_parent_tracker:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(block._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED_BLOCKS[name] = block
    return block


class _SharedArrayUnpickler(pickle.Unpickler):
    """Worker-side counterpart: persistent ids become zero-copy,
    read-only views over the attached shared-memory blocks."""

    def persistent_load(self, pid):
        tag, descriptor = pid
        if tag != "shm-ndarray":
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        name, dtype, shape = descriptor
        block = _attach_block(name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
        view.flags.writeable = False  # tripwire: base data is immutable
        return view


def _dumps_shared(obj, store: SharedArrayStore) -> bytes:
    buffer = io.BytesIO()
    _SharedArrayPickler(buffer, store).dump(obj)
    return buffer.getvalue()


def _loads_shared(payload: bytes):
    return _SharedArrayUnpickler(io.BytesIO(payload)).load()


# ------------------------------------------------------ worker function
def _run_fragment_task(payload: bytes, deps_blob: bytes):
    """Executes one fragment in a pool worker.

    The payload carries ``(index, fragment root, disk, costs, profile)``
    with base arrays as shared-memory references; ``deps_blob`` carries
    the plainly pickled results of the fragment's dependencies.  Returns
    the fragment's relation, its metrics (operator actuals re-listed in
    pre-order walk position, since ``id()`` keys do not survive the
    process boundary) and the measured wall-clock window as absolute
    ``perf_counter`` timestamps — with the fork start method the clock
    is shared with the parent, which rebases the window onto the run's
    origin to place the fragment on the measured timeline.  With
    ``profile`` the worker runs the fragment under ``cProfile`` and the
    top functions travel back on ``metrics.profile`` (plain dicts, so
    they pickle like everything else)."""
    index, root, disk, costs, profile = _loads_shared(payload)
    deps: Dict[int, Relation] = pickle.loads(deps_blob)
    metrics = ExecutionMetrics()
    ctx = ExecutionContext(disk, costs, metrics, fragment_results=deps)
    started = time.perf_counter()
    relation, metrics.profile = profile_call(root.run, ctx, enabled=profile)
    ended = time.perf_counter()
    ctx.release_all()
    metrics.rows_produced = relation.num_rows
    actuals = [metrics.operators.get(id(op)) for op in walk_physical(root)]
    metrics.operators = {}
    return index, relation, metrics, actuals, (started, ended)


# ------------------------------------------------------------- backends
class ExecutionBackend:
    """How the *run* stage of a parallel execution is carried out."""

    name = "abstract"

    def run(
        self, plan: ParallelPlan, disk: DiskModel, costs: CostModel,
        profile: bool = False,
    ) -> Tuple[Relation, ExecutionMetrics]:
        raise NotImplementedError

    def execute_fragments(
        self, plan: ParallelPlan, disk: DiskModel, costs: CostModel,
        profile: bool = False,
    ) -> Tuple[Dict[int, Relation], Dict[int, ExecutionMetrics]]:
        """The bare *run* stage: per-fragment results and charged
        metrics, **without** the single-query time stage.  The serving
        layer (``repro.serving``) uses this to produce exact results
        and charges, then places the fragments on its own shared
        multi-query timeline instead of a per-query schedule."""
        raise NotImplementedError

    def close(self) -> None:  # backends holding pools/blocks override
        pass


class SimulatedBackend(ExecutionBackend):
    """In-process execution under the deterministic simulated scheduler
    — the engine's default, byte-for-byte today's ``run_parallel``."""

    name = "simulated"

    def run(self, plan, disk, costs, profile=False):
        return run_parallel(plan, disk, costs, profile=profile)

    def execute_fragments(self, plan, disk, costs, profile=False):
        return execute_fragments(plan, disk, costs, profile=profile)


class ProcessBackend(ExecutionBackend):
    """Executes the same fragment DAG on a real ``multiprocessing``
    pool, measuring wall clock next to the simulated charges.

    The pool is created lazily at the first parallel run and reused
    across queries (grown if a later plan asks for more workers); the
    final (serial-tail) fragment runs in the parent — it consumes every
    gathered partition anyway, so running it here saves shipping the
    gathered result through one more process hop.  ``close()`` tears
    down the pool and unlinks every shared-memory block; the backend is
    unusable afterwards until the next ``run`` recreates the pool.
    """

    name = "process"

    def __init__(self, min_shared_bytes: int = SHARED_MIN_BYTES):
        self._store = SharedArrayStore(min_bytes=min_shared_bytes)
        # fork keeps worker start cheap and inherits the loaded modules;
        # platforms without it (Windows/macOS spawn default) still work —
        # everything a worker needs travels through the pickled payload.
        methods = get_all_start_methods()
        self._mp = get_context("fork" if "fork" in methods else None)
        self._pool = None
        self._pool_size = 0

    # ------------------------------------------------------------- pool
    def _ensure_pool(self, workers: int):
        workers = max(int(workers), 1)
        if self._pool is not None and self._pool_size < workers:
            self._shutdown_pool()
        if self._pool is None:
            self._pool = self._mp.Pool(processes=workers)
            self._pool_size = workers
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def close(self) -> None:
        self._shutdown_pool()
        self._store.close()

    def __del__(self):  # best-effort; explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- run
    def execute_fragments(self, plan, disk, costs, profile=False):
        if len(plan.fragments) <= 1:  # degenerate: nothing to dispatch
            return execute_fragments(plan, disk, costs, profile=profile)
        results, fragment_metrics, _ = self._execute(
            plan, disk, costs, profile, time.perf_counter()
        )
        return results, fragment_metrics

    def run(self, plan, disk, costs, profile=False):
        started = time.perf_counter()
        if len(plan.fragments) <= 1:  # degenerate: nothing to dispatch
            relation, merged = run_parallel(plan, disk, costs, profile=profile)
            merged.backend = self.name
            merged.measured_wall_seconds = time.perf_counter() - started
            return relation, merged

        results, fragment_metrics, measured = self._execute(
            plan, disk, costs, profile, started
        )
        relation, merged = merge_parallel_metrics(
            plan, results, fragment_metrics, disk
        )
        merged.backend = self.name
        for fragment_actuals in merged.fragments:
            window = measured.get(fragment_actuals.index)
            if window is not None:
                fragment_actuals.measured_start_seconds = window[0]
                fragment_actuals.measured_end_seconds = window[1]
                fragment_actuals.measured_seconds = window[1] - window[0]
        merged.measured_wall_seconds = time.perf_counter() - started
        return relation, merged

    def _execute(self, plan, disk, costs, profile, started):
        """Dispatch the fragment DAG on the pool; the final (serial
        tail) fragment runs in the parent.  Returns per-fragment
        results, charged metrics, and measured wall-clock windows
        rebased onto ``started``."""
        pool = self._ensure_pool(plan.workers)
        final = plan.final
        by_index: Dict[int, Fragment] = {f.index: f for f in plan.fragments}
        remaining = {f.index: set(f.depends_on) for f in plan.fragments}
        dependents: Dict[int, List[int]] = {}
        for fragment in plan.fragments:
            for dep in fragment.depends_on:
                dependents.setdefault(dep, []).append(fragment.index)

        results: Dict[int, Relation] = {}
        fragment_metrics: Dict[int, ExecutionMetrics] = {}
        #: index -> (start, end) seconds relative to the run's origin.
        measured: Dict[int, Tuple[float, float]] = {}
        events: "queue.SimpleQueue" = queue.SimpleQueue()

        def submit(fragment: Fragment) -> None:
            payload = _dumps_shared(
                (fragment.index, fragment.root, disk, costs, profile),
                self._store,
            )
            deps_blob = pickle.dumps(
                {dep: results[dep] for dep in fragment.depends_on},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            pool.apply_async(
                _run_fragment_task,
                (payload, deps_blob),
                callback=lambda value: events.put(("done", value)),
                error_callback=lambda exc: events.put(("error", exc)),
            )

        pool_fragments = [f for f in plan.fragments if f is not final]
        for fragment in pool_fragments:
            if not remaining[fragment.index]:
                submit(fragment)
        completed = 0
        while completed < len(pool_fragments):
            kind, value = events.get()
            if kind == "error":
                raise RuntimeError(
                    "process backend: a fragment failed in a pool worker"
                ) from value
            index, relation, metrics, actuals, window = value
            fragment = by_index[index]
            # the worker ran a pickled copy of the fragment tree; its
            # id() keys are meaningless here, so the actuals come back
            # as a pre-order list and are re-keyed against our tree —
            # structurally identical across the pickle round-trip
            metrics.operators = {
                id(op): record
                for op, record in zip(walk_physical(fragment.root), actuals)
                if record is not None
            }
            results[index] = relation
            fragment_metrics[index] = metrics
            # rebase the worker's perf_counter window onto this run's
            # origin (same clock across fork) for the measured timeline
            measured[index] = (window[0] - started, window[1] - started)
            completed += 1
            for waiter in dependents.get(index, ()):
                deps = remaining[waiter]
                deps.discard(index)
                if not deps and waiter != final.index:
                    submit(by_index[waiter])

        # serial tail in the parent, over the gathered worker results
        metrics = ExecutionMetrics()
        ctx = ExecutionContext(disk, costs, metrics, fragment_results=results)
        tail_start = time.perf_counter()
        relation, metrics.profile = profile_call(
            final.root.run, ctx, enabled=profile
        )
        measured[final.index] = (tail_start - started, time.perf_counter() - started)
        ctx.release_all()
        metrics.rows_produced = relation.num_rows
        results[final.index] = relation
        fragment_metrics[final.index] = metrics
        return results, fragment_metrics, measured


BACKEND_NAMES = ("simulated", "process")


def create_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by its ``ExecutionOptions.backend`` name."""
    if name == "simulated":
        return SimulatedBackend()
    if name == "process":
        return ProcessBackend()
    raise ValueError(
        f"unknown execution backend {name!r} (expected one of {BACKEND_NAMES})"
    )
