"""Exchange operators: the typed boundaries between plan fragments.

A partition-parallel plan moves data between fragments through three
physical operators, all ordinary :class:`~repro.execution.operators.PhysicalOp`
nodes so EXPLAIN, per-operator actuals and the attribution frames work
unchanged:

* :class:`Exchange` — the consumer-side leaf reading **one** partition
  fragment's output (one partition of a split stream);
* :class:`Repartition` — the consumer-side leaf reading a **broadcast**
  fragment's output (the build side of a parallelised join, executed
  once and shipped to every partition fragment);
* :class:`UnionAll` — the order-preserving gather: concatenates its
  partition inputs *in partition order*.  Because fragments partition a
  stream into contiguous, ascending storage ranges, the concatenation
  reproduces the serial stream exactly — same rows, same order, same
  physical properties (sort order, carried dimension uses) — which is
  what makes parallel results bit-identical to serial ones.  When a
  split cannot keep partitions contiguous, ``preserve_order=False``
  drops the order property instead of claiming one the data lacks.

The operators never compute; they only move batches and charge the
per-row exchange cost.  Producer results reach them through
``ExecutionContext.fragment_results``, which only the parallel
scheduler populates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.operators import ExecutionContext, PhysicalOp
from ..execution.relation import Relation

__all__ = ["Exchange", "Repartition", "UnionAll", "concat_relations"]


def concat_relations(rels: List[Relation], preserve_order: bool = True) -> Relation:
    """Concatenate structurally identical relations (the outputs of the
    partition fragments of one split stream) in list order.

    Columns are concatenated per name; validity masks are extended with
    all-valid runs for parts that lack one.  Physical properties carry
    over only when every part agrees and ``preserve_order`` vouches the
    parts arrive in stream order."""
    if not rels:
        return Relation(columns={})
    base = rels[0]
    names = list(base.columns)
    columns: Dict[str, np.ndarray] = {
        name: np.concatenate([r.columns[name] for r in rels]) for name in names
    }
    valid: Dict[str, np.ndarray] = {}
    masked = {name for r in rels for name in r.valid if name in columns}
    for name in masked:
        valid[name] = np.concatenate(
            [
                r.valid.get(name, np.ones(r.num_rows, dtype=bool))
                for r in rels
            ]
        )
    sorted_on: Tuple[str, ...] = ()
    if preserve_order and all(r.sorted_on == base.sorted_on for r in rels):
        sorted_on = base.sorted_on
    owners: Dict[str, str] = {}
    for r in rels:
        owners.update(r.owners)
    uses = [u for u in base.uses if u.column in columns]
    return Relation(columns=columns, valid=valid, sorted_on=sorted_on, uses=uses, owners=owners)


@dataclass(eq=False)
class Exchange(PhysicalOp):
    """Consumer-side leaf: one partition fragment's output."""

    source_fragment: int = -1
    partition: int = 0
    partitions: int = 1
    rationale: str = ""

    kind = "Exchange"

    def describe(self) -> str:
        return (
            f"Exchange <- fragment {self.source_fragment} "
            f"[{self.partition + 1}/{self.partitions}]"
        )

    def execute(self, ctx: ExecutionContext) -> Relation:
        return ctx.fragment_result(self.source_fragment)


@dataclass(eq=False)
class Repartition(PhysicalOp):
    """Consumer-side leaf: a broadcast fragment's output, shipped to
    every partition fragment of a parallelised join."""

    source_fragment: int = -1
    mode: str = "broadcast"
    rationale: str = ""

    kind = "Repartition"

    def describe(self) -> str:
        return f"Repartition {self.mode} <- fragment {self.source_fragment}"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rel = ctx.fragment_result(self.source_fragment)
        # receiving the shipped batch costs per row on this worker
        ctx.metrics.charge_cpu(rel.num_rows * ctx.costs.exchange_row, "exchange")
        return rel


@dataclass(eq=False)
class UnionAll(PhysicalOp):
    """Order-preserving gather of the partition fragments of one split
    stream (children are :class:`Exchange` leaves, in partition order)."""

    inputs: Tuple[PhysicalOp, ...] = ()
    preserve_order: bool = True
    rationale: str = ""

    kind = "UnionAll"

    def children(self) -> Tuple[PhysicalOp, ...]:
        return tuple(self.inputs)

    def describe(self) -> str:
        return f"UnionAll [{len(self.inputs)} partitions]"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rels = [child.run(ctx) for child in self.inputs]
        out = concat_relations(rels, preserve_order=self.preserve_order)
        ctx.metrics.charge_cpu(out.num_rows * ctx.costs.exchange_row, "exchange")
        return out
