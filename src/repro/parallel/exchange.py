"""Exchange operators: the typed boundaries between plan fragments.

A partition-parallel plan moves data between fragments through three
physical operators, all ordinary :class:`~repro.execution.operators.PhysicalOp`
nodes so EXPLAIN, per-operator actuals and the attribution frames work
unchanged:

* :class:`Exchange` — the consumer-side leaf reading **one** partition
  fragment's output (one partition of a split stream);
* :class:`Repartition` — the consumer-side leaf that *re-distributes*
  producer-fragment output.  Two modes:

  - ``broadcast``: the build side of a parallelised join, executed once
    and shipped whole to every partition fragment;
  - ``rebin``: the co-partitioned join shuffle.  The leaf reads every
    producer fragment of one join side, extracts the shared BDCC
    dimension bits from the hidden group columns (``on``), and keeps
    only the rows whose bin falls into this consumer's partition —
    re-binning the stream so *both* join sides are split along the same
    zone boundaries and equal join keys always land in the same
    partition (the sandwich precondition: equal keys imply equal bins).

* :class:`UnionAll` — the gather: concatenates its partition inputs *in
  partition order*.  With ``preserve_order=True`` the fragments
  partition a stream into contiguous ascending storage ranges, so the
  concatenation reproduces the serial stream exactly — same rows, same
  order, same physical properties — the **bit-identical** result
  contract.  A co-partitioned join's gather instead sets
  ``preserve_order=False, canonical=True``: its inputs are bin-major,
  not storage-major, so the gather drops the order property and the
  concatenation *in fragment-key order* becomes the **canonical order**
  of the order-insensitive result contract — a deterministic row order
  that is not the serial one (see docs/execution-model.md).

Exchange and broadcast gathers only move batches and charge the per-row
exchange cost.  A ``rebin`` Repartition additionally pays the modelled
shuffle: per-received-row re-binning CPU plus :class:`DiskModel` IO for
its retained bucket (one access per producer), which the scheduler's
makespan then accounts like any other fragment IO.  Producer results
reach the leaves through ``ExecutionContext.fragment_results``, which
only the parallel scheduler populates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..execution.operators import ExecutionContext, PhysicalOp
from ..execution.relation import Relation

__all__ = ["Exchange", "Repartition", "UnionAll", "concat_relations", "rebin_ids"]


def concat_relations(rels: List[Relation], preserve_order: bool = True) -> Relation:
    """Concatenate structurally identical relations (the outputs of the
    partition fragments of one split stream) in list order.

    Columns are concatenated per name; validity masks are extended with
    all-valid runs for parts that lack one.  Physical properties carry
    over only when every part agrees and ``preserve_order`` vouches the
    parts arrive in stream order."""
    if not rels:
        return Relation(columns={})
    base = rels[0]
    names = list(base.columns)
    columns: Dict[str, np.ndarray] = {
        name: np.concatenate([r.columns[name] for r in rels]) for name in names
    }
    valid: Dict[str, np.ndarray] = {}
    masked = {name for r in rels for name in r.valid if name in columns}
    for name in masked:
        valid[name] = np.concatenate(
            [
                r.valid.get(name, np.ones(r.num_rows, dtype=bool))
                for r in rels
            ]
        )
    sorted_on: Tuple[str, ...] = ()
    if preserve_order and all(r.sorted_on == base.sorted_on for r in rels):
        sorted_on = base.sorted_on
    owners: Dict[str, str] = {}
    for r in rels:
        owners.update(r.owners)
    uses = [u for u in base.uses if u.column in columns]
    return Relation(columns=columns, valid=valid, sorted_on=sorted_on, uses=uses, owners=owners)


def rebin_ids(rel: Relation, on: Tuple[Tuple[str, int, int], ...]) -> np.ndarray:
    """Per-row shared-dimension bin ids of a stream.

    ``on`` holds ``(hidden group column, column bit width, bits taken)``
    per shared dimension; the id concatenates the *top* ``taken`` bits
    of each column, dimension-major — exactly how
    :class:`~repro.execution.operators.SandwichJoin` forms its group
    ids, so equal join keys yield equal ids on both join sides."""
    ids = np.zeros(rel.num_rows, dtype=np.uint64)
    for column, bits, take in on:
        values = rel.columns[column].astype(np.uint64, copy=False)
        ids = (ids << np.uint64(take)) | (values >> np.uint64(bits - take))
    return ids


@dataclass(eq=False)
class Exchange(PhysicalOp):
    """Consumer-side leaf: one partition fragment's output."""

    source_fragment: int = -1
    partition: int = 0
    partitions: int = 1
    rationale: str = ""

    kind = "Exchange"

    def describe(self) -> str:
        return (
            f"Exchange <- fragment {self.source_fragment} "
            f"[{self.partition + 1}/{self.partitions}]"
        )

    def execute(self, ctx: ExecutionContext) -> Relation:
        return ctx.fragment_result(self.source_fragment)


@dataclass(eq=False)
class Repartition(PhysicalOp):
    """Consumer-side leaf redistributing producer-fragment output.

    ``mode="broadcast"``: ship one fragment's whole output to every
    partition fragment of a parallelised join (``source_fragment``).

    ``mode="rebin"``: the co-partitioned shuffle — read every producer
    of one join side (``source_fragments``), compute each row's shared
    dimension bin (``on``, see :func:`rebin_ids`) and keep the rows
    whose bin maps to this consumer's ``partition``.  Bins map to
    partitions by contiguous range: ``(bin * partitions) >> total_bits``
    — deterministic, and bin-major across the gathered partitions.  The
    kept stream is a stable subsequence of the producers' concatenation,
    so per-partition physical properties (sort order, carried uses)
    survive even though the *gathered* stream is no longer in serial
    order.
    """

    source_fragment: int = -1
    source_fragments: Tuple[int, ...] = ()
    mode: str = "broadcast"           # "broadcast" | "rebin"
    #: (hidden group column, column bits, bits taken) per shared dimension.
    on: Tuple[Tuple[str, int, int], ...] = ()
    partition: int = 0
    partitions: int = 1
    total_bits: int = 0
    rationale: str = ""

    kind = "Repartition"

    def describe(self) -> str:
        if self.mode == "rebin":
            sources = ", ".join(f"f{s}" for s in self.source_fragments)
            dims = "+".join(column for column, _, _ in self.on)
            return (
                f"Repartition rebin [{self.partition + 1}/{self.partitions}] "
                f"on {dims}@{self.total_bits} <- {sources}"
            )
        return f"Repartition {self.mode} <- fragment {self.source_fragment}"

    def execute(self, ctx: ExecutionContext) -> Relation:
        if self.mode == "rebin":
            return self._execute_rebin(ctx)
        rel = ctx.fragment_result(self.source_fragment)
        # receiving the shipped batch costs per row on this worker
        ctx.metrics.charge_cpu(rel.num_rows * ctx.costs.exchange_row, "exchange")
        ctx.metrics.bump("exchange_rows", rel.num_rows)
        return rel

    def _execute_rebin(self, ctx: ExecutionContext) -> Relation:
        kept: List[Relation] = []
        bucket_bytes: List[float] = []
        received = 0
        parts = np.uint64(self.partitions)
        shift = np.uint64(self.total_bits)
        for source in self.source_fragments:
            rel = ctx.fragment_result(source)
            received += rel.num_rows
            bins = rebin_ids(rel, self.on)
            mask = ((bins * parts) >> shift) == np.uint64(self.partition)
            bucket = rel.filter(mask)
            if bucket.num_rows:
                bucket_bytes.append(bucket.data_bytes())
            kept.append(bucket)
        out = concat_relations(kept, preserve_order=True)
        # the modelled shuffle: re-binning CPU over everything received,
        # plus one bucket read per producer through the disk model
        ctx.metrics.charge_cpu(
            received * ctx.costs.rebin_row + out.num_rows * ctx.costs.exchange_row,
            "exchange",
        )
        if bucket_bytes:
            ctx.metrics.charge_io(
                float(sum(bucket_bytes)),
                len(bucket_bytes),
                ctx.disk.time_for_runs(bucket_bytes),
            )
        ctx.metrics.bump("exchange_rows", received)
        ctx.metrics.bump("shuffle_rows", out.num_rows)
        ctx.metrics.bump("shuffle_bytes", float(sum(bucket_bytes)))
        return out


@dataclass(eq=False)
class UnionAll(PhysicalOp):
    """Gather of the partition fragments of one split stream (children
    are :class:`Exchange` leaves, in partition order).

    ``preserve_order=True`` vouches the inputs are contiguous storage
    ranges in stream order: the concatenation *is* the serial stream
    (bit-identical contract).  ``canonical=True`` marks the gather of a
    co-partitioned (re-binned) join: concatenation in fragment-key order
    is the deterministic *canonical* order of the order-insensitive
    contract — same multiset as serial, different row order."""

    inputs: Tuple[PhysicalOp, ...] = ()
    preserve_order: bool = True
    canonical: bool = False
    rationale: str = ""

    kind = "UnionAll"

    def children(self) -> Tuple[PhysicalOp, ...]:
        return tuple(self.inputs)

    def describe(self) -> str:
        mode = ", canonical order" if self.canonical else ""
        return f"UnionAll [{len(self.inputs)} partitions{mode}]"

    def execute(self, ctx: ExecutionContext) -> Relation:
        rels = [child.run(ctx) for child in self.inputs]
        out = concat_relations(rels, preserve_order=self.preserve_order)
        ctx.metrics.charge_cpu(out.num_rows * ctx.costs.exchange_row, "exchange")
        return out
