"""Page model: translating column vectors into 32 KB disk pages.

The paper's IO reasoning is page-based (Vectorwise page size 32 KB): the
efficient random access size ``A_R``, count-table granularity selection
and MinMax pruning all operate on pages.  We model a lightly compressed
column store with per-type stored widths (see
:mod:`repro.catalog.datatypes`); all three compared schemes share the
same widths, mirroring the paper's identical ~55 GB footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Tuple

__all__ = ["PageModel"]


@dataclass(frozen=True)
class PageModel:
    """Row/byte/page arithmetic for one page size."""

    page_bytes: int = 32 * 1024

    def column_bytes(self, num_rows: int, stored_bytes_per_value: float) -> float:
        return num_rows * stored_bytes_per_value

    def column_pages(self, num_rows: int, stored_bytes_per_value: float) -> int:
        if num_rows <= 0:
            return 0
        return max(1, ceil(self.column_bytes(num_rows, stored_bytes_per_value) / self.page_bytes))

    def rows_per_page(self, stored_bytes_per_value: float) -> int:
        if stored_bytes_per_value <= 0:
            raise ValueError("stored width must be positive")
        return max(1, int(self.page_bytes // stored_bytes_per_value))

    def pages_for_row_runs(
        self, runs: List[Tuple[int, int]], stored_bytes_per_value: float
    ) -> List[Tuple[int, int]]:
        """Map row runs ``(start_row, num_rows)`` to page runs
        ``(start_page, num_pages)``, merging adjacent/overlapping ones.

        Used to charge IO for a scatter scan: two groups that share a
        page only read it once within a merged run.
        """
        rpp = self.rows_per_page(stored_bytes_per_value)
        page_runs: List[Tuple[int, int]] = []
        for start_row, num_rows in runs:
            if num_rows <= 0:
                continue
            first = start_row // rpp
            last = (start_row + num_rows - 1) // rpp
            if page_runs:
                prev_first, prev_len = page_runs[-1]
                prev_last = prev_first + prev_len - 1
                # merge forward-adjacent or overlapping runs (a shared
                # boundary page is read once); backward jumps start a new
                # run and will be charged a seek
                if prev_first <= first <= prev_last + 1:
                    new_last = max(prev_last, last)
                    page_runs[-1] = (prev_first, new_last - prev_first + 1)
                    continue
            page_runs.append((first, last - first + 1))
        return page_runs
