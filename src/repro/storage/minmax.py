"""MinMax (zone map) indices.

Vectorwise "automatically creates MinMax indices on each table" [8]; the
paper leans on them for *correlated* pushdown: because BDCC's LINEITEM is
clustered on order date, ``l_shipdate`` selections prune page ranges even
though shipdate is not itself a dimension (Q6, Q12, Q20).  The same index
exists under all three schemes — it only becomes selective when the
storage order creates value locality, which is precisely the effect the
paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MinMaxIndex"]


@dataclass
class MinMaxIndex:
    """Per-block minima and maxima of one stored column."""

    block_rows: int
    mins: np.ndarray
    maxs: np.ndarray

    @classmethod
    def build(cls, values: np.ndarray, block_rows: int) -> "MinMaxIndex":
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        n = len(values)
        num_blocks = (n + block_rows - 1) // block_rows
        mins = np.empty(num_blocks, dtype=values.dtype)
        maxs = np.empty(num_blocks, dtype=values.dtype)
        for b in range(num_blocks):
            chunk = values[b * block_rows : (b + 1) * block_rows]
            mins[b] = chunk.min()
            maxs[b] = chunk.max()
        return cls(block_rows=block_rows, mins=mins, maxs=maxs)

    @property
    def num_blocks(self) -> int:
        return len(self.mins)

    def blocks_overlapping(self, low, high) -> np.ndarray:
        """Boolean per block: may the block contain a value in
        ``[low, high]``?  ``None`` bounds are open."""
        keep = np.ones(self.num_blocks, dtype=bool)
        if low is not None:
            keep &= self.maxs >= low
        if high is not None:
            keep &= self.mins <= high
        return keep

    def row_runs_overlapping(
        self, low, high, total_rows: int
    ) -> List[Tuple[int, int]]:
        """Qualifying blocks as merged ``(start_row, num_rows)`` runs."""
        keep = self.blocks_overlapping(low, high)
        runs: List[Tuple[int, int]] = []
        for b in np.flatnonzero(keep):
            start = int(b) * self.block_rows
            length = min(self.block_rows, total_rows - start)
            if length <= 0:
                continue
            if runs and runs[-1][0] + runs[-1][1] == start:
                prev_start, prev_len = runs[-1]
                runs[-1] = (prev_start, prev_len + length)
            else:
                runs.append((start, length))
        return runs

    def selectivity(self, low, high) -> float:
        """Fraction of blocks that must be read for the range."""
        if self.num_blocks == 0:
            return 0.0
        return float(np.count_nonzero(self.blocks_overlapping(low, high))) / self.num_blocks
