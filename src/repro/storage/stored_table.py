"""A physically ordered table: the unit all three schemes store.

A :class:`StoredTable` materialises one physical row order of a logical
table (generation order for Plain, primary-key order for PK, ``_bdcc_``
order for BDCC — possibly with a consolidated small-group region), builds
MinMax indices lazily per column, and knows its page layout for IO
accounting.

Updates never rewrite the base layout in place: committed changes live in
an attached delta store (:mod:`repro.updates.delta`) — sorted insert runs
plus a deletion bitmap — until compaction folds them back in.  ``epoch``
counts the commits/compactions applied to this table; plan caches key on
it so a cached plan can never read a stale delta state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog import Table
from ..core.bdcc_table import BDCCTable
from .minmax import MinMaxIndex
from .pages import PageModel

__all__ = ["StoredTable"]


@dataclass
class StoredTable:
    name: str
    definition: Table
    columns: Dict[str, np.ndarray]          # stored order
    page_model: PageModel
    #: physical sort columns (PK scheme); empty otherwise.
    sort_columns: Tuple[str, ...] = ()
    #: BDCC metadata when this table is co-clustered.
    bdcc: Optional[BDCCTable] = None
    #: pending updates (a ``repro.updates.delta.DeltaStore``), or None
    #: while the table has never been written to since its last compaction.
    delta: Optional[object] = None
    #: bumped on every commit/compaction touching this table; plan caches
    #: include it in their keys.
    epoch: int = 0
    _minmax: Dict[str, MinMaxIndex] = field(default_factory=dict, repr=False)

    @property
    def stored_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def logical_rows(self) -> int:
        if self.bdcc is not None:
            return self.bdcc.logical_rows
        return self.stored_rows

    # ------------------------------------------------------------- updates
    @property
    def has_delta(self) -> bool:
        """True when reads must merge delta state (live insert runs or
        deleted base rows)."""
        return self.delta is not None and self.delta.is_dirty

    @property
    def live_rows(self) -> int:
        """Logical rows visible to queries: base minus deleted plus
        live delta inserts."""
        if self.delta is None:
            return self.logical_rows
        return self.logical_rows - self.delta.deleted_base_rows + self.delta.live_delta_rows

    def invalidate_statistics(self) -> None:
        """Drop lazily built zone maps (after compaction rewrote the
        base columns)."""
        self._minmax.clear()

    # ------------------------------------------------------------- layout
    def stored_bytes_per_value(self, column: str) -> float:
        return self.definition.column(column).datatype.stored_bytes

    def column_bytes(self, column: str) -> float:
        return self.page_model.column_bytes(
            self.stored_rows, self.stored_bytes_per_value(column)
        )

    def column_pages(self, column: str) -> int:
        return self.page_model.column_pages(
            self.stored_rows, self.stored_bytes_per_value(column)
        )

    def total_bytes(self, columns: Optional[List[str]] = None) -> float:
        names = columns if columns is not None else list(self.columns)
        return float(sum(self.column_bytes(c) for c in names))

    # ------------------------------------------------------------- minmax
    def minmax_for(self, column: str) -> MinMaxIndex:
        """Zone map with one block per page of that column (built lazily;
        Vectorwise maintains these automatically on every table)."""
        index = self._minmax.get(column)
        if index is None:
            block_rows = self.page_model.rows_per_page(self.stored_bytes_per_value(column))
            index = MinMaxIndex.build(self.columns[column], block_rows)
            self._minmax[column] = index
        return index

    # ----------------------------------------------------------------- IO
    def io_run_bytes(
        self, row_runs: List[Tuple[int, int]], columns: List[str]
    ) -> List[float]:
        """Byte sizes of the separate disk accesses needed to read the
        given row runs of the given columns (column store: one run list
        per column, page-granular)."""
        sizes: List[float] = []
        for column in columns:
            width = self.stored_bytes_per_value(column)
            for _, num_pages in self.page_model.pages_for_row_runs(row_runs, width):
                sizes.append(num_pages * self.page_model.page_bytes)
        return sizes

    def full_scan_runs(self) -> List[Tuple[int, int]]:
        return [(0, self.stored_rows)] if self.stored_rows else []
