"""Columnar storage substrate: data container, pages, zone maps, disk model."""

from .database import Database, lookup_rows
from .io_model import PAPER_SSD, DiskModel
from .minmax import MinMaxIndex
from .pages import PageModel
from .stored_table import StoredTable

__all__ = [
    "Database",
    "lookup_rows",
    "PAPER_SSD",
    "DiskModel",
    "MinMaxIndex",
    "PageModel",
    "StoredTable",
]
