"""Disk model: sequential vs. random access timing and ``A_R``.

The paper's key storage insight: for any device there is an *efficient
random access size* ``A_R`` such that random reads of at least that size
approach sequential throughput (their example: ~a few MB on magnetic
disk, 32 KB on flash [5]).  We model a device by its sequential bandwidth
and a fixed per-access latency; a random access of ``s`` bytes then runs
at efficiency ``s / (s + latency*bandwidth)``, so

    ``A_R(target) = latency * bandwidth * target / (1 - target)``

e.g. an 80 % target gives ``A_R = 4 * latency * bandwidth``.  The default
device matches the paper's SSD RAID: 1 GB/s sequential, latency chosen so
that ``A_R(80%) = 32 KB``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["DiskModel", "PAPER_SSD"]


@dataclass(frozen=True)
class DiskModel:
    """A storage device for cold-scan timing."""

    sequential_bandwidth: float = 1e9  # bytes / second
    access_latency: float = 32 * 1024 / (4 * 1e9)  # seconds per random access
    #: how many concurrent streams the device serves at full per-stream
    #: bandwidth before they start sharing (the paper's RAID0 of 4 SSDs:
    #: one synchronous reader cannot keep all channels busy, so up to 4
    #: workers each see full sequential speed; beyond that, streams
    #: proportionally share).  Used by the parallel scheduler only —
    #: serial timing is unaffected.
    parallel_streams: int = 4

    def stream_rate(self, concurrent_streams: int) -> float:
        """Fraction of full per-stream bandwidth each of
        ``concurrent_streams`` simultaneous readers receives."""
        if concurrent_streams <= self.parallel_streams:
            return 1.0
        return self.parallel_streams / float(concurrent_streams)

    def transfer_time(self, num_bytes: float) -> float:
        return num_bytes / self.sequential_bandwidth

    def access_time(self, num_bytes: float) -> float:
        """One random access of ``num_bytes``."""
        return self.access_latency + self.transfer_time(num_bytes)

    def time_for_runs(self, run_bytes: Iterable[float]) -> float:
        """Total time for a list of separate (randomly placed) runs."""
        total = 0.0
        for size in run_bytes:
            if size > 0:
                total += self.access_time(size)
        return total

    def efficient_access_size(self, target_efficiency: float = 0.8) -> float:
        """``A_R``: the access size whose throughput reaches the target
        fraction of sequential throughput."""
        if not 0 < target_efficiency < 1:
            raise ValueError("target efficiency must be in (0, 1)")
        return (
            self.access_latency
            * self.sequential_bandwidth
            * target_efficiency
            / (1 - target_efficiency)
        )

    def efficiency(self, access_bytes: float) -> float:
        """Fraction of sequential throughput achieved by random accesses
        of the given size."""
        if access_bytes <= 0:
            return 0.0
        return self.transfer_time(access_bytes) / self.access_time(access_bytes)


#: the paper's storage: RAID0 of 4 SSDs, ~1 GB/s, A_R(80%) = 32 KB flash.
PAPER_SSD = DiskModel()
