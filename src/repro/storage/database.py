"""In-memory logical database: schema + column vectors per table.

This is the *logical* content a physical scheme (plain / PK / BDCC)
re-organises.  Columns are numpy arrays; rows across the arrays of one
table are aligned.  Parent-key lookup indices support foreign-key
traversal (dimension paths, referential-integrity checks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog import Schema

__all__ = ["Database", "lookup_rows"]


def _pack_key(columns: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Encode multi-column keys as int64 codes (order within each column
    preserved; only equality semantics are needed here).

    Returns the packed codes plus the per-column sorted-unique domains the
    packing was computed against, so probe values can be packed the same
    way via :func:`_pack_probe`.
    """
    domains = [np.unique(col) for col in columns]
    codes = np.zeros(len(columns[0]), dtype=np.int64)
    for col, domain in zip(columns, domains):
        codes *= np.int64(len(domain) + 1)
        codes += np.searchsorted(domain, col).astype(np.int64)
    return codes, domains


def _pack_probe(columns: Sequence[np.ndarray], domains: List[np.ndarray]) -> np.ndarray:
    codes = np.zeros(len(columns[0]), dtype=np.int64)
    valid = np.ones(len(columns[0]), dtype=bool)
    for col, domain in zip(columns, domains):
        ranks = np.searchsorted(domain, col)
        np.minimum(ranks, len(domain) - 1, out=ranks)
        valid &= domain[ranks] == col
        codes *= np.int64(len(domain) + 1)
        codes += ranks.astype(np.int64)
    codes[~valid] = -1  # sentinel: cannot match any build key
    return codes


def lookup_rows(
    key_columns: Sequence[np.ndarray], probe_columns: Sequence[np.ndarray]
) -> np.ndarray:
    """Row index in the keyed table for each probe tuple, or -1.

    ``key_columns`` must form a unique key (e.g. a primary key).
    """
    if len(key_columns) != len(probe_columns):
        raise ValueError("key/probe column count mismatch")
    if len(key_columns) == 1:
        keys, probes = key_columns[0], probe_columns[0]
    else:
        keys, domains = _pack_key(key_columns)
        probes = _pack_probe(probe_columns, domains)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    pos = np.searchsorted(sorted_keys, probes)
    np.minimum(pos, len(sorted_keys) - 1, out=pos)
    found = sorted_keys[pos] == probes
    result = np.where(found, order[pos], -1)
    return result.astype(np.int64)


class Database:
    """Schema plus per-table column data.

    ``scale_factor`` is optional metadata set by generators whose
    workloads are parameterised by data volume (TPC-H Q11's threshold).
    """

    def __init__(self, schema: Schema, scale_factor: Optional[float] = None):
        self.schema = schema
        self.scale_factor = scale_factor
        self._tables: Dict[str, Dict[str, np.ndarray]] = {}

    # --------------------------------------------------------------- data
    def add_table_data(self, table: str, columns: Dict[str, np.ndarray]) -> None:
        definition = self.schema.table(table)
        missing = set(definition.column_names) - set(columns)
        if missing:
            raise ValueError(f"table {table!r} missing columns: {sorted(missing)}")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"table {table!r}: ragged column lengths {lengths}")
        self._tables[table] = {
            name: np.asarray(columns[name]) for name in definition.column_names
        }

    def table_data(self, table: str) -> Dict[str, np.ndarray]:
        try:
            return self._tables[table]
        except KeyError:
            raise KeyError(f"no data loaded for table {table!r}") from None

    def column(self, table: str, column: str) -> np.ndarray:
        return self.table_data(table)[column]

    def num_rows(self, table: str) -> int:
        data = self.table_data(table)
        if not data:
            return 0
        return len(next(iter(data.values())))

    # ------------------------------------------------------------- updates
    def append_table_rows(self, table: str, rows: Dict[str, np.ndarray]) -> Tuple[int, int]:
        """Append complete rows at the end of a table's arrays.

        Returns ``(n_old, n_new)``.  Numeric columns keep the table's
        dtype; string columns may widen (numpy promotion), never truncate.
        """
        definition = self.schema.table(table)
        data = self.table_data(table)
        missing = set(definition.column_names) - set(rows)
        if missing:
            raise ValueError(f"table {table!r} insert missing columns: {sorted(missing)}")
        lengths = {len(np.asarray(v)) for v in rows.values()}
        if len(lengths) != 1:
            raise ValueError(f"table {table!r}: ragged insert batch {lengths}")
        n_new = lengths.pop()
        n_old = self.num_rows(table)
        if n_new == 0:
            return n_old, 0
        merged: Dict[str, np.ndarray] = {}
        for name in definition.column_names:
            base = data[name]
            extra = np.asarray(rows[name])
            if base.dtype.kind in "iuf" and extra.dtype != base.dtype:
                extra = extra.astype(base.dtype)
            merged[name] = np.concatenate([base, extra])
        self._tables[table] = merged
        return n_old, n_new

    def delete_table_rows(self, table: str, mask: np.ndarray) -> int:
        """Physically remove the rows where ``mask`` is True; returns the
        number removed.  Callers maintain referential integrity (delete
        children before, or together with, their parents)."""
        data = self.table_data(table)
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows(table):
            raise ValueError(f"table {table!r}: delete mask length mismatch")
        removed = int(np.count_nonzero(mask))
        if removed == 0:
            return 0
        keep = ~mask
        self._tables[table] = {name: values[keep] for name, values in data.items()}
        return removed

    @property
    def loaded_tables(self) -> List[str]:
        return list(self._tables)

    # ------------------------------------------------------- FK traversal
    def follow_foreign_key(
        self, fk_name: str, child_rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Parent-row index for each child row (or the given subset).

        Returns -1 for dangling references (none occur in generated data;
        tests assert this).
        """
        fk = self.schema.foreign_key(fk_name)
        child_data = self.table_data(fk.child_table)
        parent_data = self.table_data(fk.parent_table)
        probe_cols = [child_data[c] for c in fk.child_columns]
        if child_rows is not None:
            probe_cols = [col[child_rows] for col in probe_cols]
        key_cols = [parent_data[c] for c in fk.parent_columns]
        return lookup_rows(key_cols, probe_cols)

    def resolve_path_values(
        self,
        table: str,
        path: Sequence[str],
        attributes: Sequence[str],
        rows: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Dimension-key attribute values for each row of ``table``,
        resolved over the dimension path (Definition 2).

        With an empty path the attributes are local to ``table``.  With
        ``rows`` only that subset of the table's rows is resolved (the
        incremental update path bins just the appended rows).
        """
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
        current = table
        for fk_name in path:
            fk = self.schema.foreign_key(fk_name)
            if fk.child_table != current:
                raise ValueError(
                    f"path step {fk_name!r} starts at {fk.child_table!r}, "
                    f"expected {current!r}"
                )
            parent_rows = self.follow_foreign_key(fk_name, rows)
            if np.any(parent_rows < 0):
                raise ValueError(
                    f"dangling foreign key {fk_name!r} while resolving path"
                )
            rows = parent_rows
            current = fk.parent_table
        data = self.table_data(current)
        if rows is None:
            return [data[a] for a in attributes]
        return [data[a][rows] for a in attributes]
