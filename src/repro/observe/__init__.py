"""Structured observability: spans, traces, query logs, metrics registry.

The eighth pillar.  Everything else in the engine produces *numbers*
(simulated charges, measured walls, counters); this package makes them
*machine-readable and replayable* without perturbing them — tracing is
passive by construction, so simulated charges and results are
bit-identical with observability on or off:

* :mod:`repro.observe.spans` — nested span model over both clocks
  (wall-measured planning phases, metrics-derived simulated timelines);
* :mod:`repro.observe.trace_events` — Chrome trace-event (Perfetto)
  export of scheduler timelines: workers as lanes, fragments as slices,
  IO contention as sub-slices, exchanges as flow arrows;
* :mod:`repro.observe.query_log` — schema-versioned JSONL records, one
  per execution, with a validator; the same record shape backs the
  CLIs' ``--json`` modes and the structured benchmark reports;
* :mod:`repro.observe.registry` — process-wide counters/gauges (cache
  hits, compactions, epoch bumps) snapshotted into every record.

``python -m repro.observe FILE...`` validates emitted trace files and
JSONL logs (the CI ``observe`` job gate).  See ``docs/observability.md``.
"""

from .query_log import (
    SCHEMA_VERSION,
    QueryLog,
    build_record,
    plan_fingerprint,
    read_records,
    record_errors,
    validate_record,
)
from .registry import REGISTRY, MetricsRegistry
from .spans import Span, SpanTracer, fragment_spans, operator_spans, query_span
from .trace_events import TraceBuilder, validate_trace, validate_trace_events

__all__ = [
    "SCHEMA_VERSION",
    "QueryLog",
    "build_record",
    "plan_fingerprint",
    "read_records",
    "record_errors",
    "validate_record",
    "REGISTRY",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "fragment_spans",
    "operator_spans",
    "query_span",
    "TraceBuilder",
    "validate_trace",
    "validate_trace_events",
]
