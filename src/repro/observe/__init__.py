"""Structured observability: spans, traces, query logs, metrics registry.

The eighth pillar.  Everything else in the engine produces *numbers*
(simulated charges, measured walls, counters); this package makes them
*machine-readable and replayable* without perturbing them — tracing is
passive by construction, so simulated charges and results are
bit-identical with observability on or off:

* :mod:`repro.observe.spans` — nested span model over both clocks
  (wall-measured planning phases, metrics-derived simulated timelines);
* :mod:`repro.observe.trace_events` — Chrome trace-event (Perfetto)
  export of scheduler timelines: workers as lanes, fragments as slices,
  IO contention as sub-slices, exchanges as flow arrows;
* :mod:`repro.observe.query_log` — schema-versioned JSONL records, one
  per execution, with a validator; the same record shape backs the
  CLIs' ``--json`` modes and the structured benchmark reports;
* :mod:`repro.observe.registry` — process-wide counters/gauges (cache
  hits, compactions, epoch bumps) snapshotted into every record;
* :mod:`repro.observe.history` — the benchmark history ledger:
  schema-versioned ``BENCH_<name>.json`` trajectories at the repo
  root, one record per benchmark run (git SHA, timestamp, host, flat
  metric dict);
* :mod:`repro.observe.regress` — the regression sentinel comparing
  each ledger's newest record against a robust same-configuration
  baseline, direction-aware per metric.

``python -m repro.observe validate|summary|regress ...`` validates
emitted artifacts, aggregates query logs and gates CI on the ledgers
(bare ``FILE...`` arguments still validate).  See
``docs/observability.md``.
"""

from .history import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    append_record,
    build_ledger_record,
    flatten_metrics,
    ledger_path,
    ledger_paths,
    ledger_record_errors,
    metric_series,
    read_ledger,
    residual_stats,
)
from .query_log import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    QueryLog,
    build_record,
    plan_fingerprint,
    read_records,
    record_errors,
    summarize_records,
    validate_record,
)
from .regress import (
    LedgerVerdict,
    MetricVerdict,
    RegressionPolicy,
    check_directory,
    check_ledger,
    format_table,
    metric_direction,
)
from .registry import REGISTRY, MetricsRegistry
from .spans import Span, SpanTracer, fragment_spans, operator_spans, query_span
from .trace_events import TraceBuilder, validate_trace, validate_trace_events

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "QueryLog",
    "build_record",
    "plan_fingerprint",
    "read_records",
    "record_errors",
    "summarize_records",
    "validate_record",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "append_record",
    "build_ledger_record",
    "flatten_metrics",
    "ledger_path",
    "ledger_paths",
    "ledger_record_errors",
    "metric_series",
    "read_ledger",
    "residual_stats",
    "LedgerVerdict",
    "MetricVerdict",
    "RegressionPolicy",
    "check_directory",
    "check_ledger",
    "format_table",
    "metric_direction",
    "REGISTRY",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "fragment_spans",
    "operator_spans",
    "query_span",
    "TraceBuilder",
    "validate_trace",
    "validate_trace_events",
]
