"""Benchmark history ledger: the repo's empirical perf trajectory.

Every benchmark harness writes a structured JSON report
(``benchmarks/conftest.write_report(data=)`` and the standalone
benches); this module *remembers* them.  Each run appends one
schema-versioned record — git SHA, UTC timestamp, host fingerprint and
a flat ``{metric: number}`` dict — to a per-benchmark ledger
``BENCH_<name>.json`` at the repository root, and the reader
reconstructs per-metric time series from the accumulated records.  The
regression sentinel (:mod:`repro.observe.regress`,
``python -m repro.observe regress``) gates CI on those series.

Ledger files are plain JSON documents::

    {"ledger_schema_version": 1,
     "bench": "parallel_speedup",
     "records": [{"ledger_schema_version": 1,
                  "bench": "parallel_speedup",
                  "git_sha": "...", "timestamp_utc": "...Z",
                  "host": {"cpu_count": 4, "platform": "...", ...},
                  "meta": {"scale_factor": 0.01, "seed": 7},
                  "metrics": {"queries.Q01.speedup.4": 3.6, ...}}, ...]}

``meta`` names the benchmark configuration (scale factor, seed, worker
grid...); the sentinel only compares records whose ``meta`` matches, so
a smoke run never regresses against a full-scale one.  Metrics are a
*flat* dotted-name → number mapping (:func:`flatten_metrics` collapses
a nested report); metric names double as the direction hint the
sentinel uses (``...seconds``/``...error`` lower-is-better,
``...speedup``/``...pearson_r`` higher-is-better).

Appends are read-modify-write with an atomic rename, and the reader
rejects corrupted records individually (:func:`ledger_record_errors`)
so one bad append cannot poison a whole trajectory.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LEDGER_PREFIX",
    "host_fingerprint",
    "current_git_sha",
    "utc_timestamp",
    "flatten_metrics",
    "build_ledger_record",
    "ledger_record_errors",
    "Ledger",
    "ledger_path",
    "default_ledger_dir",
    "append_record",
    "read_ledger",
    "ledger_paths",
    "metric_series",
    "residual_stats",
]

LEDGER_SCHEMA_VERSION = 1
#: ledger files are ``BENCH_<name>.json`` at the repository root.
LEDGER_PREFIX = "BENCH_"


# ------------------------------------------------------------ provenance
def host_fingerprint() -> Dict[str, object]:
    """Where a record was produced: enough to explain why measured
    (wall-clock) metrics differ between records, never used to *gate*
    — the sentinel groups records by ``meta``, not by host."""
    return {
        "cpu_count": int(os.cpu_count() or 1),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def utc_timestamp() -> str:
    """ISO-8601 UTC with a trailing ``Z`` (sortable, timezone-safe)."""
    return (
        datetime.now(timezone.utc).replace(microsecond=0).isoformat()
        .replace("+00:00", "Z")
    )


# --------------------------------------------------------------- metrics
def flatten_metrics(data: dict, prefix: str = "") -> Dict[str, float]:
    """Collapse a nested benchmark report into dotted-name metrics.

    Numbers are kept (bools as 0/1 — ``ok`` flags become gateable),
    dicts recurse with dotted prefixes, lists recurse with the index as
    a path segment; strings and nulls (and non-finite floats, which
    JSON cannot round-trip) are dropped."""
    flat: Dict[str, float] = {}
    items: Sequence[Tuple[str, object]]
    if isinstance(data, dict):
        items = [(str(key), value) for key, value in data.items()]
    else:
        items = [(str(position), value) for position, value in enumerate(data)]
    for key, value in items:
        name = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            flat[name] = float(value)
        elif isinstance(value, (int, float)):
            if math.isfinite(value):
                flat[name] = float(value)
        elif isinstance(value, (dict, list)):
            flat.update(flatten_metrics(value, name))
    return flat


# --------------------------------------------------------------- records
def build_ledger_record(
    name: str,
    metrics: Dict[str, float],
    *,
    meta: Optional[dict] = None,
    git_sha: Optional[str] = None,
    timestamp: Optional[str] = None,
    host: Optional[dict] = None,
) -> dict:
    """One self-describing trajectory point for benchmark ``name``."""
    record = {
        "ledger_schema_version": LEDGER_SCHEMA_VERSION,
        "bench": str(name),
        "git_sha": current_git_sha() if git_sha is None else str(git_sha),
        "timestamp_utc": utc_timestamp() if timestamp is None else str(timestamp),
        "host": host_fingerprint() if host is None else dict(host),
        "meta": dict(meta or {}),
        "metrics": {
            str(metric): float(value) for metric, value in metrics.items()
        },
    }
    errors = ledger_record_errors(record)
    if errors:
        raise ValueError("invalid ledger record: " + "; ".join(errors[:5]))
    return record


def ledger_record_errors(record) -> List[str]:
    """Schema problems of one ledger record (empty = valid)."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    errors: List[str] = []
    for key, types in (
        ("ledger_schema_version", int),
        ("bench", str),
        ("git_sha", str),
        ("timestamp_utc", str),
        ("host", dict),
        ("meta", dict),
        ("metrics", dict),
    ):
        if not isinstance(record.get(key), types):
            errors.append(f"{key}: missing or not a {types.__name__}")
    if errors:
        return errors
    if record["ledger_schema_version"] != LEDGER_SCHEMA_VERSION:
        errors.append(
            f"ledger_schema_version {record['ledger_schema_version']} "
            f"!= {LEDGER_SCHEMA_VERSION}"
        )
    for metric, value in record["metrics"].items():
        if not isinstance(metric, str):
            errors.append(f"metrics: non-string name {metric!r}")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"metrics[{metric}]: not a number")
    return errors


# ---------------------------------------------------------------- ledger
@dataclass
class Ledger:
    """One benchmark's loaded trajectory: valid records in append order
    plus the problems of any rejected ones."""

    name: str
    path: Optional[str] = None
    records: List[dict] = field(default_factory=list)
    #: per-rejected-record problem descriptions (corruption never
    #: silently truncates a trajectory — it is reported).
    errors: List[str] = field(default_factory=list)

    def series(self, metric: str) -> List[Tuple[str, float]]:
        return metric_series(self, metric)

    def metric_names(self) -> List[str]:
        names = set()
        for record in self.records:
            names.update(record["metrics"])
        return sorted(names)


def default_ledger_dir(fallback: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Where ``BENCH_*.json`` ledgers live: ``$REPRO_LEDGER_DIR`` if
    set, else the caller-supplied fallback (benchmark harnesses pass
    their repo root), else the nearest ancestor of the working
    directory that looks like a repository root."""
    env = os.environ.get("REPRO_LEDGER_DIR")
    if env:
        return pathlib.Path(env)
    if fallback is not None:
        return pathlib.Path(fallback)
    here = pathlib.Path.cwd()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return here


def ledger_path(name: str, directory=None) -> pathlib.Path:
    return pathlib.Path(
        default_ledger_dir(directory)
    ) / f"{LEDGER_PREFIX}{name}.json"


def ledger_paths(directory=None) -> List[pathlib.Path]:
    """Every ``BENCH_*.json`` ledger in ``directory``, sorted by name."""
    return sorted(
        pathlib.Path(default_ledger_dir(directory)).glob(f"{LEDGER_PREFIX}*.json")
    )


def read_ledger(path, *, name: Optional[str] = None) -> Ledger:
    """Load a ledger, keeping valid records and reporting corrupted
    ones (a missing file is an empty ledger, so the first append and
    the sentinel's "nothing yet" case need no special-casing)."""
    path = pathlib.Path(path)
    inferred = path.stem[len(LEDGER_PREFIX):] if path.stem.startswith(
        LEDGER_PREFIX
    ) else path.stem
    ledger = Ledger(name=name or inferred, path=str(path))
    if not path.exists():
        return ledger
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        ledger.errors.append(f"unreadable ledger: {exc}")
        return ledger
    if not isinstance(document, dict) or not isinstance(
        document.get("records"), list
    ):
        ledger.errors.append("ledger document is not {.., records: [...]}")
        return ledger
    if document.get("ledger_schema_version") != LEDGER_SCHEMA_VERSION:
        ledger.errors.append(
            f"ledger_schema_version {document.get('ledger_schema_version')} "
            f"!= {LEDGER_SCHEMA_VERSION}"
        )
        return ledger
    for position, record in enumerate(document["records"]):
        problems = ledger_record_errors(record)
        if problems:
            ledger.errors.extend(
                f"records[{position}]: {problem}" for problem in problems
            )
        else:
            ledger.records.append(record)
    return ledger


def append_record(
    name: str,
    metrics: Dict[str, float],
    *,
    meta: Optional[dict] = None,
    directory=None,
    git_sha: Optional[str] = None,
    timestamp: Optional[str] = None,
    host: Optional[dict] = None,
) -> dict:
    """Append one record to ``BENCH_<name>.json`` (created on first
    use) and return it.  Read-modify-write with an atomic rename, so a
    crashed benchmark can truncate at worst its own append.  Corrupted
    records already in the file are dropped by the rewrite — the
    reader refuses them anyway, and keeping them would re-report the
    same corruption on every subsequent run."""
    path = ledger_path(name, directory)
    ledger = read_ledger(path, name=name)
    record = build_ledger_record(
        name, metrics, meta=meta, git_sha=git_sha, timestamp=timestamp, host=host
    )
    document = {
        "ledger_schema_version": LEDGER_SCHEMA_VERSION,
        "bench": str(name),
        "records": ledger.records + [record],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_suffix(".json.tmp")
    scratch.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
    scratch.replace(path)
    return record


def metric_series(ledger: Ledger, metric: str) -> List[Tuple[str, float]]:
    """The ``(timestamp_utc, value)`` trajectory of one metric, in
    append order, skipping records that do not carry it."""
    return [
        (record["timestamp_utc"], record["metrics"][metric])
        for record in ledger.records
        if metric in record["metrics"]
    ]


# ------------------------------------------------------ cost-model drift
def residual_stats(points: Sequence[Tuple[float, float]]) -> Dict[str, float]:
    """Simulated-vs-measured residual summary for the cost-model drift
    ledger.

    ``points`` are ``(simulated_seconds, measured_seconds)`` pairs.
    Simulated charges and measured walls live in different units, so
    residuals are taken against the least-squares *scale* fit
    ``measured ≈ a × simulated`` — what the cost model claims to
    predict is the shape, not the absolute wall.  Returns the Pearson
    correlation, the fitted scale and the median/mean relative
    residuals (``|measured - a·sim| / measured``)."""
    pairs = [
        (float(s), float(m)) for s, m in points if s > 0.0 and m > 0.0
    ]
    stats: Dict[str, float] = {"points": float(len(pairs))}
    if len(pairs) < 2:
        return stats
    sims = [s for s, _ in pairs]
    walls = [m for _, m in pairs]
    scale = sum(s * m for s, m in pairs) / sum(s * s for s in sims)
    residuals = sorted(abs(m - scale * s) / m for s, m in pairs)
    middle = len(residuals) // 2
    median = (
        residuals[middle]
        if len(residuals) % 2
        else 0.5 * (residuals[middle - 1] + residuals[middle])
    )
    mean_s = sum(sims) / len(sims)
    mean_m = sum(walls) / len(walls)
    cov = sum((s - mean_s) * (m - mean_m) for s, m in pairs)
    var_s = sum((s - mean_s) ** 2 for s in sims)
    var_m = sum((m - mean_m) ** 2 for m in walls)
    stats["scale"] = scale
    stats["median_rel_error"] = median
    stats["mean_rel_error"] = sum(residuals) / len(residuals)
    if var_s > 0.0 and var_m > 0.0:
        stats["pearson_r"] = cov / math.sqrt(var_s * var_m)
    return stats
