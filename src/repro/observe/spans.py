"""Span tracing: nested, attributed time windows over query processing.

Two clocks coexist in this engine and the span model keeps them apart
explicitly (``Span.clock``):

* ``"wall"`` spans are *measured* with ``time.perf_counter`` as the
  code runs — the planning phases (``plan`` → ``lower`` → ``fragment``
  → ``execute``) recorded live by a :class:`SpanTracer` attached to an
  :class:`~repro.planner.executor.Executor`, and anything a caller
  wraps in :meth:`SpanTracer.span`;
* ``"simulated"`` spans are *derived* from a finished execution's
  :class:`~repro.execution.metrics.ExecutionMetrics` — per-fragment
  spans sit at their scheduler timeline positions
  (``ready/start/io_end/end``), per-operator spans carry their
  exclusive charged durations.

Tracing is strictly passive: a tracer never touches
``ExecutionMetrics``, so simulated charges and results are bit-identical
with tracing on or off (pinned by ``tests/observe/test_spans.py``).

Per-operator spans have no timeline position — the serial executor
interleaves operators and the merged parallel metrics accumulate an
operator across fragments — so :func:`operator_spans` emits them as
duration-only spans anchored at 0.  Per-fragment spans are real
intervals; a fragment that also carries measured wall positions (the
process backend) gets a ``measured`` child span on the wall clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..execution.metrics import ExecutionMetrics

__all__ = [
    "Span",
    "SpanTracer",
    "operator_spans",
    "fragment_spans",
    "query_span",
]


@dataclass
class Span:
    """One nested time window.

    ``start_seconds``/``end_seconds`` are relative to the owning trace's
    origin (tracer birth for wall spans, query start for simulated
    ones)."""

    name: str
    category: str = "phase"      # "phase" | "query" | "fragment" | "operator"
    clock: str = "wall"          # "wall" | "simulated"
    start_seconds: float = 0.0
    end_seconds: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        return max(self.end_seconds - self.start_seconds, 0.0)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "clock": self.clock,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


class SpanTracer:
    """Collects live wall-clock spans and finished query span trees.

    Attach one to an executor (``Executor(..., tracer=tracer)`` or
    ``executor.tracer = tracer``): the executor wraps its planning and
    execution phases in :meth:`span` and, after every run, appends the
    metrics-derived simulated span tree to :attr:`queries`.  The tracer
    is reusable across executors and queries; ``roots`` accumulates
    top-level wall spans in completion order."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._stack: List[Span] = []
        #: completed top-level wall spans, in completion order.
        self.roots: List[Span] = []
        #: metrics-derived query span trees (see :func:`query_span`).
        self.queries: List[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    @contextmanager
    def span(self, name: str, category: str = "phase", **attributes):
        """Open a wall-clock span; nests under any currently open span."""
        span = Span(
            name=name,
            category=category,
            clock="wall",
            start_seconds=self._now(),
            attributes=dict(attributes),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_seconds = self._now()
            self._stack.pop()

    def record_query(self, label: str, metrics: ExecutionMetrics) -> Span:
        """Derive and keep the simulated span tree of one execution."""
        span = query_span(label, metrics)
        self.queries.append(span)
        return span


# ------------------------------------------------- metrics-derived spans
def operator_spans(metrics: ExecutionMetrics) -> List[Span]:
    """Duration-only simulated spans, one per recorded operator."""
    spans: List[Span] = []
    for actuals in metrics.operators.values():
        spans.append(
            Span(
                name=actuals.description,
                category="operator",
                clock="simulated",
                start_seconds=0.0,
                end_seconds=actuals.total_seconds,
                attributes={
                    "kind": actuals.kind,
                    "rows_in": actuals.rows_in,
                    "rows_out": actuals.rows_out,
                    "io_seconds": actuals.io_seconds,
                    "cpu_seconds": actuals.cpu_seconds,
                    "reserved_bytes": actuals.reserved_bytes,
                    "executions": actuals.executions,
                },
            )
        )
    return spans


def fragment_spans(metrics: ExecutionMetrics) -> List[Span]:
    """Simulated timeline spans, one per fragment, at their scheduled
    positions; IO phases as child spans; measured wall positions (when a
    measuring backend ran) as wall-clock child spans."""
    spans: List[Span] = []
    for f in metrics.fragments:
        span = Span(
            name=f"f{f.index} [{f.role}]",
            category="fragment",
            clock="simulated",
            start_seconds=f.start_seconds,
            end_seconds=f.end_seconds,
            attributes={
                "index": f.index,
                "role": f.role,
                "description": f.description,
                "worker": f.worker,
                "depends_on": list(f.depends_on),
                "ready_seconds": f.ready_seconds,
                "queue_wait_seconds": f.queue_wait_seconds,
                "io_seconds": f.io_seconds,
                "cpu_seconds": f.cpu_seconds,
                "rows_out": f.rows_out,
                "output_bytes": f.output_bytes,
                "peak_memory_bytes": f.peak_memory_bytes,
            },
        )
        if f.io_end_seconds > f.start_seconds:
            span.children.append(
                Span(
                    name="io",
                    category="fragment",
                    clock="simulated",
                    start_seconds=f.start_seconds,
                    end_seconds=f.io_end_seconds,
                    attributes={
                        "charged_io_seconds": f.io_seconds,
                        # contention stretch: scheduled IO window minus
                        # the charged (uncontended) IO seconds
                        "stretch_seconds": max(
                            (f.io_end_seconds - f.start_seconds) - f.io_seconds,
                            0.0,
                        ),
                    },
                )
            )
        if f.measured_end_seconds > f.measured_start_seconds:
            span.children.append(
                Span(
                    name="measured",
                    category="fragment",
                    clock="wall",
                    start_seconds=f.measured_start_seconds,
                    end_seconds=f.measured_end_seconds,
                    attributes={"measured_seconds": f.measured_seconds},
                )
            )
        spans.append(span)
    return spans


def query_span(label: str, metrics: ExecutionMetrics) -> Span:
    """The simulated span tree of one finished execution: a query root
    spanning the simulated wall clock, fragment spans at their timeline
    positions, and the duration-only operator spans grouped under an
    ``operators`` pseudo-span."""
    root = Span(
        name=label,
        category="query",
        clock="simulated",
        start_seconds=0.0,
        end_seconds=metrics.wall_seconds,
        attributes={
            "backend": metrics.backend,
            "workers": metrics.workers,
            "total_seconds": metrics.total_seconds,
            "makespan_seconds": metrics.makespan_seconds,
            "measured_wall_seconds": metrics.measured_wall_seconds,
            "peak_memory_bytes": metrics.peak_memory_bytes,
            "rows_produced": metrics.rows_produced,
        },
    )
    root.children.extend(fragment_spans(metrics))
    ops = operator_spans(metrics)
    if ops:
        holder = Span(
            name="operators",
            category="operator",
            clock="simulated",
            start_seconds=0.0,
            end_seconds=metrics.total_seconds,
            attributes={"note": "duration-only; operators have no timeline position"},
        )
        holder.children.extend(ops)
        root.children.append(holder)
    return root
