"""Process-wide metrics registry: named counters and gauges.

:class:`ExecutionMetrics` accounts one query execution; the registry
accounts the *process* — cache effectiveness, update churn, delta
volume — so a query-log record can situate each execution in the state
the engine had reached when it ran.  Producers bump the module-level
:data:`REGISTRY` (the executor's plan/fragment caches, the update
session's epoch bumps, the compactor); consumers snapshot it into every
query-log record (:func:`repro.observe.query_log.build_record`).

Counters are monotone floats; gauges are last-write-wins.  The registry
is intentionally dumb — plain dicts, no locks (CPython dict ops are
atomic enough for the single-threaded engine; pool workers run in their
own processes and never see the parent's registry), no export loop.

Counter names in use:

====================== =================================================
``plan_cache.hits``    executor plan-cache hits (lowering reused)
``plan_cache.misses``  ... misses (a fresh lowering ran)
``fragment_cache.hits``   fragment-plan cache hits
``fragment_cache.misses`` ... misses (the fragmenting pass ran)
``queries_executed``   plans run through ``Executor.run``
``delta_rows_scanned`` merge-on-read rows served from delta runs
``commits``            update-session commits applied
``epochs_bumped``      stored-table epoch bumps (commit or compaction)
``compactions``        delta stores folded back into base layouts
====================== =================================================
"""

from __future__ import annotations

from typing import Dict

__all__ = ["MetricsRegistry", "REGISTRY"]


class MetricsRegistry:
    """Named monotone counters plus last-write-wins gauges."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: counter values at the previous ``delta_since_last`` call —
        #: the baseline the next per-record delta is computed against.
        self._delta_base: Dict[str, float] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter (created at zero on first sight)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        if name in self.counters:
            return self.counters[name]
        return self.gauges.get(name, default)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A deep copy safe to embed in a query-log record."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def delta_since_last(self) -> Dict[str, float]:
        """Counter increments since the previous call (and advance the
        baseline to now).  The cumulative ``snapshot`` embeds the whole
        process history into every record — record N of a suite run
        includes all prior queries' counters — so consumers that want
        *this execution's* churn read the per-record delta instead.
        Only counters that moved appear; the first call returns every
        nonzero counter."""
        delta = {
            name: value - self._delta_base.get(name, 0.0)
            for name, value in self.counters.items()
            if value != self._delta_base.get(name, 0.0)
        }
        self._delta_base = dict(self.counters)
        return delta

    def reset(self) -> None:
        """Forget everything (tests; never called by the engine)."""
        self.counters = {}
        self.gauges = {}
        self._delta_base = {}


#: the process-wide registry every engine component reports into.
REGISTRY = MetricsRegistry()
