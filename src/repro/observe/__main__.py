"""Observability CLI: ``python -m repro.observe <subcommand> ...``.

Three subcommands:

* ``validate FILE...`` — check Chrome trace-event JSON, JSONL query
  logs, ``--json`` CLI documents and ``BENCH_*.json`` ledgers against
  their schemas; one summary line per file, nonzero exit on any
  invalid artifact (the CI ``observe`` job gate).
* ``summary FILE...`` — aggregate JSONL query logs into per-query
  p50/p95 simulated seconds, cache hit rates and delta-scan totals.
* ``regress [LEDGER...]`` — the regression sentinel: compare each
  benchmark ledger's newest record against the median of prior
  same-configuration records and exit nonzero with a diff table when a
  gated metric left its noise band (see :mod:`repro.observe.regress`).

For backwards compatibility bare ``FILE...`` arguments (no subcommand)
validate, exactly as before this CLI grew subcommands.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .history import ledger_record_errors, read_ledger
from .query_log import read_records, record_errors, summarize_records
from .regress import RegressionPolicy, check_ledger, check_directory, format_table
from .trace_events import validate_trace

__all__ = ["main"]


def _validate_file(path: str) -> List[str]:
    if path.endswith(".jsonl"):
        records = read_records(path)
        if not records:
            return ["no records"]
        errors: List[str] = []
        for line_number, record in enumerate(records, start=1):
            errors.extend(
                f"line {line_number}: {error}" for error in record_errors(record)
            )
        return errors
    with open(path) as fh:
        document = json.load(fh)
    if isinstance(document, dict) and "traceEvents" in document:
        errors = validate_trace(document)
        if not errors and not document["traceEvents"]:
            errors = ["no trace events"]
        return errors
    if isinstance(document, dict) and "ledger_schema_version" in document:
        ledger = read_ledger(path)
        errors = list(ledger.errors)
        if not errors and not ledger.records:
            errors = ["no records"]
        return errors
    if isinstance(document, dict) and "records" in document:
        if not document["records"]:
            return ["no records"]
        errors = []
        for position, record in enumerate(document["records"]):
            errors.extend(
                f"records[{position}]: {error}" for error in record_errors(record)
            )
        return errors
    return ["unrecognised document: neither a trace nor a record collection"]


def _cmd_validate(files: List[str]) -> int:
    failed = False
    for path in files:
        try:
            errors = _validate_file(path)
        except (OSError, json.JSONDecodeError) as exc:
            errors = [str(exc)]
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for error in errors[:20]:
                print(f"  - {error}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


def _format_rate(value) -> str:
    return "-" if value is None else f"{value:.1%}"


def _cmd_summary(files: List[str], as_json: bool) -> int:
    records = []
    for path in files:
        try:
            records.extend(read_records(path))
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 1
    summary = summarize_records(records)
    if as_json:
        print(json.dumps(summary, sort_keys=True, indent=2))
        return 0
    overall = summary["overall"]
    print(
        f"{overall['records']} record(s), {overall['queries']} distinct "
        f"quer{'y' if overall['queries'] == 1 else 'ies'}"
    )
    print(
        f"  plan cache hit rate:     "
        f"{_format_rate(overall['plan_cache_hit_rate'])}"
        + (f"  ({overall['cache_source']})" if overall["cache_source"] else "")
    )
    print(
        f"  fragment cache hit rate: "
        f"{_format_rate(overall['fragment_cache_hit_rate'])}"
    )
    print(f"  delta rows scanned:      {overall['delta_rows_scanned']:.0f}")
    if summary["queries"]:
        print(
            f"  {'query':<28}{'runs':>6}{'p50 sim s':>14}{'p95 sim s':>14}"
            f"{'delta rows':>12}"
        )
        for label in sorted(summary["queries"]):
            stats = summary["queries"][label]
            print(
                f"  {label:<28}{stats['records']:>6}"
                f"{stats['p50_simulated_seconds']:>14.6f}"
                f"{stats['p95_simulated_seconds']:>14.6f}"
                f"{stats['delta_rows_scanned']:>12.0f}"
            )
    return 0


def _cmd_regress(args) -> int:
    policy = RegressionPolicy(
        window=args.window, rel_tolerance=args.rel_tolerance
    )
    if args.ledgers:
        verdicts = [
            check_ledger(read_ledger(path), policy) for path in args.ledgers
        ]
    else:
        verdicts = check_directory(args.dir, policy)
    if not verdicts:
        print("no BENCH_*.json ledgers found")
        return 0
    failed = False
    for verdict in verdicts:
        print(format_table(verdict, verbose=args.verbose))
        if not verdict.passed:
            failed = True
    print(
        "regression check: "
        + ("FAILED" if failed else f"ok ({len(verdicts)} ledger(s))")
    )
    return 1 if failed else 0


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backwards compatibility: bare FILE arguments validate, as they
    # did before this CLI grew subcommands.
    if argv and not argv[0].startswith("-") and argv[0] not in (
        "validate", "summary", "regress"
    ):
        return _cmd_validate(argv)

    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description=(
            "Validate, summarize and regression-gate observability "
            "artifacts."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="validate traces, query logs and ledgers"
    )
    p_validate.add_argument("files", nargs="+", help="artifacts to validate")

    p_summary = sub.add_parser(
        "summary", help="aggregate JSONL query logs into p50/p95 stats"
    )
    p_summary.add_argument("files", nargs="+", help="JSONL query logs")
    p_summary.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p_regress = sub.add_parser(
        "regress", help="compare newest ledger records against baselines"
    )
    p_regress.add_argument(
        "ledgers", nargs="*",
        help="BENCH_*.json files (default: every ledger in --dir)",
    )
    p_regress.add_argument(
        "--dir", default=None,
        help="ledger directory (default: $REPRO_LEDGER_DIR or repo root)",
    )
    p_regress.add_argument(
        "--window", type=int, default=RegressionPolicy.window,
        help="baseline = median of up to this many prior records",
    )
    p_regress.add_argument(
        "--rel-tolerance", type=float, default=RegressionPolicy.rel_tolerance,
        help="noise band for deterministic metrics",
    )
    p_regress.add_argument(
        "--verbose", action="store_true", help="list quiet metrics too"
    )

    args = parser.parse_args(argv)
    if args.command == "validate":
        return _cmd_validate(args.files)
    if args.command == "summary":
        return _cmd_summary(args.files, args.json)
    return _cmd_regress(args)


if __name__ == "__main__":
    raise SystemExit(main())
