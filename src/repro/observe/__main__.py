"""Validate observability artifacts: ``python -m repro.observe FILE...``.

Accepts any mix of:

* Chrome trace-event JSON files (as written by ``--trace FILE`` or
  :class:`~repro.observe.trace_events.TraceBuilder.write`);
* JSONL query logs (``--query-log FILE``), every line validated against
  the record schema;
* ``--json`` CLI output documents (an object with a ``records`` list).

Prints one summary line per file and exits non-zero if anything is
invalid — the CI ``observe`` job runs this over every artifact it
emits.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .query_log import read_records, record_errors
from .trace_events import validate_trace

__all__ = ["main"]


def _validate_file(path: str) -> List[str]:
    if path.endswith(".jsonl"):
        records = read_records(path)
        if not records:
            return ["no records"]
        errors: List[str] = []
        for line_number, record in enumerate(records, start=1):
            errors.extend(
                f"line {line_number}: {error}" for error in record_errors(record)
            )
        return errors
    with open(path) as fh:
        document = json.load(fh)
    if isinstance(document, dict) and "traceEvents" in document:
        errors = validate_trace(document)
        if not errors and not document["traceEvents"]:
            errors = ["no trace events"]
        return errors
    if isinstance(document, dict) and "records" in document:
        if not document["records"]:
            return ["no records"]
        errors = []
        for position, record in enumerate(document["records"]):
            errors.extend(
                f"records[{position}]: {error}" for error in record_errors(record)
            )
        return errors
    return ["unrecognised document: neither a trace nor a record collection"]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Validate trace-event JSON and JSONL query-log files.",
    )
    parser.add_argument("files", nargs="+", help="artifacts to validate")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    failed = False
    for path in args.files:
        try:
            errors = _validate_file(path)
        except (OSError, json.JSONDecodeError) as exc:
            errors = [str(exc)]
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for error in errors[:20]:
                print(f"  - {error}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
