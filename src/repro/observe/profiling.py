"""Opt-in cProfile capture around fragment execution.

``ExecutionOptions.profile`` (or ``--profile`` on the CLIs) wraps every
fragment's ``run`` — and the serial root's — in a :class:`cProfile.Profile`
and keeps the top functions by exclusive time.  The capture is *passive*:
simulated charges are computed by the very frames being observed, so
results and charges are bit-identical with profiling on or off (pinned
by tests); only measured wall clocks pay the profiler overhead.

Each captured entry is a plain dict so it can ride inside
:class:`~repro.execution.metrics.FragmentActuals`, the query-log record
and the Perfetto export unchanged::

    {"function": "layout.py:214(scan_pages)",
     "calls": 128,
     "total_seconds": 0.0031,      # exclusive (own-frame) time
     "cumulative_seconds": 0.0119} # inclusive of callees
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, List, Tuple

__all__ = ["TOP_FUNCTIONS", "profile_call", "top_functions"]

#: how many functions (by exclusive time) each profile keeps.
TOP_FUNCTIONS = 10


def top_functions(profiler: cProfile.Profile, limit: int = TOP_FUNCTIONS) -> List[dict]:
    """The ``limit`` hottest functions of a finished profile, by
    exclusive time, as query-log-ready dicts."""
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, name), (
        _primitive_calls, calls, total, cumulative, _callers
    ) in stats.stats.items():  # type: ignore[attr-defined]
        if filename == "~":  # builtins render as "~:0(<len>)"
            label = name
        else:
            short = filename.rsplit("/", 1)[-1]
            label = f"{short}:{line}({name})"
        entries.append(
            {
                "function": label,
                "calls": int(calls),
                "total_seconds": float(total),
                "cumulative_seconds": float(cumulative),
            }
        )
    entries.sort(key=lambda e: (-e["total_seconds"], e["function"]))
    return entries[:limit]


def profile_call(
    fn: Callable[..., Any], *args: Any, enabled: bool = True
) -> Tuple[Any, List[dict]]:
    """Call ``fn(*args)``, profiled when ``enabled``; returns the
    result and the top-function stats (empty list when disabled)."""
    if not enabled:
        return fn(*args), []
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args)
    finally:
        profiler.disable()
    return result, top_functions(profiler)
