"""Chrome trace-event (Perfetto) export of execution timelines.

Renders :class:`~repro.execution.metrics.ExecutionMetrics` fragment
timelines as `Trace Event Format`_ JSON that loads directly into
https://ui.perfetto.dev or ``chrome://tracing``:

* **workers are lanes** — each simulated worker is one thread (``tid``)
  of the ``simulated`` process; lane 0 (``queries``) carries one slice
  per execution so query boundaries stay visible;
* **fragments are slices** — complete (``"X"``) events positioned by the
  scheduler's ``start``/``end``, with the fragment's role, rows,
  charged IO/CPU and memory in ``args``;
* **IO contention is a sub-slice** — the IO phase (``start`` →
  ``io_end``) nests inside its fragment slice and reports the
  *stretch*: scheduled IO window minus charged (uncontended) IO
  seconds, i.e. exactly the time lost to disk-stream sharing;
* **profiled functions are child slices** — when the execution ran with
  ``ExecutionOptions.profile``, each fragment's top functions (by
  exclusive cProfile time) nest under the fragment slice, laid out
  proportionally to their share of the profiled time (profile times are
  wall-clock, the parent slice simulated; the real seconds are in
  ``args``);
* **exchanges are flow events** — every ``depends_on`` edge becomes an
  ``"s"``/``"f"`` flow pair from the producer's end to the consumer's
  start, so Perfetto draws the dataflow arrows across lanes;
* **the measured timeline is a second process** — when the process
  backend ran, fragments carry measured wall positions and the same
  structure renders again under a ``measured (process backend)``
  process, so modelled and real timelines sit one above the other.

Multiple executions accumulate into one :class:`TraceBuilder`; each is
shifted to its own time window so a whole suite reads left-to-right.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..execution.metrics import ExecutionMetrics

__all__ = ["TraceBuilder", "validate_trace_events", "validate_trace"]

_US = 1e6          # seconds -> trace microseconds
_QUERY_GAP_US = 50.0  # horizontal gap between consecutive executions

#: lane 0 is the per-process query overview lane; worker w sits at w+1.
_QUERY_LANE = 0


class TraceBuilder:
    """Accumulates executions into one Chrome trace-event document."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._pids: Dict[str, int] = {}
        self._named_threads: set = set()
        self._origin_us: Dict[int, float] = {}
        self._flow_id = 0

    # ---------------------------------------------------------- plumbing
    def _pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self.events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        return pid

    def _thread(self, pid: int, tid: int, name: str) -> None:
        if (pid, tid) not in self._named_threads:
            self._named_threads.add((pid, tid))
            self.events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    def _slice(self, pid, tid, name, cat, ts, dur, args=None) -> None:
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": max(dur, 0.0),
                "args": args or {},
            }
        )

    def _flow(self, pid, src_tid, dst_tid, src_ts, dst_ts) -> None:
        self._flow_id += 1
        common = {"name": "exchange", "cat": "exchange", "id": self._flow_id, "pid": pid}
        self.events.append({**common, "ph": "s", "tid": src_tid, "ts": src_ts})
        # bp="e" binds the arrow to the enclosing slice at the arrival
        # timestamp instead of the next slice start
        self.events.append(
            {**common, "ph": "f", "bp": "e", "tid": dst_tid, "ts": dst_ts}
        )

    # ---------------------------------------------------------- timelines
    def _add_timeline(
        self,
        process: str,
        label: str,
        metrics: ExecutionMetrics,
        positions: Dict[int, tuple],
        wall_seconds: float,
        io_ends: Optional[Dict[int, float]] = None,
    ) -> None:
        """One execution on one process: ``positions`` maps fragment
        index to its ``(start, end)`` seconds on this timeline."""
        pid = self._pid(process)
        origin = self._origin_us.get(pid, 0.0)
        self._thread(pid, _QUERY_LANE, "queries")
        self._slice(
            pid, _QUERY_LANE, label, "query", origin, wall_seconds * _US,
            args={
                "backend": metrics.backend,
                "workers": metrics.workers,
                "total_seconds": metrics.total_seconds,
                "rows_produced": metrics.rows_produced,
            },
        )
        by_index = {f.index: f for f in metrics.fragments}
        for f in metrics.fragments:
            if f.index not in positions:
                continue
            start, end = positions[f.index]
            tid = max(f.worker, 0) + 1
            self._thread(pid, tid, f"worker {max(f.worker, 0)}")
            ts = origin + start * _US
            self._slice(
                pid, tid, f"{label} f{f.index} [{f.role}]", "fragment",
                ts, (end - start) * _US,
                args={
                    "description": f.description,
                    "depends_on": list(f.depends_on),
                    "io_seconds": f.io_seconds,
                    "cpu_seconds": f.cpu_seconds,
                    "rows_out": f.rows_out,
                    "output_bytes": f.output_bytes,
                    "peak_memory_bytes": f.peak_memory_bytes,
                    "queue_wait_seconds": f.queue_wait_seconds,
                    "measured_seconds": f.measured_seconds,
                },
            )
            if io_ends is not None:
                io_end = io_ends.get(f.index, start)
                if io_end > start:
                    self._slice(
                        pid, tid, "io", "io", ts, (io_end - start) * _US,
                        args={
                            "charged_io_seconds": f.io_seconds,
                            "stretch_seconds": max(
                                (io_end - start) - f.io_seconds, 0.0
                            ),
                        },
                    )
            if f.profile:
                # profiled times are wall-clock while the parent slice is
                # (usually) simulated, so the top functions are laid out
                # *proportionally* across the fragment slice: each child's
                # width is its share of the profiled exclusive time; the
                # real seconds live in args
                slice_us = (end - start) * _US
                profiled = sum(
                    entry.get("total_seconds", 0.0) for entry in f.profile
                )
                cursor = ts
                for entry in f.profile:
                    share = (
                        entry.get("total_seconds", 0.0) / profiled
                        if profiled > 0.0 else 0.0
                    )
                    self._slice(
                        pid, tid, entry.get("function", "?"), "profile",
                        cursor, slice_us * share,
                        args={
                            "calls": entry.get("calls", 0),
                            "total_seconds": entry.get("total_seconds", 0.0),
                            "cumulative_seconds": entry.get(
                                "cumulative_seconds", 0.0
                            ),
                            "share_of_profiled": share,
                        },
                    )
                    cursor += slice_us * share
        for f in metrics.fragments:
            if f.index not in positions:
                continue
            _, end = positions[f.index]
            for consumer in (
                c for c in metrics.fragments
                if f.index in c.depends_on and c.index in positions
            ):
                c_start = positions[consumer.index][0]
                self._flow(
                    pid,
                    max(by_index[f.index].worker, 0) + 1,
                    max(consumer.worker, 0) + 1,
                    origin + end * _US,
                    origin + max(c_start, end) * _US,
                )
        self._origin_us[pid] = origin + wall_seconds * _US + _QUERY_GAP_US

    def add_execution(self, label: str, metrics: ExecutionMetrics) -> None:
        """Render one execution: the simulated timeline always, and the
        measured timeline too when the backend recorded wall positions."""
        simulated = {
            f.index: (f.start_seconds, f.end_seconds) for f in metrics.fragments
        }
        io_ends = {f.index: f.io_end_seconds for f in metrics.fragments}
        self._add_timeline(
            "simulated", label, metrics, simulated, metrics.wall_seconds,
            io_ends=io_ends,
        )
        measured = {
            f.index: (f.measured_start_seconds, f.measured_end_seconds)
            for f in metrics.fragments
            if f.measured_end_seconds > f.measured_start_seconds
        }
        if measured:
            wall = metrics.measured_wall_seconds or max(
                end for _, end in measured.values()
            )
            self._add_timeline(
                f"measured ({metrics.backend} backend)", label, metrics,
                measured, wall,
            )

    # ------------------------------------------------------------- output
    def to_json(self) -> dict:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh)
            fh.write("\n")


# ------------------------------------------------------------ validation
_REQUIRED_BY_PHASE = {
    "X": ("ts", "dur"),
    "M": (),
    "s": ("ts", "id"),
    "f": ("ts", "id"),
}


def validate_trace_events(events: List[dict]) -> List[str]:
    """Structural validation of a trace-event list; returns problems
    (empty = valid).  Checks the invariants the exporter promises:
    well-formed events, matched flow pairs, and non-negative geometry."""
    errors: List[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    open_flows: Dict[tuple, dict] = {}
    for position, event in enumerate(events):
        where = f"event {position}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _REQUIRED_BY_PHASE:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid") + _REQUIRED_BY_PHASE[phase]:
            if key not in event:
                errors.append(f"{where}: missing {key!r} ({phase} event)")
        if phase == "X":
            if event.get("ts", 0) < 0 or event.get("dur", 0) < 0:
                errors.append(f"{where}: negative ts/dur")
        if phase == "s":
            open_flows[(event.get("cat"), event.get("id"))] = event
        if phase == "f":
            key = (event.get("cat"), event.get("id"))
            start = open_flows.pop(key, None)
            if start is None:
                errors.append(f"{where}: flow finish without a start (id {event.get('id')})")
            elif event.get("ts", 0) < start.get("ts", 0):
                errors.append(f"{where}: flow arrives before it departs (id {event.get('id')})")
    for (_, flow_id), _ in open_flows.items():
        errors.append(f"flow start without a finish (id {flow_id})")
    return errors


def validate_trace(document) -> List[str]:
    """Validate a whole trace document (the ``to_json()`` shape)."""
    if not isinstance(document, dict):
        return ["trace document is not an object"]
    if "traceEvents" not in document:
        return ["trace document has no traceEvents"]
    return validate_trace_events(document["traceEvents"])
