"""Regression sentinel over benchmark ledgers.

``python -m repro.observe regress`` loads every ``BENCH_*.json``
ledger (:mod:`repro.observe.history`), compares each ledger's newest
record against a robust baseline built from the prior records, and
exits nonzero with a human-readable diff table when any gated metric
moved the wrong way.  The CI ``observe`` job runs it after appending
fresh records, so a perf regression (or cost-model drift) fails the
build instead of shipping silently.

The comparison is deliberately conservative:

* **baseline** — the median of the previous ``window`` records whose
  ``meta`` equals the newest record's (a smoke run never regresses
  against a full-scale run; a new configuration starts its own
  trajectory and passes until it has history);
* **noise band** — per metric, the widest of a relative tolerance, a
  MAD-derived band from the baseline window, and an absolute floor.
  Deterministic simulated metrics get the tight relative tolerance;
  wall-clock-derived metrics (names containing ``wall``/``measured``/
  ``rel_error``, plus ``pearson``) get a wide one, because CI hosts
  differ in core count and load and measured seconds are expected to
  flap where simulated charges are bit-stable;
* **direction** — inferred from the metric name
  (:func:`metric_direction`): ``seconds``/``bytes``/``error`` up is
  bad, ``speedup``/``pearson``/``hit``-rates down is bad; metrics with
  no directional token (``bits``, ``scale`` ...) are informational and
  never gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .history import Ledger, ledger_paths, read_ledger

__all__ = [
    "RegressionPolicy",
    "MetricVerdict",
    "LedgerVerdict",
    "metric_direction",
    "check_ledger",
    "check_directory",
    "format_table",
]

#: name tokens that mark a metric where *smaller* is better.
LOWER_IS_BETTER = frozenset(
    {
        "seconds", "ms", "latency", "makespan", "error", "errors",
        "bytes", "misses", "miss", "compactions", "residual",
    }
)
#: ... and where *larger* is better.
HIGHER_IS_BETTER = frozenset(
    {
        "speedup", "throughput", "qps", "rate", "hit", "hits",
        "pearson", "pearson_r", "ok", "identical", "r",
    }
)
#: tokens marking wall-clock-derived (host-sensitive, noisy) metrics.
MEASURED_TOKENS = frozenset({"wall", "measured", "rel", "pearson", "stddev"})


#: denominator tokens that make an ``X_per_<unit>`` name a *rate over
#: time* — throughput-shaped, so higher is better (unless the numerator
#: itself is a bad thing: ``errors_per_second`` stays lower-is-better).
_TIME_UNIT_TOKENS = frozenset({"second", "seconds", "sec", "secs", "minute", "min"})


def _tokens(metric: str) -> List[str]:
    return metric.replace("-", "_").replace(".", "_").lower().split("_")


def metric_direction(metric: str) -> Optional[str]:
    """``"lower"``, ``"higher"`` or ``None`` (ungated) for a metric
    name.  Rates over time (``queries_per_second``, ``rows_per_sec``)
    are recognized by shape and gate higher-is-better — unless the
    numerator names a lower-is-better quantity (``errors_per_second``).
    Otherwise lower-is-better tokens win ties (``miss_rate`` is a rate,
    but it is a rate of *misses* — up is bad); note ``seconds_per_query``
    has no time-unit *denominator*, so it falls through to the ordinary
    token rules and stays lower-is-better."""
    ordered = _tokens(metric)
    if "per" in ordered:
        at = ordered.index("per")
        numerator, denominator = set(ordered[:at]), set(ordered[at + 1:])
        if denominator & _TIME_UNIT_TOKENS:
            if numerator & LOWER_IS_BETTER:
                return "lower"
            return "higher"
    tokens = set(ordered)
    if tokens & LOWER_IS_BETTER:
        return "lower"
    if tokens & HIGHER_IS_BETTER:
        return "higher"
    return None


def _is_measured(metric: str) -> bool:
    return bool(set(_tokens(metric)) & MEASURED_TOKENS)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


@dataclass(frozen=True)
class RegressionPolicy:
    """How tolerant the sentinel is; the defaults gate CI."""

    #: baseline = median of up to this many prior same-``meta`` records.
    window: int = 8
    #: noise band for deterministic (simulated) metrics.
    rel_tolerance: float = 0.10
    #: noise band for wall-clock-derived metrics (CI hosts differ).
    measured_rel_tolerance: float = 1.5
    #: band is also at least this multiple of the window's MAD.
    mad_multiplier: float = 4.0
    #: and never below this (zero baselines would otherwise gate on
    #: any nonzero latest value).
    abs_floor: float = 1e-9
    #: per-metric-suffix absolute tolerances (matched on the last
    #: name token); correlation lives on [-1, 1] where relative bands
    #: are meaningless.
    abs_tolerance: Dict[str, float] = field(
        default_factory=lambda: {"pearson_r": 0.25, "r": 0.25}
    )

    def band(self, metric: str, baseline: float, window: Sequence[float]) -> float:
        rel = (
            self.measured_rel_tolerance
            if _is_measured(metric)
            else self.rel_tolerance
        )
        mad = _median([abs(v - baseline) for v in window]) if window else 0.0
        candidates = [rel * abs(baseline), self.mad_multiplier * mad, self.abs_floor]
        last_token = _tokens(metric)[-1]
        if last_token in self.abs_tolerance:
            candidates.append(self.abs_tolerance[last_token])
        return max(candidates)


@dataclass
class MetricVerdict:
    """One metric's comparison: latest vs baseline within the band."""

    metric: str
    status: str  #: ok | regressed | improved | new | ungated
    direction: Optional[str] = None
    baseline: Optional[float] = None
    latest: Optional[float] = None
    band: Optional[float] = None

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.latest is None:
            return None
        return self.latest - self.baseline


@dataclass
class LedgerVerdict:
    """One ledger's sentinel outcome."""

    name: str
    path: Optional[str]
    verdicts: List[MetricVerdict] = field(default_factory=list)
    #: prior same-``meta`` records the baseline was built from.
    baseline_records: int = 0
    #: ledger-level problems (corrupted records fail the gate loudly —
    #: a silently shrinking trajectory is itself a regression).
    errors: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.status == "regressed"]

    @property
    def passed(self) -> bool:
        return not self.errors and not self.regressions


def check_ledger(ledger: Ledger, policy: Optional[RegressionPolicy] = None) -> LedgerVerdict:
    """Compare a ledger's newest record against its robust baseline."""
    policy = policy or RegressionPolicy()
    verdict = LedgerVerdict(name=ledger.name, path=ledger.path)
    verdict.errors.extend(ledger.errors)
    if not ledger.records:
        verdict.notes.append("empty ledger: nothing to compare")
        return verdict
    latest = ledger.records[-1]
    pool = [
        record
        for record in ledger.records[:-1]
        if record["meta"] == latest["meta"]
    ][-policy.window:]
    verdict.baseline_records = len(pool)
    if not pool:
        verdict.notes.append(
            "no prior records with matching meta: baseline starts here"
        )
        return verdict
    for metric in sorted(latest["metrics"]):
        value = latest["metrics"][metric]
        history = [
            record["metrics"][metric]
            for record in pool
            if metric in record["metrics"]
        ]
        if not history:
            verdict.verdicts.append(
                MetricVerdict(metric=metric, status="new", latest=value)
            )
            continue
        direction = metric_direction(metric)
        baseline = _median(history)
        if direction is None:
            verdict.verdicts.append(
                MetricVerdict(
                    metric=metric, status="ungated",
                    baseline=baseline, latest=value,
                )
            )
            continue
        band = policy.band(metric, baseline, history)
        delta = value - baseline
        if direction == "lower":
            status = (
                "regressed" if delta > band
                else "improved" if delta < -band
                else "ok"
            )
        else:
            status = (
                "regressed" if delta < -band
                else "improved" if delta > band
                else "ok"
            )
        verdict.verdicts.append(
            MetricVerdict(
                metric=metric, status=status, direction=direction,
                baseline=baseline, latest=value, band=band,
            )
        )
    return verdict


def check_directory(
    directory=None, policy: Optional[RegressionPolicy] = None
) -> List[LedgerVerdict]:
    """Run the sentinel over every ``BENCH_*.json`` in ``directory``."""
    return [
        check_ledger(read_ledger(path), policy) for path in ledger_paths(directory)
    ]


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0.0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.6g}"


def format_table(verdict: LedgerVerdict, *, verbose: bool = False) -> str:
    """The human-readable diff table for one ledger.  By default only
    the interesting rows (regressed / improved / new) are listed, with
    a one-line summary of the quiet ones; ``verbose`` lists them all."""
    lines = [
        f"{verdict.name}: baseline = median of {verdict.baseline_records} "
        f"prior record(s)"
    ]
    for note in verdict.notes:
        lines.append(f"  note: {note}")
    for error in verdict.errors:
        lines.append(f"  ERROR: {error}")
    rows = [
        v for v in verdict.verdicts
        if verbose or v.status in ("regressed", "improved", "new")
    ]
    if rows:
        lines.append(
            f"  {'metric':<48}{'baseline':>14}{'latest':>14}"
            f"{'delta':>14}{'band':>12}  status"
        )
        for v in rows:
            lines.append(
                f"  {v.metric:<48}{_format_value(v.baseline):>14}"
                f"{_format_value(v.latest):>14}{_format_value(v.delta):>14}"
                f"{_format_value(v.band):>12}  "
                + (v.status.upper() if v.status == "regressed" else v.status)
            )
    quiet = len(verdict.verdicts) - len(rows)
    if quiet:
        lines.append(f"  ({quiet} metric(s) within the noise band)")
    return "\n".join(lines)
