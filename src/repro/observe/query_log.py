"""Structured query log: one schema-versioned JSON record per execution.

A record captures everything a later session needs to replay or regress
an execution without re-running it: what was asked (plan fingerprint,
scheme, full :class:`~repro.planner.lowering.ExecutionOptions`), against
what state (per-table update epochs), what the model charged (totals,
counters, per-operator actuals, the fragment timeline) and what — if
anything — was measured (backend, wall clocks).  The process-wide
:class:`~repro.observe.registry.MetricsRegistry` is snapshotted in so
cache effectiveness and update churn ride along.

The same record shape backs three surfaces, which therefore can never
diverge: ``--query-log FILE`` JSONL sinks, the ``--json`` CLI output
modes, and the structured benchmark reports.  ``validate_record``
checks a record against the schema; the CI ``observe`` job holds every
emitted record to it.

Records are plain JSON: floats, ints, strings, lists, string-keyed
dicts.  ``SCHEMA_VERSION`` bumps whenever a required field changes
meaning; adding optional fields is compatible.  Version 2 added the
per-record ``registry_delta`` (counter increments since the previous
record, next to the cumulative ``registry`` snapshot — in a suite run
record N's cumulative snapshot includes all prior queries' counters,
so per-execution churn needs the delta) and the optional per-fragment
``profile`` entries (top-N cProfile stats when
``ExecutionOptions.profile`` was on); the validator accepts both
versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional

from ..execution.metrics import ExecutionMetrics
from .registry import REGISTRY, MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "plan_fingerprint",
    "build_record",
    "record_errors",
    "validate_record",
    "QueryLog",
    "read_records",
    "summarize_records",
]

SCHEMA_VERSION = 2
#: versions ``record_errors`` accepts — old logs keep validating.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


# ---------------------------------------------------------- fingerprints
def _skeleton(op, depth: int, lines: List[str]) -> None:
    lines.append("  " * depth + op.describe())
    for child in op.children():
        _skeleton(child, depth + 1, lines)


def plan_fingerprint(plans) -> str:
    """Stable hex digest of the structural skeleton of the query's
    physical plan stages (operator kinds, keys and shapes — the same
    text the golden plan tests pin, no rationale, no actuals).  Two
    executions share a fingerprint iff every stage lowered to the same
    operator tree."""
    lines: List[str] = []
    for plan in plans:
        root = getattr(plan, "root", plan)
        _skeleton(root, 0, lines)
        lines.append("---")
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return digest[:16]


# --------------------------------------------------------------- records
def _operator_entries(metrics: ExecutionMetrics) -> List[dict]:
    return [
        {
            "kind": a.kind,
            "description": a.description,
            "rows_in": int(a.rows_in),
            "rows_out": int(a.rows_out),
            "io_bytes": float(a.io_bytes),
            "io_accesses": int(a.io_accesses),
            "io_seconds": float(a.io_seconds),
            "cpu_seconds": float(a.cpu_seconds),
            "reserved_bytes": float(a.reserved_bytes),
            "executions": int(a.executions),
        }
        for a in metrics.operators.values()
    ]


def _fragment_entries(metrics: ExecutionMetrics) -> List[dict]:
    return [
        {
            "index": int(f.index),
            "role": f.role,
            "description": f.description,
            "worker": int(f.worker),
            "depends_on": [int(d) for d in f.depends_on],
            "ready_seconds": float(f.ready_seconds),
            "start_seconds": float(f.start_seconds),
            "io_end_seconds": float(f.io_end_seconds),
            "end_seconds": float(f.end_seconds),
            "io_seconds": float(f.io_seconds),
            "cpu_seconds": float(f.cpu_seconds),
            "rows_out": int(f.rows_out),
            "output_bytes": float(f.output_bytes),
            "peak_memory_bytes": float(f.peak_memory_bytes),
            "measured_seconds": float(f.measured_seconds),
            "measured_start_seconds": float(f.measured_start_seconds),
            "measured_end_seconds": float(f.measured_end_seconds),
            "profile": [dict(entry) for entry in f.profile],
        }
        for f in metrics.fragments
    ]


def build_record(
    label: str,
    metrics: ExecutionMetrics,
    *,
    pdb=None,
    scheme: Optional[str] = None,
    options=None,
    plans=(),
    relation=None,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Assemble the query-log record of one finished execution.

    ``metrics`` may be a single run's or a multi-stage query's merged
    metrics (the fragment timeline then concatenates the stages).
    ``pdb`` contributes the scheme name and per-table epochs; ``plans``
    (lowered :class:`PhysicalPlan` stages) the fingerprint; ``relation``
    the result shape; ``registry`` defaults to the process-wide one."""
    if registry is None:
        registry = REGISTRY
    if scheme is None and pdb is not None:
        scheme = pdb.scheme_name
    table_epochs: Dict[str, int] = {}
    epoch = 0
    if pdb is not None:
        table_epochs = {name: int(t.epoch) for name, t in pdb.stored.items()}
        epoch = int(pdb.epoch)
    record = {
        "schema_version": SCHEMA_VERSION,
        "label": str(label),
        "scheme": str(scheme or "unknown"),
        "backend": str(metrics.backend),
        "workers": int(metrics.workers),
        "options": dataclasses.asdict(options) if options is not None else {},
        "plan_fingerprint": plan_fingerprint(plans) if plans else "",
        "epoch": epoch,
        "table_epochs": table_epochs,
        "simulated": {
            "io_seconds": float(metrics.io_seconds),
            "cpu_seconds": float(metrics.cpu_seconds),
            "total_seconds": float(metrics.total_seconds),
            "makespan_seconds": float(metrics.makespan_seconds),
            "wall_seconds": float(metrics.wall_seconds),
            "io_bytes": float(metrics.io_bytes),
            "io_accesses": int(metrics.io_accesses),
            "rows_scanned": int(metrics.rows_scanned),
            "delta_rows_scanned": int(metrics.delta_rows_scanned),
            "rows_produced": int(metrics.rows_produced),
            "compaction_seconds": float(metrics.compaction_seconds),
        },
        "measured": {
            "wall_seconds": float(metrics.measured_wall_seconds),
        },
        "memory": {
            "peak_bytes": float(metrics.peak_memory_bytes),
            "by_tag": {
                tag: float(peak)
                for tag, peak in sorted(metrics.memory.tag_peaks.items())
            },
        },
        "counters": {k: float(v) for k, v in sorted(metrics.counters.items())},
        "notes": list(metrics.notes),
        "operators": _operator_entries(metrics),
        "fragments": _fragment_entries(metrics),
        "registry": registry.snapshot(),
        # counter increments attributable to *this* record, next to the
        # cumulative snapshot above (which includes every prior query's
        # counters in a suite run)
        "registry_delta": {"counters": registry.delta_since_last()},
    }
    if relation is not None:
        record["result"] = {
            "rows": int(relation.num_rows),
            "columns": list(relation.column_names),
        }
    return record


# ------------------------------------------------------------ validation
_NUMBER = (int, float)

_TOP_LEVEL = {
    # name -> (types, required)
    "schema_version": (int, True),
    "label": (str, True),
    "scheme": (str, True),
    "backend": (str, True),
    "workers": (int, True),
    "options": (dict, True),
    "plan_fingerprint": (str, True),
    "epoch": (int, True),
    "table_epochs": (dict, True),
    "simulated": (dict, True),
    "measured": (dict, True),
    "memory": (dict, True),
    "counters": (dict, True),
    "notes": (list, True),
    "operators": (list, True),
    "fragments": (list, True),
    "registry": (dict, True),
    # required in schema version 2, absent in version 1
    "registry_delta": (dict, False),
    "result": (dict, False),
}

_SIMULATED_KEYS = (
    "io_seconds", "cpu_seconds", "total_seconds", "makespan_seconds",
    "wall_seconds", "io_bytes", "io_accesses", "rows_scanned",
    "delta_rows_scanned", "rows_produced", "compaction_seconds",
)

_OPERATOR_KEYS = {
    "kind": str, "description": str, "rows_in": _NUMBER, "rows_out": _NUMBER,
    "io_bytes": _NUMBER, "io_accesses": _NUMBER, "io_seconds": _NUMBER,
    "cpu_seconds": _NUMBER, "reserved_bytes": _NUMBER, "executions": _NUMBER,
}

_FRAGMENT_KEYS = {
    "index": _NUMBER, "role": str, "description": str, "worker": _NUMBER,
    "depends_on": list, "ready_seconds": _NUMBER, "start_seconds": _NUMBER,
    "io_end_seconds": _NUMBER, "end_seconds": _NUMBER, "io_seconds": _NUMBER,
    "cpu_seconds": _NUMBER, "rows_out": _NUMBER, "output_bytes": _NUMBER,
    "peak_memory_bytes": _NUMBER, "measured_seconds": _NUMBER,
    "measured_start_seconds": _NUMBER, "measured_end_seconds": _NUMBER,
}

#: per-fragment cProfile entries (schema version 2, opt-in profiling).
_PROFILE_KEYS = {
    "function": str, "calls": _NUMBER,
    "total_seconds": _NUMBER, "cumulative_seconds": _NUMBER,
}


def _check_mapping(errors, where, value, value_types) -> None:
    for key, item in value.items():
        if not isinstance(key, str):
            errors.append(f"{where}: non-string key {key!r}")
        elif not isinstance(item, value_types):
            errors.append(f"{where}[{key}]: expected number, got {type(item).__name__}")


def record_errors(record) -> List[str]:
    """Schema problems of one query-log record (empty = valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    for name, (types, required) in _TOP_LEVEL.items():
        if name not in record:
            if required:
                errors.append(f"missing required field {name!r}")
            continue
        if not isinstance(record[name], types):
            errors.append(
                f"{name}: expected {getattr(types, '__name__', types)}, "
                f"got {type(record[name]).__name__}"
            )
    for name in record:
        if name not in _TOP_LEVEL:
            errors.append(f"unknown field {name!r}")
    if errors:
        return errors
    version = record["schema_version"]
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            f"schema_version {version} not in {SUPPORTED_SCHEMA_VERSIONS}"
        )
    if version >= 2 and "registry_delta" not in record:
        errors.append("registry_delta: required from schema version 2 on")
    if "registry_delta" in record:
        delta = record["registry_delta"]
        if not isinstance(delta.get("counters"), dict):
            errors.append("registry_delta.counters: missing or not an object")
        else:
            _check_mapping(
                errors, "registry_delta.counters", delta["counters"], _NUMBER
            )
    for key in _SIMULATED_KEYS:
        if key not in record["simulated"]:
            errors.append(f"simulated.{key} missing")
        elif not isinstance(record["simulated"][key], _NUMBER):
            errors.append(f"simulated.{key}: not a number")
    if not isinstance(record["measured"].get("wall_seconds"), _NUMBER):
        errors.append("measured.wall_seconds: missing or not a number")
    memory = record["memory"]
    if not isinstance(memory.get("peak_bytes"), _NUMBER):
        errors.append("memory.peak_bytes: missing or not a number")
    if not isinstance(memory.get("by_tag"), dict):
        errors.append("memory.by_tag: missing or not an object")
    else:
        _check_mapping(errors, "memory.by_tag", memory["by_tag"], _NUMBER)
    _check_mapping(errors, "counters", record["counters"], _NUMBER)
    _check_mapping(errors, "table_epochs", record["table_epochs"], int)
    registry = record["registry"]
    for part in ("counters", "gauges"):
        if not isinstance(registry.get(part), dict):
            errors.append(f"registry.{part}: missing or not an object")
        else:
            _check_mapping(errors, f"registry.{part}", registry[part], _NUMBER)
    for position, entry in enumerate(record["operators"]):
        where = f"operators[{position}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, types in _OPERATOR_KEYS.items():
            if not isinstance(entry.get(key), types):
                errors.append(f"{where}.{key}: missing or wrong type")
    for position, entry in enumerate(record["fragments"]):
        where = f"fragments[{position}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, types in _FRAGMENT_KEYS.items():
            if not isinstance(entry.get(key), types):
                errors.append(f"{where}.{key}: missing or wrong type")
        if isinstance(entry.get("end_seconds"), _NUMBER) and isinstance(
            entry.get("start_seconds"), _NUMBER
        ):
            if entry["end_seconds"] < entry["start_seconds"]:
                errors.append(f"{where}: end_seconds before start_seconds")
        profile = entry.get("profile", [])
        if not isinstance(profile, list):
            errors.append(f"{where}.profile: not a list")
            continue
        for slot, stat in enumerate(profile):
            if not isinstance(stat, dict):
                errors.append(f"{where}.profile[{slot}]: not an object")
                continue
            for key, types in _PROFILE_KEYS.items():
                if not isinstance(stat.get(key), types):
                    errors.append(
                        f"{where}.profile[{slot}].{key}: missing or wrong type"
                    )
    return errors


def validate_record(record) -> None:
    """Raise ``ValueError`` when a record violates the schema."""
    errors = record_errors(record)
    if errors:
        raise ValueError(
            "invalid query-log record: " + "; ".join(errors[:10])
            + (f" (+{len(errors) - 10} more)" if len(errors) > 10 else "")
        )


# ----------------------------------------------------------------- JSONL
class QueryLog:
    """Append-only JSONL sink; every record is validated on write."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "a")
        self.written = 0

    def write(self, record: dict) -> None:
        validate_record(record)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path: str) -> List[dict]:
    """Load a JSONL query log (no validation; pair with
    :func:`record_errors` to check)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# --------------------------------------------------------------- summary
def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (exact for the small per-query samples a
    log holds; no interpolation surprises)."""
    ordered = sorted(values)
    rank = max(int(-(-len(ordered) * fraction // 1)), 1)  # ceil
    return ordered[rank - 1]


def _hit_rate(counters: Dict[str, float], prefix: str) -> Optional[float]:
    hits = counters.get(f"{prefix}.hits", 0.0)
    misses = counters.get(f"{prefix}.misses", 0.0)
    total = hits + misses
    return hits / total if total > 0 else None


def summarize_records(records: List[dict]) -> dict:
    """Aggregate query-log records into a per-label latency/cache view.

    Returns ``{"queries": {label: {...}}, "overall": {...}}``: per label
    the record count, p50/p95 simulated seconds and delta-scan totals;
    overall the record count, total delta rows and the plan-/fragment-
    cache hit rates.  Cache rates come from the version-2 per-record
    ``registry_delta`` counters summed over the log; version-1 records
    only carry cumulative snapshots, so for an all-v1 log the last
    record's cumulative registry is used instead (marked by
    ``overall["cache_source"]``)."""
    queries: Dict[str, dict] = {}
    by_label: Dict[str, List[dict]] = {}
    for record in records:
        by_label.setdefault(record.get("label", "?"), []).append(record)
    delta_counters: Dict[str, float] = {}
    deltas_seen = False
    for record in records:
        for name, value in (
            record.get("registry_delta", {}).get("counters", {}).items()
        ):
            deltas_seen = True
            delta_counters[name] = delta_counters.get(name, 0.0) + value
    for label, group in sorted(by_label.items()):
        seconds = [r["simulated"]["total_seconds"] for r in group]
        queries[label] = {
            "records": len(group),
            "p50_simulated_seconds": _percentile(seconds, 0.50),
            "p95_simulated_seconds": _percentile(seconds, 0.95),
            "delta_rows_scanned": int(
                sum(r["simulated"]["delta_rows_scanned"] for r in group)
            ),
        }
    if deltas_seen:
        cache_counters, cache_source = delta_counters, "registry_delta"
    else:
        cache_counters = (
            records[-1].get("registry", {}).get("counters", {}) if records else {}
        )
        cache_source = "cumulative (v1 log)"
    overall = {
        "records": len(records),
        "queries": len(queries),
        "delta_rows_scanned": int(
            sum(q["delta_rows_scanned"] for q in queries.values())
        ),
        "plan_cache_hit_rate": _hit_rate(cache_counters, "plan_cache"),
        "fragment_cache_hit_rate": _hit_rate(cache_counters, "fragment_cache"),
        "cache_source": cache_source,
    }
    return {"queries": queries, "overall": overall}
